"""Synthetic hardware-error-log generator, optionally thermally correlated.

Real hardware logs mix background failure processes (random correctable
memory errors, occasional link faults) with load/thermal-correlated ones
(thermal trips, node-down events following sustained overheating).  The
generator reproduces both populations:

* a Poisson background per node and category;
* optionally, elevated rates on nodes the caller declares "hot" (e.g. the
  anomaly node sets injected into the telemetry), which is what gives the
  case studies a ground-truth correlation between environment-log z-scores
  and hardware events (Q3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .events import HardwareEvent, HardwareEventType, HardwareLog

__all__ = ["HardwareErrorModel"]


_DEFAULT_RATES: dict[HardwareEventType, float] = {
    # Events per node per 10,000 snapshots (background).
    HardwareEventType.CORRECTABLE_MEMORY_ERROR: 2.0,
    HardwareEventType.UNCORRECTABLE_MEMORY_ERROR: 0.05,
    HardwareEventType.NODE_DOWN: 0.15,
    HardwareEventType.LINK_FAULT: 0.4,
    HardwareEventType.POWER_SUPPLY_WARNING: 0.3,
    HardwareEventType.THERMAL_TRIP: 0.02,
}


@dataclass
class HardwareErrorModel:
    """Stochastic hardware-event source.

    Attributes
    ----------
    n_nodes:
        Number of populated nodes.
    seed:
        RNG seed.
    background_rates:
        Events per node per 10,000 snapshots for each category; defaults
        are loosely calibrated to published LANL/ALCF failure studies
        (order-of-magnitude realism is all the alignment needs).
    hot_node_multiplier:
        Rate multiplier applied to thermally-correlated categories on
        nodes passed as ``hot_nodes``.
    flaky_fraction:
        Fraction of nodes that are intrinsically error-prone
        (weak DIMMs); they receive ``flaky_multiplier`` on memory errors.
        Case study 2 observes "nodes that persistently report hardware
        errors, even with multiple jobs running" — these are those nodes.
    """

    n_nodes: int
    seed: int = 0
    background_rates: dict[HardwareEventType, float] = field(
        default_factory=lambda: dict(_DEFAULT_RATES)
    )
    hot_node_multiplier: float = 8.0
    flaky_fraction: float = 0.01
    flaky_multiplier: float = 20.0

    def __post_init__(self) -> None:
        if self.n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if self.hot_node_multiplier < 1.0:
            raise ValueError("hot_node_multiplier must be >= 1")
        if not 0.0 <= self.flaky_fraction <= 1.0:
            raise ValueError("flaky_fraction must be in [0, 1]")

    # ------------------------------------------------------------------ #
    def flaky_nodes(self) -> np.ndarray:
        """Deterministic (seeded) set of intrinsically error-prone nodes."""
        rng = np.random.default_rng(self.seed + 13)
        count = int(round(self.flaky_fraction * self.n_nodes))
        if count == 0:
            return np.zeros(0, dtype=int)
        return np.sort(rng.choice(self.n_nodes, size=count, replace=False))

    def generate(
        self,
        n_timesteps: int,
        *,
        hot_nodes: Sequence[int] = (),
        hot_window: tuple[int, int] | None = None,
    ) -> HardwareLog:
        """Generate events over ``[0, n_timesteps)`` snapshots.

        Parameters
        ----------
        n_timesteps:
            Observation window length in snapshots.
        hot_nodes:
            Nodes experiencing sustained high temperatures (e.g. the
            telemetry anomaly set); their thermally-correlated event rates
            are multiplied by ``hot_node_multiplier``.
        hot_window:
            Snapshot range during which the hot-node elevation applies
            (defaults to the whole window).
        """
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        rng = np.random.default_rng(self.seed)
        log = HardwareLog()
        hot_set = set(int(n) for n in hot_nodes)
        flaky = sorted(int(n) for n in self.flaky_nodes())
        window = hot_window or (0, n_timesteps)
        # A tuple, not a set: enum members hash by identity, so set
        # iteration order — and with it the RNG draw sequence and the
        # generated events — would vary with each process's hash seed.
        thermal_types = (
            HardwareEventType.THERMAL_TRIP,
            HardwareEventType.NODE_DOWN,
            HardwareEventType.CORRECTABLE_MEMORY_ERROR,
        )

        scale = n_timesteps / 10_000.0
        for event_type, base_rate in self.background_rates.items():
            if base_rate <= 0:
                continue
            # Expected background events per node over this window.
            lam = np.full(self.n_nodes, base_rate * scale)
            if flaky and event_type in (
                HardwareEventType.CORRECTABLE_MEMORY_ERROR,
                HardwareEventType.UNCORRECTABLE_MEMORY_ERROR,
            ):
                lam[flaky] *= self.flaky_multiplier
            counts = rng.poisson(lam)
            for node in np.flatnonzero(counts):
                for _ in range(int(counts[node])):
                    start = int(rng.integers(0, n_timesteps))
                    end = start + 1
                    severity = 1
                    if event_type is HardwareEventType.NODE_DOWN:
                        end = min(n_timesteps, start + int(rng.integers(20, 400)))
                        severity = 3
                    elif event_type is HardwareEventType.UNCORRECTABLE_MEMORY_ERROR:
                        severity = 3
                    elif event_type is HardwareEventType.THERMAL_TRIP:
                        severity = 2
                    log.add(
                        HardwareEvent(
                            node=int(node),
                            event_type=event_type,
                            start_step=start,
                            end_step=end,
                            severity=severity,
                            message=f"{event_type.value} on node {int(node)}",
                        )
                    )

        # Thermally correlated extra events on hot nodes.
        if hot_set:
            lo, hi = max(window[0], 0), min(window[1], n_timesteps)
            span = max(hi - lo, 1)
            for node in sorted(hot_set):
                for event_type in thermal_types:
                    base_rate = self.background_rates.get(event_type, 0.0)
                    lam = base_rate * (span / 10_000.0) * (self.hot_node_multiplier - 1.0)
                    extra = rng.poisson(lam)
                    for _ in range(int(extra)):
                        start = int(rng.integers(lo, hi))
                        end = start + 1
                        severity = 2
                        if event_type is HardwareEventType.NODE_DOWN:
                            end = min(n_timesteps, start + int(rng.integers(20, 200)))
                            severity = 3
                        log.add(
                            HardwareEvent(
                                node=int(node),
                                event_type=event_type,
                                start_step=start,
                                end_step=end,
                                severity=severity,
                                message=(
                                    f"{event_type.value} on node {int(node)} "
                                    f"(thermally correlated)"
                                ),
                            )
                        )
        return log

"""Hardware-error-log substrate: event records and correlated generator."""

from .events import HardwareEvent, HardwareEventType, HardwareLog
from .generator import HardwareErrorModel

__all__ = [
    "HardwareEvent",
    "HardwareEventType",
    "HardwareLog",
    "HardwareErrorModel",
]

"""Hardware error event records.

The hardware logs the paper aligns against carry discrete events from the
"diverse and interconnected control systems and subsystems" of the machine:
correctable memory errors, node-down transitions, link faults, power
supply warnings.  The case studies only need per-node event occurrences and
their time extents (nodes with memory errors are outlined in Fig. 4; node
down-hours are shown in Fig. 2), which is exactly what these records carry.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Iterator

import numpy as np

__all__ = ["HardwareEventType", "HardwareEvent", "HardwareLog"]


class HardwareEventType(Enum):
    """Categories of hardware events the generator emits."""

    CORRECTABLE_MEMORY_ERROR = "correctable_memory_error"
    UNCORRECTABLE_MEMORY_ERROR = "uncorrectable_memory_error"
    NODE_DOWN = "node_down"
    LINK_FAULT = "link_fault"
    POWER_SUPPLY_WARNING = "power_supply_warning"
    THERMAL_TRIP = "thermal_trip"


@dataclass(frozen=True)
class HardwareEvent:
    """One hardware event occurrence.

    Attributes
    ----------
    node:
        Populated-node index the event was reported on.
    event_type:
        The category (:class:`HardwareEventType`).
    start_step:
        Snapshot index at which the event was reported.
    end_step:
        For interval events (node down), the exclusive end snapshot;
        instantaneous events use ``start_step + 1``.
    severity:
        0 (informational) .. 3 (critical).
    message:
        Raw-log-style text message.
    """

    node: int
    event_type: HardwareEventType
    start_step: int
    end_step: int
    severity: int = 1
    message: str = ""

    def __post_init__(self) -> None:
        if self.end_step < self.start_step:
            raise ValueError("end_step must be >= start_step")
        if not 0 <= self.severity <= 3:
            raise ValueError("severity must be in [0, 3]")

    @property
    def duration(self) -> int:
        """Event extent in snapshots."""
        return self.end_step - self.start_step


class HardwareLog:
    """Container of :class:`HardwareEvent` records with per-node queries."""

    def __init__(self, events: Iterable[HardwareEvent] = ()) -> None:
        self._events: list[HardwareEvent] = list(events)

    def add(self, event: HardwareEvent) -> None:
        """Append one event."""
        self._events.append(event)

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[HardwareEvent]:
        return iter(self._events)

    @property
    def events(self) -> list[HardwareEvent]:
        """All events in insertion order."""
        return list(self._events)

    # ------------------------------------------------------------------ #
    def events_on_node(self, node: int) -> list[HardwareEvent]:
        """Events reported on a given node."""
        return [e for e in self._events if e.node == node]

    def events_of_type(self, event_type: HardwareEventType) -> list[HardwareEvent]:
        """Events of one category."""
        return [e for e in self._events if e.event_type is event_type]

    def nodes_with(self, event_type: HardwareEventType) -> np.ndarray:
        """Sorted array of nodes that reported the given category.

        Fig. 4 outlines "nodes with memory errors"; this query produces
        that node set.
        """
        return np.asarray(
            sorted({e.node for e in self._events if e.event_type is event_type}),
            dtype=int,
        )

    def event_counts(self, n_nodes: int, event_type: HardwareEventType | None = None) -> np.ndarray:
        """Per-node event counts, shape ``(n_nodes,)``."""
        counts = np.zeros(n_nodes, dtype=int)
        for event in self._events:
            if event_type is not None and event.event_type is not event_type:
                continue
            if 0 <= event.node < n_nodes:
                counts[event.node] += 1
        return counts

    def downtime_hours(self, n_nodes: int, dt_seconds: float) -> np.ndarray:
        """Hours each node spent in NODE_DOWN intervals (Fig. 2's metric)."""
        hours = np.zeros(n_nodes, dtype=float)
        for event in self._events:
            if event.event_type is not HardwareEventType.NODE_DOWN:
                continue
            if 0 <= event.node < n_nodes:
                hours[event.node] += event.duration * dt_seconds / 3600.0
        return hours

    def events_in_window(self, start: int, stop: int) -> list[HardwareEvent]:
        """Events overlapping the snapshot interval ``[start, stop)``."""
        return [
            e
            for e in self._events
            if e.start_step < stop and e.end_step > start
        ]

    def summary(self) -> dict[str, int]:
        """Event counts per category."""
        out = {etype.value: 0 for etype in HardwareEventType}
        for event in self._events:
            out[event.event_type.value] += 1
        return out

"""Synthetic workload (job submission) generator.

Produces job *requests* — project, user, node count, requested walltime,
submission time — with distributions loosely modelled on leadership-class
machines (many small/short jobs, a heavy tail of large/long ones).  The
scheduler in :mod:`repro.joblog.scheduler` turns requests into placed
:class:`~repro.joblog.jobs.JobRecord` entries.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["JobRequest", "WorkloadModel"]


@dataclass(frozen=True)
class JobRequest:
    """A job submission before scheduling."""

    job_id: int
    project: str
    user: str
    n_nodes: int
    requested_steps: int
    submit_step: int
    failure_probability: float = 0.02


class WorkloadModel:
    """Random workload generator with project structure.

    Parameters
    ----------
    n_nodes:
        Size of the machine the workload targets (bounds job widths).
    n_projects:
        Number of distinct projects submitting work.
    seed:
        RNG seed (generation is deterministic given the seed).
    mean_nodes:
        Mean of the (geometric-ish) node-count distribution.
    mean_duration:
        Mean requested walltime in snapshots.
    submit_rate:
        Mean number of submissions per snapshot (Poisson thinning).
    """

    def __init__(
        self,
        n_nodes: int,
        *,
        n_projects: int = 6,
        seed: int = 0,
        mean_nodes: int = 32,
        mean_duration: int = 300,
        submit_rate: float = 0.05,
    ) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        if n_projects < 1:
            raise ValueError("n_projects must be >= 1")
        if mean_nodes < 1 or mean_duration < 1:
            raise ValueError("mean_nodes and mean_duration must be >= 1")
        if submit_rate <= 0:
            raise ValueError("submit_rate must be positive")
        self.n_nodes = int(n_nodes)
        self.n_projects = int(n_projects)
        self.seed = int(seed)
        self.mean_nodes = int(mean_nodes)
        self.mean_duration = int(mean_duration)
        self.submit_rate = float(submit_rate)

    def project_names(self) -> list[str]:
        """Synthetic project identifiers (stable across calls)."""
        return [f"PROJ-{i:03d}" for i in range(self.n_projects)]

    def generate_requests(self, n_timesteps: int) -> list[JobRequest]:
        """Draw submissions across ``[0, n_timesteps)`` snapshots."""
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        rng = np.random.default_rng(self.seed)
        projects = self.project_names()
        # Project popularity follows a Zipf-like profile: a few projects
        # dominate the machine, as on real allocations.
        weights = 1.0 / np.arange(1, self.n_projects + 1)
        weights /= weights.sum()

        n_submissions = rng.poisson(self.submit_rate * n_timesteps)
        submit_steps = np.sort(rng.integers(0, n_timesteps, size=n_submissions))
        requests: list[JobRequest] = []
        for job_id, submit_step in enumerate(submit_steps):
            project_idx = int(rng.choice(self.n_projects, p=weights))
            width = int(np.clip(rng.geometric(1.0 / self.mean_nodes), 1, self.n_nodes))
            duration = int(np.clip(rng.exponential(self.mean_duration), 8, 10 * self.mean_duration))
            requests.append(
                JobRequest(
                    job_id=job_id,
                    project=projects[project_idx],
                    user=f"user{project_idx:02d}_{int(rng.integers(0, 4))}",
                    n_nodes=width,
                    requested_steps=duration,
                    submit_step=int(submit_step),
                    failure_probability=float(rng.uniform(0.0, 0.06)),
                )
            )
        return requests

"""Job records and job-log container.

The job logs the paper aligns against environment data carry, per job: the
job identifier, the submitting project, the list of nodes used, and the
start/end times ("the job log data detailing the applications utilizing the
systems and their attributes (e.g., nodes used, start and end times)",
Sec. I).  This module defines those records and a queryable log container;
:mod:`repro.joblog.workload` generates synthetic submissions and
:mod:`repro.joblog.scheduler` places them on nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

__all__ = ["JobRecord", "JobLog"]


@dataclass(frozen=True)
class JobRecord:
    """One completed (or running) job as it appears in the job log.

    Attributes
    ----------
    job_id:
        Unique integer identifier.
    project:
        Project/allocation name the job charged.
    user:
        Submitting user name.
    nodes:
        Tuple of populated-node indices the job ran on.
    submit_step / start_step / end_step:
        Snapshot indices (same clock as the environment log) of submission,
        start, and end.  ``end_step`` is exclusive; ``None`` means still
        running at the end of the observation window.
    requested_steps:
        Requested walltime in snapshots (for backfill decisions).
    exit_status:
        0 for success, non-zero for failure (hardware-error correlation
        uses this).
    """

    job_id: int
    project: str
    user: str
    nodes: tuple[int, ...]
    submit_step: int
    start_step: int
    end_step: int | None
    requested_steps: int
    exit_status: int = 0

    @property
    def n_nodes(self) -> int:
        """Number of nodes the job occupied."""
        return len(self.nodes)

    @property
    def duration(self) -> int | None:
        """Run length in snapshots (``None`` while still running)."""
        if self.end_step is None:
            return None
        return self.end_step - self.start_step

    @property
    def queued_steps(self) -> int:
        """Snapshots spent waiting in the queue."""
        return self.start_step - self.submit_step

    def active_at(self, step: int) -> bool:
        """Whether the job occupies its nodes at snapshot ``step``."""
        if step < self.start_step:
            return False
        return self.end_step is None or step < self.end_step


class JobLog:
    """Container of :class:`JobRecord` entries with the queries the pipeline needs."""

    def __init__(self, records: Iterable[JobRecord] = ()) -> None:
        self._records: list[JobRecord] = list(records)

    # ------------------------------------------------------------------ #
    def add(self, record: JobRecord) -> None:
        """Append a record."""
        self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[JobRecord]:
        return iter(self._records)

    def __getitem__(self, idx: int) -> JobRecord:
        return self._records[idx]

    @property
    def records(self) -> list[JobRecord]:
        """All records in insertion order."""
        return list(self._records)

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def projects(self) -> list[str]:
        """Distinct project names, sorted."""
        return sorted({r.project for r in self._records})

    def jobs_for_project(self, project: str) -> list[JobRecord]:
        """Records submitted by a project."""
        return [r for r in self._records if r.project == project]

    def jobs_on_node(self, node: int) -> list[JobRecord]:
        """Records that used a given node."""
        return [r for r in self._records if node in r.nodes]

    def active_jobs(self, step: int) -> list[JobRecord]:
        """Records active at a given snapshot."""
        return [r for r in self._records if r.active_at(step)]

    def nodes_for_projects(self, projects: Sequence[str]) -> np.ndarray:
        """Sorted union of nodes used by the given projects.

        Case study 1 selects "871 nodes ... utilized by jobs from two
        projects in the facility" — this is that query.
        """
        wanted = set(projects)
        nodes: set[int] = set()
        for record in self._records:
            if record.project in wanted:
                nodes.update(record.nodes)
        return np.asarray(sorted(nodes), dtype=int)

    def utilization_matrix(self, n_nodes: int, n_timesteps: int) -> np.ndarray:
        """Ground-truth per-node busy/idle matrix, shape ``(n_nodes, T)``.

        Cell ``(n, t)`` is 1.0 when any job occupies node ``n`` at snapshot
        ``t``.  Feeding this to the telemetry generator couples the
        synthetic environment log to the synthetic job log, which is what
        makes the case-study alignment meaningful.
        """
        if n_nodes < 1 or n_timesteps < 1:
            raise ValueError("n_nodes and n_timesteps must be >= 1")
        util = np.zeros((n_nodes, n_timesteps), dtype=float)
        for record in self._records:
            start = max(record.start_step, 0)
            end = n_timesteps if record.end_step is None else min(record.end_step, n_timesteps)
            if end <= start:
                continue
            nodes = [n for n in record.nodes if 0 <= n < n_nodes]
            util[np.asarray(nodes, dtype=int), start:end] = 1.0
        return util

    def node_hours(self, n_nodes: int, dt_seconds: float, n_timesteps: int) -> np.ndarray:
        """Busy hours per node over the observation window."""
        util = self.utilization_matrix(n_nodes, n_timesteps)
        return util.sum(axis=1) * dt_seconds / 3600.0

    def failed_jobs(self) -> list[JobRecord]:
        """Records with a non-zero exit status."""
        return [r for r in self._records if r.exit_status != 0]

    def summary(self) -> dict[str, float]:
        """Aggregate statistics (counts, mean size/duration, failure rate)."""
        if not self._records:
            return {
                "n_jobs": 0,
                "n_projects": 0,
                "mean_nodes": 0.0,
                "mean_duration": 0.0,
                "failure_rate": 0.0,
            }
        durations = [r.duration for r in self._records if r.duration is not None]
        return {
            "n_jobs": float(len(self._records)),
            "n_projects": float(len(self.projects())),
            "mean_nodes": float(np.mean([r.n_nodes for r in self._records])),
            "mean_duration": float(np.mean(durations)) if durations else 0.0,
            "failure_rate": float(
                np.mean([1.0 if r.exit_status != 0 else 0.0 for r in self._records])
            ),
        }

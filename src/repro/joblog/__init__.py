"""Job-log substrate: workload generation, scheduler simulation, job queries."""

from .jobs import JobLog, JobRecord
from .scheduler import SchedulerSimulator, simulate_joblog
from .workload import JobRequest, WorkloadModel

__all__ = [
    "JobLog",
    "JobRecord",
    "SchedulerSimulator",
    "simulate_joblog",
    "JobRequest",
    "WorkloadModel",
]

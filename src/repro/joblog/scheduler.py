"""Discrete-event FCFS + EASY-backfill scheduler simulator.

The real job log comes from the facility scheduler (Cobalt on Theta, PBS on
Polaris); here a compact discrete-event simulator plays that role.  It is
not a scheduling-research artifact — its purpose is to produce *realistic
job logs* (contiguous-ish placements, queueing, a mix of project sizes,
occasional failures) whose node/time extents can be aligned with the
synthetic environment and hardware logs exactly as the paper aligns the
real ones.

The policy is first-come-first-served with EASY backfill: the head-of-queue
job reserves the earliest time it could start, and shorter jobs may jump
ahead only if they do not delay that reservation.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

import numpy as np

from .jobs import JobLog, JobRecord
from .workload import JobRequest, WorkloadModel

__all__ = ["SchedulerSimulator", "simulate_joblog"]


@dataclass
class _RunningJob:
    record_index: int
    end_step: int
    nodes: tuple[int, ...]


class SchedulerSimulator:
    """Simulate placement of job requests onto a node pool.

    Parameters
    ----------
    n_nodes:
        Number of schedulable nodes (populated nodes of the machine).
    backfill:
        Enable EASY backfill (default).  Disabling it gives strict FCFS,
        useful to test that the simulator's outputs differ sensibly.
    seed:
        RNG seed for failure outcomes and placement tie-breaking.
    """

    def __init__(self, n_nodes: int, *, backfill: bool = True, seed: int = 0) -> None:
        if n_nodes < 1:
            raise ValueError("n_nodes must be >= 1")
        self.n_nodes = int(n_nodes)
        self.backfill = bool(backfill)
        self.seed = int(seed)

    # ------------------------------------------------------------------ #
    def run(self, requests: list[JobRequest], n_timesteps: int) -> JobLog:
        """Schedule ``requests`` over ``[0, n_timesteps)`` and return the log.

        Jobs that cannot start before the horizon simply never appear in
        the log (they would still be queued), mirroring how a real log
        snapshot only contains started jobs.
        """
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        rng = np.random.default_rng(self.seed)
        free = np.ones(self.n_nodes, dtype=bool)
        queue: list[JobRequest] = []
        running: list[_RunningJob] = []
        pending = sorted(requests, key=lambda r: (r.submit_step, r.job_id))
        pending_idx = 0
        records: list[JobRecord] = []

        def try_place(width: int) -> tuple[int, ...] | None:
            """Pick ``width`` free nodes, preferring a contiguous run."""
            free_idx = np.flatnonzero(free)
            if free_idx.size < width:
                return None
            # Look for a contiguous block first (realistic placement locality).
            if width > 1 and free_idx.size:
                runs = np.split(free_idx, np.where(np.diff(free_idx) != 1)[0] + 1)
                for run in runs:
                    if run.size >= width:
                        return tuple(int(n) for n in run[:width])
            return tuple(int(n) for n in free_idx[:width])

        def start_job(req: JobRequest, step: int) -> bool:
            nodes = try_place(req.n_nodes)
            if nodes is None:
                return False
            actual = max(4, int(req.requested_steps * rng.uniform(0.5, 1.0)))
            end = step + actual
            failed = rng.random() < req.failure_probability
            records.append(
                JobRecord(
                    job_id=req.job_id,
                    project=req.project,
                    user=req.user,
                    nodes=nodes,
                    submit_step=req.submit_step,
                    start_step=step,
                    end_step=min(end, n_timesteps) if end <= n_timesteps else None,
                    requested_steps=req.requested_steps,
                    exit_status=1 if failed else 0,
                )
            )
            free[np.asarray(nodes, dtype=int)] = False
            heapq.heappush(
                running,  # type: ignore[arg-type]
                (end, len(records) - 1, nodes),
            )
            return True

        for step in range(n_timesteps):
            # Complete finished jobs.
            while running and running[0][0] <= step:
                _, _, nodes = heapq.heappop(running)  # type: ignore[misc]
                free[np.asarray(nodes, dtype=int)] = True
            # Admit new submissions.
            while pending_idx < len(pending) and pending[pending_idx].submit_step <= step:
                queue.append(pending[pending_idx])
                pending_idx += 1
            if not queue:
                continue
            # FCFS head.
            while queue and start_job(queue[0], step):
                queue.pop(0)
            if not queue or not self.backfill:
                continue
            # EASY backfill: the head job reserves the earliest step at which
            # enough nodes will be free; shorter jobs may start now if they
            # finish before that reservation.
            head = queue[0]
            future_free = int(free.sum())
            reservation = None
            for end, _, nodes in sorted(running):  # type: ignore[misc]
                future_free += len(nodes)
                if future_free >= head.n_nodes:
                    reservation = end
                    break
            if reservation is None:
                continue
            for i in range(1, len(queue)):
                candidate = queue[i]
                if candidate.n_nodes <= int(free.sum()) and (
                    step + candidate.requested_steps <= reservation
                ):
                    if start_job(candidate, step):
                        queue.pop(i)
                        break
        return JobLog(records)


def simulate_joblog(
    n_nodes: int,
    n_timesteps: int,
    *,
    seed: int = 0,
    n_projects: int = 6,
    submit_rate: float = 0.05,
    mean_nodes: int = 32,
    mean_duration: int = 300,
    backfill: bool = True,
) -> JobLog:
    """One-call convenience: generate a workload and schedule it."""
    workload = WorkloadModel(
        n_nodes,
        n_projects=n_projects,
        seed=seed,
        mean_nodes=mean_nodes,
        mean_duration=mean_duration,
        submit_rate=submit_rate,
    )
    requests = workload.generate_requests(n_timesteps)
    simulator = SchedulerSimulator(n_nodes, backfill=backfill, seed=seed + 1)
    return simulator.run(requests, n_timesteps)

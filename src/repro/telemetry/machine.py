"""Machine topology descriptions (racks, cabinets, slots, blades, nodes).

The paper's datasets come from two ALCF machines:

* **Theta**, a Cray XC40 with 4,392 compute nodes in 24 racks, ~150 sensor
  readings per node at 10-30 second cadence (environment logs);
* **Polaris**, a 560-node HPE Apollo 6500 Gen10+ with four NVIDIA A100 GPUs
  per node (GPU metrics).

Real logs from those machines are not redistributable, so this module
describes their topology programmatically; the generator in
:mod:`repro.telemetry.generator` then synthesises sensor streams with the
same shape and multi-timescale structure.  The description also knows how to
emit the *layout specification string* of Sec. III-B (the grammar the rack
visualization consumes), which keeps the topology, the generated data, and
the rack view consistent by construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .sensors import SensorSpec, gpu_sensor_suite, xc40_sensor_suite

__all__ = ["MachineDescription", "NodeLocation", "theta_machine", "polaris_machine"]


@dataclass(frozen=True)
class NodeLocation:
    """Physical coordinates of one node within the machine hierarchy."""

    index: int
    row: int
    rack: int
    cabinet: int
    slot: int
    blade: int
    node: int

    @property
    def name(self) -> str:
        """Cray-style location name, e.g. ``c3-0c1s5b0n2``.

        ``c<rack>-<row>c<cabinet>s<slot>b<blade>n<node>`` — rack and row
        first (cabinet position on the floor), then the within-rack path.
        """
        return (
            f"c{self.rack}-{self.row}"
            f"c{self.cabinet}s{self.slot}b{self.blade}n{self.node}"
        )


@dataclass(frozen=True)
class MachineDescription:
    """Hierarchical description of a supercomputer's physical layout.

    The hierarchy mirrors the layout grammar of Sec. III-B:
    rows -> racks -> cabinets (cages/chassis) -> slots -> blades -> nodes.

    Attributes
    ----------
    name:
        System name (first token of the layout string, e.g. ``"xc40"``).
    n_rows / racks_per_row:
        Machine-room floor arrangement.
    cabinets_per_rack / slots_per_cabinet / blades_per_slot / nodes_per_blade:
        Within-rack packaging.
    node_limit:
        Optional cap on the number of populated nodes (Theta has 4,392
        populated out of a 4,608-slot packaging); nodes are populated in
        location order.
    sensors:
        Per-node sensor suite used by the telemetry generator.
    rack_row_alignment / rack_col_alignment / cabinet_* / slot_* / blade_*:
        Alignment codes of the layout grammar (-1 right-to-left,
        1 left-to-right, 2 bottom-to-top; default top-to-bottom).
    dt_seconds:
        Nominal sensor sampling interval (the environment logs sample every
        10-30 s; GPU metrics every ~3 s).
    """

    name: str
    n_rows: int
    racks_per_row: int
    cabinets_per_rack: int
    slots_per_cabinet: int
    blades_per_slot: int
    nodes_per_blade: int
    node_limit: int | None = None
    sensors: tuple[SensorSpec, ...] = field(default_factory=tuple)
    rack_row_alignment: int = 1
    rack_col_alignment: int = 2
    cabinet_row_alignment: int = 2
    cabinet_col_alignment: int = 1
    slot_row_alignment: int = 1
    slot_col_alignment: int = 1
    blade_row_alignment: int = 1
    blade_col_alignment: int = 1
    dt_seconds: float = 15.0

    def __post_init__(self) -> None:
        for attr in (
            "n_rows",
            "racks_per_row",
            "cabinets_per_rack",
            "slots_per_cabinet",
            "blades_per_slot",
            "nodes_per_blade",
        ):
            if getattr(self, attr) < 1:
                raise ValueError(f"{attr} must be >= 1, got {getattr(self, attr)!r}")
        if self.node_limit is not None and self.node_limit < 1:
            raise ValueError("node_limit must be >= 1 or None")
        if self.dt_seconds <= 0:
            raise ValueError("dt_seconds must be positive")

    # ------------------------------------------------------------------ #
    # Sizes
    # ------------------------------------------------------------------ #
    @property
    def n_racks(self) -> int:
        """Total number of racks on the floor."""
        return self.n_rows * self.racks_per_row

    @property
    def nodes_per_rack(self) -> int:
        """Packaging capacity of one rack."""
        return (
            self.cabinets_per_rack
            * self.slots_per_cabinet
            * self.blades_per_slot
            * self.nodes_per_blade
        )

    @property
    def capacity(self) -> int:
        """Total packaging capacity (before ``node_limit``)."""
        return self.n_racks * self.nodes_per_rack

    @property
    def n_nodes(self) -> int:
        """Number of populated nodes."""
        if self.node_limit is None:
            return self.capacity
        return min(self.node_limit, self.capacity)

    @property
    def n_sensors_per_node(self) -> int:
        """Sensor channels per node."""
        return len(self.sensors)

    # ------------------------------------------------------------------ #
    # Node enumeration
    # ------------------------------------------------------------------ #
    def node_locations(self) -> list[NodeLocation]:
        """Enumerate populated nodes in location order (row-major)."""
        locations: list[NodeLocation] = []
        index = 0
        limit = self.n_nodes
        for row in range(self.n_rows):
            for rack in range(self.racks_per_row):
                for cabinet in range(self.cabinets_per_rack):
                    for slot in range(self.slots_per_cabinet):
                        for blade in range(self.blades_per_slot):
                            for node in range(self.nodes_per_blade):
                                if index >= limit:
                                    return locations
                                locations.append(
                                    NodeLocation(
                                        index=index,
                                        row=row,
                                        rack=rack,
                                        cabinet=cabinet,
                                        slot=slot,
                                        blade=blade,
                                        node=node,
                                    )
                                )
                                index += 1
        return locations

    def node_names(self) -> list[str]:
        """Cray-style names of populated nodes, in index order."""
        return [loc.name for loc in self.node_locations()]

    def rack_of_node(self, node_index: int) -> int:
        """Flat rack index (0..n_racks-1) containing the given node."""
        if not 0 <= node_index < self.n_nodes:
            raise ValueError(f"node_index {node_index} out of range [0, {self.n_nodes})")
        rack_flat = node_index // self.nodes_per_rack
        return int(rack_flat)

    # ------------------------------------------------------------------ #
    # Layout grammar
    # ------------------------------------------------------------------ #
    def layout_spec(self) -> str:
        """Emit the Sec. III-B layout specification string.

        Format (verbatim from the paper)::

            "<system> <rack-row-align> <rack-col-align>
             row<row-range>:<rack-range>
             <cab-row-align> <cab-col-align> c:<cabinet-range>
             <slot-row-align> <slot-col-align> s:<slot-range>
             <blade-row-align> <blade-col-align> b:<blade-range>
             n:<node-range>"

        e.g. ``"xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0"``.
        (The paper's example elides the second alignment number for the
        inner groups; the parser in :mod:`repro.viz.layout` accepts both
        the one- and two-number forms, and this emitter uses the compact
        one-number form to match the paper.)
        """
        def rng(n: int) -> str:
            return "0" if n == 1 else f"0-{n - 1}"

        return (
            f"{self.name} {self.rack_row_alignment} {self.rack_col_alignment} "
            f"row{rng(self.n_rows)}:{rng(self.racks_per_row)} "
            f"{self.cabinet_row_alignment} c:{rng(self.cabinets_per_rack)} "
            f"{self.slot_row_alignment} s:{rng(self.slots_per_cabinet)} "
            f"{self.blade_row_alignment} b:{rng(self.blades_per_slot)} "
            f"n:{rng(self.nodes_per_blade)}"
        )

    def scaled(self, fraction: float) -> "MachineDescription":
        """Return a copy with roughly ``fraction`` of the racks (for tests).

        Scaling keeps whole rows when possible so rack views remain
        rectangular; at least one row and one rack per row survive.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        racks_per_row = max(1, round(self.racks_per_row * fraction))
        node_limit = None
        if self.node_limit is not None:
            node_limit = max(1, round(self.node_limit * (racks_per_row / self.racks_per_row)))
        return MachineDescription(
            name=self.name,
            n_rows=self.n_rows,
            racks_per_row=racks_per_row,
            cabinets_per_rack=self.cabinets_per_rack,
            slots_per_cabinet=self.slots_per_cabinet,
            blades_per_slot=self.blades_per_slot,
            nodes_per_blade=self.nodes_per_blade,
            node_limit=node_limit,
            sensors=self.sensors,
            rack_row_alignment=self.rack_row_alignment,
            rack_col_alignment=self.rack_col_alignment,
            cabinet_row_alignment=self.cabinet_row_alignment,
            cabinet_col_alignment=self.cabinet_col_alignment,
            slot_row_alignment=self.slot_row_alignment,
            slot_col_alignment=self.slot_col_alignment,
            blade_row_alignment=self.blade_row_alignment,
            blade_col_alignment=self.blade_col_alignment,
            dt_seconds=self.dt_seconds,
        )


def theta_machine(
    *,
    racks_per_row: int = 12,
    n_rows: int = 2,
    node_limit: int | None = 4392,
    dt_seconds: float = 15.0,
) -> MachineDescription:
    """Theta-like Cray XC40 description (24 racks, 4,392 populated nodes).

    Each rack packages 3 chassis ("cabinets" in the layout grammar) of 16
    slots with 4 nodes per blade slot — 192 node positions per rack, of
    which 4,392 are populated machine-wide, matching Sec. IV/V.  Pass a
    smaller ``racks_per_row``/``node_limit`` (or call
    :meth:`MachineDescription.scaled`) for laptop-scale experiments.
    """
    machine = MachineDescription(
        name="xc40",
        n_rows=n_rows,
        racks_per_row=racks_per_row,
        cabinets_per_rack=3,
        slots_per_cabinet=16,
        blades_per_slot=1,
        nodes_per_blade=4,
        node_limit=node_limit,
        sensors=xc40_sensor_suite(),
        dt_seconds=dt_seconds,
    )
    return machine


def polaris_machine(
    *,
    racks_per_row: int = 20,
    n_rows: int = 2,
    node_limit: int | None = 560,
    dt_seconds: float = 3.0,
) -> MachineDescription:
    """Polaris-like HPE Apollo 6500 description (560 nodes, 4 A100s each).

    Nodes carry a GPU-centric sensor suite (four GPU temperatures plus GPU
    power and memory temperature), sampled every ~3 seconds — the "GPU
    metrics" dataset of Sec. IV.
    """
    return MachineDescription(
        name="polaris",
        n_rows=n_rows,
        racks_per_row=racks_per_row,
        cabinets_per_rack=7,
        slots_per_cabinet=2,
        blades_per_slot=1,
        nodes_per_blade=1,
        node_limit=node_limit,
        sensors=gpu_sensor_suite(),
        dt_seconds=dt_seconds,
    )

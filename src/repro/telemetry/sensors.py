"""Per-node sensor channel specifications.

The environment logs the paper analyses carry ~150 readings per node —
voltages, currents, air/water/CPU temperatures, and fan speeds.  The case
studies focus on temperature channels; this module defines typed sensor
specifications (name, kind, unit, nominal operating point, noise level,
response to load and to cooling) that the generator composes into
multi-timescale signals.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum

__all__ = ["SensorKind", "SensorSpec", "xc40_sensor_suite", "gpu_sensor_suite"]


class SensorKind(Enum):
    """Physical quantity a sensor channel measures."""

    TEMPERATURE = "temperature"
    VOLTAGE = "voltage"
    CURRENT = "current"
    POWER = "power"
    FAN_SPEED = "fan_speed"


@dataclass(frozen=True)
class SensorSpec:
    """One sensor channel on every node of a machine.

    Attributes
    ----------
    name:
        Channel name as it would appear in the log (e.g. ``"cpu_temp"``).
    kind:
        Physical quantity (:class:`SensorKind`).
    unit:
        Engineering unit string (degC, V, A, W, RPM).
    nominal:
        Baseline operating value when the node is idle and the room is at
        its reference temperature.
    load_coefficient:
        Added to the reading per unit of node utilisation (0-1): a busy
        CPU runs ~15-25 degC hotter, draws more current, and so on.
    cooling_coefficient:
        Sensitivity to the facility cooling-loop oscillation (the slow
        plant-wide dynamic the mrDMD level-1 modes capture).
    noise_std:
        Standard deviation of the per-sample measurement noise.
    diurnal_coefficient:
        Sensitivity to the diurnal (building/ambient) cycle.
    """

    name: str
    kind: SensorKind
    unit: str
    nominal: float
    load_coefficient: float = 0.0
    cooling_coefficient: float = 0.0
    noise_std: float = 0.1
    diurnal_coefficient: float = 0.0

    def __post_init__(self) -> None:
        if self.noise_std < 0:
            raise ValueError("noise_std must be non-negative")


def xc40_sensor_suite() -> tuple[SensorSpec, ...]:
    """Representative Cray XC40 per-node environment sensors.

    A compact but structurally faithful subset of the ~150 real channels:
    four temperature readings per node (the quantity analysed in the case
    studies: "four readings of each type per node"), a supply voltage, a
    node power draw, and a cabinet fan speed.
    """
    return (
        SensorSpec(
            name="cpu_temp",
            kind=SensorKind.TEMPERATURE,
            unit="degC",
            nominal=48.0,
            load_coefficient=22.0,
            cooling_coefficient=2.5,
            diurnal_coefficient=1.5,
            noise_std=0.6,
        ),
        SensorSpec(
            name="air_inlet_temp",
            kind=SensorKind.TEMPERATURE,
            unit="degC",
            nominal=24.0,
            load_coefficient=2.0,
            cooling_coefficient=3.0,
            diurnal_coefficient=2.0,
            noise_std=0.4,
        ),
        SensorSpec(
            name="air_outlet_temp",
            kind=SensorKind.TEMPERATURE,
            unit="degC",
            nominal=34.0,
            load_coefficient=8.0,
            cooling_coefficient=2.8,
            diurnal_coefficient=1.8,
            noise_std=0.5,
        ),
        SensorSpec(
            name="water_temp",
            kind=SensorKind.TEMPERATURE,
            unit="degC",
            nominal=18.0,
            load_coefficient=1.0,
            cooling_coefficient=4.0,
            diurnal_coefficient=0.8,
            noise_std=0.3,
        ),
        SensorSpec(
            name="vccp_voltage",
            kind=SensorKind.VOLTAGE,
            unit="V",
            nominal=1.8,
            load_coefficient=-0.05,
            cooling_coefficient=0.0,
            diurnal_coefficient=0.0,
            noise_std=0.005,
        ),
        SensorSpec(
            name="node_power",
            kind=SensorKind.POWER,
            unit="W",
            nominal=110.0,
            load_coefficient=180.0,
            cooling_coefficient=0.0,
            diurnal_coefficient=0.0,
            noise_std=4.0,
        ),
        SensorSpec(
            name="cabinet_fan_speed",
            kind=SensorKind.FAN_SPEED,
            unit="RPM",
            nominal=2600.0,
            load_coefficient=500.0,
            cooling_coefficient=120.0,
            diurnal_coefficient=40.0,
            noise_std=25.0,
        ),
    )


def gpu_sensor_suite() -> tuple[SensorSpec, ...]:
    """Polaris GPU-metrics sensors: four A100 temperatures plus power/memory."""
    gpu_temps = tuple(
        SensorSpec(
            name=f"gpu{i}_temp",
            kind=SensorKind.TEMPERATURE,
            unit="degC",
            nominal=38.0,
            load_coefficient=35.0,
            cooling_coefficient=2.0,
            diurnal_coefficient=1.0,
            noise_std=0.8,
        )
        for i in range(4)
    )
    return gpu_temps + (
        SensorSpec(
            name="gpu_power",
            kind=SensorKind.POWER,
            unit="W",
            nominal=60.0,
            load_coefficient=340.0,
            cooling_coefficient=0.0,
            diurnal_coefficient=0.0,
            noise_std=6.0,
        ),
        SensorSpec(
            name="hbm_temp",
            kind=SensorKind.TEMPERATURE,
            unit="degC",
            nominal=42.0,
            load_coefficient=30.0,
            cooling_coefficient=1.5,
            diurnal_coefficient=0.8,
            noise_std=0.7,
        ),
    )

"""Streaming replay of telemetry for the online-analysis evaluation.

The paper simulates "a practical streaming analysis context by introducing
new time points derived from real-world datasets" (Sec. IV): an initial fit
over the first block followed by incremental additions of fixed-size chunks.
:class:`StreamingReplay` reproduces exactly that protocol on top of either a
pre-generated :class:`~repro.telemetry.generator.TelemetryStream` or a
generator that synthesises chunks on demand (keeping memory bounded for
long runs).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .anomalies import Anomaly
from .generator import TelemetryGenerator, TelemetryStream

__all__ = ["StreamingReplay", "ChunkedSource"]


@dataclass
class StreamingReplay:
    """Replay a fixed telemetry block as an initial fit plus chunks.

    Attributes
    ----------
    stream:
        The full telemetry block to replay.
    initial_size:
        Number of snapshots handed out by :meth:`initial`.
    chunk_size:
        Size of each subsequent chunk from :meth:`chunks`.
    """

    stream: TelemetryStream
    initial_size: int
    chunk_size: int

    def __post_init__(self) -> None:
        if self.initial_size < 1:
            raise ValueError("initial_size must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.initial_size > self.stream.n_timesteps:
            raise ValueError(
                f"initial_size {self.initial_size} exceeds stream length "
                f"{self.stream.n_timesteps}"
            )

    def initial(self) -> np.ndarray:
        """The initial-fit block, shape ``(P, initial_size)``."""
        return self.stream.values[:, : self.initial_size]

    def chunks(self) -> Iterator[np.ndarray]:
        """Yield successive ``(P, <=chunk_size)`` update blocks."""
        total = self.stream.n_timesteps
        for lo in range(self.initial_size, total, self.chunk_size):
            yield self.stream.values[:, lo : min(lo + self.chunk_size, total)]

    @property
    def n_chunks(self) -> int:
        """Number of update chunks the replay will yield."""
        remaining = self.stream.n_timesteps - self.initial_size
        if remaining <= 0:
            return 0
        return int(np.ceil(remaining / self.chunk_size))


class ChunkedSource:
    """Generate telemetry chunk by chunk, phase-coherently.

    Unlike :class:`StreamingReplay` (which slices a pre-generated block),
    this source synthesises each chunk on demand with a consistent
    ``start_step``, so arbitrarily long streams can be consumed in bounded
    memory — the regime the paper's week-scale environment logs live in.
    """

    def __init__(
        self,
        generator: TelemetryGenerator,
        *,
        sensors: Sequence[str] | None = None,
        nodes: Sequence[int] | None = None,
        anomalies: Sequence[Anomaly] = (),
    ) -> None:
        self._generator = generator
        self._sensors = sensors
        self._nodes = nodes
        self._anomalies = tuple(anomalies)
        self._position = 0

    @property
    def position(self) -> int:
        """Absolute index of the next snapshot to be generated."""
        return self._position

    def next_chunk(self, n_timesteps: int) -> TelemetryStream:
        """Generate the next ``n_timesteps`` snapshots and advance."""
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        chunk = self._generator.generate(
            n_timesteps,
            sensors=self._sensors,
            nodes=self._nodes,
            anomalies=self._anomalies,
            start_step=self._position,
        )
        self._position += n_timesteps
        return chunk

    def take(self, chunk_sizes: Sequence[int]) -> list[TelemetryStream]:
        """Generate several consecutive chunks (convenience for tests)."""
        return [self.next_chunk(size) for size in chunk_sizes]

"""Synthetic multifidelity environment-log substrate (Theta / Polaris shaped)."""

from .anomalies import (
    Anomaly,
    CoolingDegradation,
    HotNodes,
    SensorFault,
    StalledNodes,
    apply_anomalies,
)
from .generator import TelemetryGenerator, TelemetryStream
from .machine import MachineDescription, NodeLocation, polaris_machine, theta_machine
from .sensors import SensorKind, SensorSpec, gpu_sensor_suite, xc40_sensor_suite
from .streaming import ChunkedSource, StreamingReplay

__all__ = [
    "Anomaly",
    "CoolingDegradation",
    "HotNodes",
    "SensorFault",
    "StalledNodes",
    "apply_anomalies",
    "TelemetryGenerator",
    "TelemetryStream",
    "MachineDescription",
    "NodeLocation",
    "polaris_machine",
    "theta_machine",
    "SensorKind",
    "SensorSpec",
    "gpu_sensor_suite",
    "xc40_sensor_suite",
    "ChunkedSource",
    "StreamingReplay",
]

"""Anomaly injection for the synthetic telemetry substrate.

The case studies hinge on recognisable deviations from baseline behaviour:
nodes running hot (z-score > 2, overheating risk), nodes sitting idle or
stalled (strongly negative z-scores), failing sensors, and rack-level
cooling degradation.  Each anomaly here is a declarative description; the
generator materialises them into additive per-(node, sensor, time) offsets,
and — because the descriptions are explicit — tests and case studies know
the ground truth they should recover.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .sensors import SensorKind, SensorSpec

__all__ = [
    "Anomaly",
    "HotNodes",
    "StalledNodes",
    "SensorFault",
    "CoolingDegradation",
    "apply_anomalies",
]


@dataclass(frozen=True)
class Anomaly:
    """Base class: a time-bounded disturbance affecting a set of nodes.

    Attributes
    ----------
    node_indices:
        Populated-node indices the anomaly affects.
    start / stop:
        Snapshot-index range ``[start, stop)`` during which it is active
        (``stop=None`` means "until the end of the window").
    label:
        Free-text tag carried into alignment reports.
    """

    node_indices: tuple[int, ...]
    start: int = 0
    stop: int | None = None
    label: str = ""

    def active_slice(self, n_timesteps: int) -> slice:
        """Clip the anomaly's activity window to the generated timeline."""
        stop = n_timesteps if self.stop is None else min(self.stop, n_timesteps)
        start = min(max(self.start, 0), n_timesteps)
        return slice(start, max(stop, start))

    # Subclasses override.
    def offsets(
        self,
        sensor: SensorSpec,
        n_timesteps: int,
        rng: np.random.Generator,
    ) -> np.ndarray | None:
        """Additive offset for one sensor channel, shape ``(len(nodes), T_active)``.

        Return ``None`` when the anomaly does not touch this sensor kind.
        """
        raise NotImplementedError


@dataclass(frozen=True)
class HotNodes(Anomaly):
    """Sustained elevated temperatures on a set of nodes (case study 1/2).

    ``delta`` is the steady-state temperature excess in the sensor's units;
    a short exponential ramp-in avoids an unphysical step.
    """

    delta: float = 12.0
    ramp_steps: int = 30

    def offsets(self, sensor, n_timesteps, rng):  # noqa: D102 - documented on base
        if sensor.kind is not SensorKind.TEMPERATURE:
            return None
        window = self.active_slice(n_timesteps)
        length = window.stop - window.start
        if length <= 0:
            return None
        ramp = 1.0 - np.exp(-np.arange(length) / max(self.ramp_steps, 1))
        profile = self.delta * ramp
        jitter = 1.0 + 0.05 * rng.standard_normal(len(self.node_indices))
        return jitter[:, None] * profile[None, :]


@dataclass(frozen=True)
class StalledNodes(Anomaly):
    """Nodes whose jobs stopped making progress: temperatures sag to idle.

    Mirrors the paper's interpretation of strongly negative z-scores
    ("the jobs are not utilizing the node and the node is possibly
    stalled").  ``drop`` is subtracted from temperature-like channels and
    power draw collapses by ``power_fraction``.
    """

    drop: float = 8.0
    power_fraction: float = 0.25
    ramp_steps: int = 20

    def offsets(self, sensor, n_timesteps, rng):  # noqa: D102
        window = self.active_slice(n_timesteps)
        length = window.stop - window.start
        if length <= 0:
            return None
        ramp = 1.0 - np.exp(-np.arange(length) / max(self.ramp_steps, 1))
        if sensor.kind is SensorKind.TEMPERATURE:
            profile = -self.drop * ramp
        elif sensor.kind is SensorKind.POWER:
            profile = -sensor.load_coefficient * self.power_fraction * ramp
        else:
            return None
        jitter = 1.0 + 0.05 * rng.standard_normal(len(self.node_indices))
        return jitter[:, None] * profile[None, :]


@dataclass(frozen=True)
class SensorFault(Anomaly):
    """A sensor that intermittently reports wild values (measurement fault).

    ``spike_probability`` of affected samples are replaced by offsets drawn
    from a wide normal distribution — high-frequency content the mrDMD
    reconstruction should largely filter out (Fig. 3's denoising claim).
    """

    sensor_name: str = "cpu_temp"
    spike_probability: float = 0.02
    spike_std: float = 15.0

    def offsets(self, sensor, n_timesteps, rng):  # noqa: D102
        if sensor.name != self.sensor_name:
            return None
        window = self.active_slice(n_timesteps)
        length = window.stop - window.start
        if length <= 0:
            return None
        mask = rng.random((len(self.node_indices), length)) < self.spike_probability
        spikes = rng.standard_normal((len(self.node_indices), length)) * self.spike_std
        return np.where(mask, spikes, 0.0)


@dataclass(frozen=True)
class CoolingDegradation(Anomaly):
    """Rack-level cooling degradation: slow temperature creep on all nodes.

    ``rate_per_hour`` degC of linear drift accumulates while active —
    exactly the kind of slow, spatially coherent pattern the level-1/2
    mrDMD modes should capture.
    """

    rate_per_hour: float = 1.5
    dt_seconds: float = 15.0

    def offsets(self, sensor, n_timesteps, rng):  # noqa: D102
        if sensor.kind is not SensorKind.TEMPERATURE:
            return None
        window = self.active_slice(n_timesteps)
        length = window.stop - window.start
        if length <= 0:
            return None
        hours = np.arange(length) * self.dt_seconds / 3600.0
        profile = self.rate_per_hour * hours
        return np.broadcast_to(profile, (len(self.node_indices), length)).copy()


def apply_anomalies(
    values: np.ndarray,
    sensor: SensorSpec,
    node_index_of_row: np.ndarray,
    anomalies: Sequence[Anomaly],
    rng: np.random.Generator,
) -> np.ndarray:
    """Apply every anomaly's offsets in place to one sensor block.

    Parameters
    ----------
    values:
        ``(n_nodes, T)`` array for a single sensor channel (modified in
        place and also returned).
    sensor:
        The channel's specification.
    node_index_of_row:
        Mapping from row position to populated-node index.
    anomalies:
        The anomaly descriptions to apply.
    rng:
        Random generator for per-anomaly jitter.
    """
    values = np.asarray(values)
    n_timesteps = values.shape[1]
    row_of_node = {int(node): row for row, node in enumerate(node_index_of_row)}
    for anomaly in anomalies:
        rows = [row_of_node[n] for n in anomaly.node_indices if n in row_of_node]
        if not rows:
            continue
        offsets = anomaly.offsets(sensor, n_timesteps, rng)
        if offsets is None:
            continue
        window = anomaly.active_slice(n_timesteps)
        # ``offsets`` rows follow anomaly.node_indices order; restrict to the
        # rows actually present in this block.
        present = [i for i, n in enumerate(anomaly.node_indices) if n in row_of_node]
        values[np.asarray(rows), window] += offsets[present, :]
    return values

"""Synthetic multifidelity environment-log generator.

Produces sensor matrices with the same shape and multi-timescale structure
as the Theta environment logs and Polaris GPU metrics the paper analyses:

* rows are (sensor channel, node) pairs, grouped by channel so that a
  single channel (e.g. every node's ``cpu_temp``) is a contiguous view;
* columns are snapshots at the machine's sampling interval;
* each reading composes a nominal operating point, the facility cooling
  loop (slow, rack-coherent), the diurnal cycle (very slow), the thermal
  response to job-induced utilisation (medium), anomaly offsets, and AR(1)
  measurement noise (fast) — several distinct timescales for mrDMD to
  separate.

The generator is deterministic given its seed, so tests and case studies
can assert against known ground truth, and it never materialises more than
the requested window (week-scale runs stream chunk by chunk through
:mod:`repro.telemetry.streaming`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from . import dynamics
from .anomalies import Anomaly, apply_anomalies
from .machine import MachineDescription
from .sensors import SensorSpec

__all__ = ["TelemetryStream", "TelemetryGenerator"]


@dataclass
class TelemetryStream:
    """A generated block of telemetry.

    Attributes
    ----------
    values:
        ``(P, T)`` sensor readings; ``P = n_selected_channels * n_nodes``.
    dt:
        Sampling interval in seconds.
    sensor_names:
        Length-``P`` channel name per row.
    node_indices:
        Length-``P`` populated-node index per row.
    machine:
        The machine description the stream was generated for.
    utilization:
        The ``(n_nodes, T)`` ground-truth utilisation used (kept for
        alignment tests; ``None`` when supplied externally and not stored).
    start_step:
        Absolute snapshot index of the first column (non-zero for
        continuation chunks).
    """

    values: np.ndarray
    dt: float
    sensor_names: np.ndarray
    node_indices: np.ndarray
    machine: MachineDescription
    utilization: np.ndarray | None = None
    start_step: int = 0

    @property
    def n_rows(self) -> int:
        """Number of (channel, node) rows."""
        return int(self.values.shape[0])

    @property
    def n_timesteps(self) -> int:
        return int(self.values.shape[1])

    @property
    def n_nodes(self) -> int:
        """Number of distinct nodes present."""
        return int(np.unique(self.node_indices).size)

    @property
    def times(self) -> np.ndarray:
        """Absolute sample times in seconds."""
        return (np.arange(self.n_timesteps) + self.start_step) * self.dt

    def channel(self, sensor_name: str) -> "TelemetryStream":
        """Restrict to a single sensor channel (a view, not a copy)."""
        mask = self.sensor_names == sensor_name
        if not np.any(mask):
            raise KeyError(f"unknown sensor channel {sensor_name!r}")
        return TelemetryStream(
            values=self.values[mask],
            dt=self.dt,
            sensor_names=self.sensor_names[mask],
            node_indices=self.node_indices[mask],
            machine=self.machine,
            utilization=self.utilization,
            start_step=self.start_step,
        )

    def select_nodes(self, nodes: Sequence[int]) -> "TelemetryStream":
        """Restrict to rows belonging to the given populated-node indices."""
        wanted = np.asarray(sorted(set(int(n) for n in nodes)), dtype=int)
        mask = np.isin(self.node_indices, wanted)
        if not np.any(mask):
            raise ValueError("selection matches no rows")
        return TelemetryStream(
            values=self.values[mask],
            dt=self.dt,
            sensor_names=self.sensor_names[mask],
            node_indices=self.node_indices[mask],
            machine=self.machine,
            utilization=self.utilization,
            start_step=self.start_step,
        )

    def window(self, start: int, stop: int) -> "TelemetryStream":
        """Column slice ``[start, stop)`` as a new stream (view)."""
        if not 0 <= start <= stop <= self.n_timesteps:
            raise ValueError(
                f"window [{start}, {stop}) out of range for {self.n_timesteps} snapshots"
            )
        return TelemetryStream(
            values=self.values[:, start:stop],
            dt=self.dt,
            sensor_names=self.sensor_names,
            node_indices=self.node_indices,
            machine=self.machine,
            utilization=None if self.utilization is None else self.utilization[:, start:stop],
            start_step=self.start_step + start,
        )

    def node_average(self) -> np.ndarray:
        """Average readings per node (over its channels), shape ``(n_nodes, T)``.

        Rows are ordered by ascending node index; useful for producing one
        z-score per node regardless of how many channels were generated.
        """
        unique_nodes = np.unique(self.node_indices)
        out = np.zeros((unique_nodes.size, self.n_timesteps))
        for i, node in enumerate(unique_nodes):
            out[i] = self.values[self.node_indices == node].mean(axis=0)
        return out


class TelemetryGenerator:
    """Deterministic synthetic telemetry source for a given machine.

    Parameters
    ----------
    machine:
        Topology + sensor suite (see :mod:`repro.telemetry.machine`).
    seed:
        Seed of the internal random generator; the same seed and arguments
        always produce the same stream.
    cooling_period / diurnal_period:
        Periods (seconds) of the two plant-wide oscillations.
    utilization_target:
        Average node utilisation the internal workload model aims for.
    noise_scale:
        Global multiplier on per-sensor noise standard deviations.
    """

    def __init__(
        self,
        machine: MachineDescription,
        *,
        seed: int = 0,
        cooling_period: float = 600.0,
        diurnal_period: float = 86_400.0,
        utilization_target: float = 0.7,
        noise_scale: float = 1.0,
    ) -> None:
        if cooling_period <= 0 or diurnal_period <= 0:
            raise ValueError("periods must be positive")
        if noise_scale < 0:
            raise ValueError("noise_scale must be non-negative")
        self.machine = machine
        self.seed = int(seed)
        self.cooling_period = float(cooling_period)
        self.diurnal_period = float(diurnal_period)
        self.utilization_target = float(utilization_target)
        self.noise_scale = float(noise_scale)

    # ------------------------------------------------------------------ #
    def _resolve_sensors(self, sensors: Sequence[str] | None) -> list[SensorSpec]:
        available = {spec.name: spec for spec in self.machine.sensors}
        if sensors is None:
            return list(self.machine.sensors)
        resolved = []
        for name in sensors:
            if name not in available:
                raise KeyError(
                    f"machine {self.machine.name!r} has no sensor {name!r}; "
                    f"available: {sorted(available)}"
                )
            resolved.append(available[name])
        return resolved

    def generate(
        self,
        n_timesteps: int,
        *,
        sensors: Sequence[str] | None = None,
        nodes: Sequence[int] | None = None,
        utilization: np.ndarray | None = None,
        anomalies: Sequence[Anomaly] = (),
        start_step: int = 0,
    ) -> TelemetryStream:
        """Generate ``n_timesteps`` snapshots of telemetry.

        Parameters
        ----------
        n_timesteps:
            Number of snapshots (columns).
        sensors:
            Channel names to generate (default: every channel of the
            machine's suite).  Case studies typically pass
            ``["cpu_temp"]``.
        nodes:
            Populated-node indices to include (default: all).
        utilization:
            Optional externally supplied ``(n_nodes_selected, T)`` load
            matrix (e.g. from the job-log scheduler simulation); when
            omitted an internal synthetic workload is used.
        anomalies:
            Anomaly descriptions to inject (see
            :mod:`repro.telemetry.anomalies`).
        start_step:
            Absolute index of the first snapshot — lets continuation
            chunks stay phase-coherent with earlier ones, which is what
            makes the streaming evaluation realistic.
        """
        if n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        machine = self.machine
        specs = self._resolve_sensors(sensors)
        if nodes is None:
            node_ids = np.arange(machine.n_nodes)
        else:
            node_ids = np.asarray(sorted(set(int(n) for n in nodes)), dtype=int)
            if node_ids.size == 0:
                raise ValueError("nodes must contain at least one index")
            if node_ids.min() < 0 or node_ids.max() >= machine.n_nodes:
                raise ValueError(
                    f"node indices must be in [0, {machine.n_nodes}), got "
                    f"[{node_ids.min()}, {node_ids.max()}]"
                )
        n_nodes = node_ids.size
        dt = machine.dt_seconds
        times = (np.arange(n_timesteps) + start_step) * dt

        # Deterministic sub-streams: structure noise depends only on the seed,
        # not on which sensors/nodes were requested.
        rng_structure = np.random.default_rng(self.seed)
        rng_noise = np.random.default_rng(self.seed + 1_000_003 + start_step)
        rng_anom = np.random.default_rng(self.seed + 7_000_117)

        # Plant-wide components.
        diurnal = dynamics.diurnal_cycle(times, period=self.diurnal_period)
        racks = np.array([machine.rack_of_node(int(n)) for n in node_ids])
        cooling_all = dynamics.cooling_loop(
            times,
            machine.n_racks,
            period=self.cooling_period,
            rng=rng_structure,
        )
        cooling = cooling_all[racks, :]                      # (n_nodes, T)

        # Workload-induced load.
        if utilization is None:
            utilization = dynamics.synthetic_utilization(
                n_nodes,
                n_timesteps,
                rng=rng_structure,
                target_utilization=self.utilization_target,
            )
        else:
            utilization = np.asarray(utilization, dtype=float)
            if utilization.shape != (n_nodes, n_timesteps):
                raise ValueError(
                    f"utilization must have shape ({n_nodes}, {n_timesteps}), "
                    f"got {utilization.shape}"
                )
        thermal_load = dynamics.thermal_response(utilization, dt=dt)

        # Per-node static offsets (manufacturing / placement variability).
        node_bias = rng_structure.standard_normal(n_nodes) * 0.5

        blocks: list[np.ndarray] = []
        names: list[np.ndarray] = []
        rows_nodes: list[np.ndarray] = []
        for spec in specs:
            block = (
                spec.nominal
                + node_bias[:, None] * (1.0 if spec.kind.value == "temperature" else 0.1)
                + spec.load_coefficient * thermal_load
                + spec.cooling_coefficient * cooling
                + spec.diurnal_coefficient * diurnal[None, :]
            )
            if self.noise_scale > 0 and spec.noise_std > 0:
                block = block + dynamics.ar1_noise(
                    (n_nodes, n_timesteps),
                    rng=rng_noise,
                    std=spec.noise_std * self.noise_scale,
                )
            if anomalies:
                apply_anomalies(block, spec, node_ids, anomalies, rng_anom)
            blocks.append(block)
            names.append(np.full(n_nodes, spec.name, dtype=object))
            rows_nodes.append(node_ids.copy())

        return TelemetryStream(
            values=np.vstack(blocks),
            dt=dt,
            sensor_names=np.concatenate(names),
            node_indices=np.concatenate(rows_nodes),
            machine=machine,
            utilization=utilization,
            start_step=start_step,
        )

    def generate_matrix(
        self,
        n_rows: int,
        n_timesteps: int,
        *,
        sensor: str | None = None,
        anomalies: Sequence[Anomaly] = (),
        start_step: int = 0,
    ) -> np.ndarray:
        """Generate a bare ``(n_rows, n_timesteps)`` matrix for benchmarks.

        Table I and Fig. 9 benchmark fixed-size matrices (e.g. 1,000 series
        by 1,000-30,000 time points); this helper tiles/truncates node rows
        of a single channel to exactly ``n_rows`` without requiring a
        machine of that exact size.
        """
        if n_rows < 1:
            raise ValueError("n_rows must be >= 1")
        channel = sensor or self.machine.sensors[0].name
        n_nodes = self.machine.n_nodes
        reps = int(np.ceil(n_rows / n_nodes))
        streams = []
        for rep in range(reps):
            gen = TelemetryGenerator(
                self.machine,
                seed=self.seed + rep,
                cooling_period=self.cooling_period,
                diurnal_period=self.diurnal_period,
                utilization_target=self.utilization_target,
                noise_scale=self.noise_scale,
            )
            streams.append(
                gen.generate(
                    n_timesteps,
                    sensors=[channel],
                    anomalies=anomalies,
                    start_step=start_step,
                ).values
            )
        stacked = np.vstack(streams)
        return np.ascontiguousarray(stacked[:n_rows, :])

"""Multi-timescale dynamic components of the synthetic environment logs.

mrDMD's value proposition is separating dynamics that live at different
timescales, so the synthetic substrate must contain *known* structure at
several frequencies.  Each component here returns a plain NumPy array and is
deterministic given its RNG, which lets the tests assert that the
decomposition recovers what was injected (a ground-truth check the paper
could not do with real logs):

* :func:`diurnal_cycle` — the building/ambient daily cycle (period ~24 h);
* :func:`cooling_loop` — the facility cooling oscillation (period ~minutes),
  with a per-rack phase lag so it appears as a spatially coherent slow mode;
* :func:`synthetic_utilization` — piecewise-constant job load per node
  (step functions with random start/stop), the "job-induced" mid-frequency
  dynamics;
* :func:`thermal_response` — first-order low-pass of the utilisation, since
  temperatures follow load with a lag;
* :func:`ar1_noise` — temporally correlated measurement noise.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "diurnal_cycle",
    "cooling_loop",
    "synthetic_utilization",
    "thermal_response",
    "ar1_noise",
]


def diurnal_cycle(
    times: np.ndarray,
    *,
    period: float = 86_400.0,
    phase: float = 0.0,
) -> np.ndarray:
    """Unit-amplitude daily cycle evaluated at ``times`` (seconds)."""
    times = np.asarray(times, dtype=float)
    if period <= 0:
        raise ValueError("period must be positive")
    return np.sin(2.0 * np.pi * times / period + phase)


def cooling_loop(
    times: np.ndarray,
    n_racks: int,
    *,
    period: float = 600.0,
    rack_phase_lag: float = 0.35,
    amplitude_jitter: float = 0.1,
    rng: np.random.Generator | None = None,
) -> np.ndarray:
    """Per-rack cooling-loop oscillation, shape ``(n_racks, T)``.

    Racks further down the loop see the same oscillation with a phase lag,
    producing the spatially coherent slow dynamics that show up as
    neighbouring nodes having similar z-scores (Sec. V, "nodes in close
    proximity show similar z-scores").
    """
    times = np.asarray(times, dtype=float)
    if n_racks < 1:
        raise ValueError("n_racks must be >= 1")
    if period <= 0:
        raise ValueError("period must be positive")
    rng = rng or np.random.default_rng()
    phases = np.arange(n_racks) * rack_phase_lag
    amplitudes = 1.0 + amplitude_jitter * rng.standard_normal(n_racks)
    return amplitudes[:, None] * np.sin(
        2.0 * np.pi * times[None, :] / period + phases[:, None]
    )


def synthetic_utilization(
    n_nodes: int,
    n_timesteps: int,
    *,
    rng: np.random.Generator,
    mean_job_nodes: int = 64,
    mean_job_duration: int = 400,
    target_utilization: float = 0.7,
    max_jobs: int = 10_000,
) -> np.ndarray:
    """Piecewise-constant per-node utilisation in ``[0, 1]``.

    Jobs occupy contiguous node ranges (the scheduler's placement is mostly
    contiguous on Theta) for a random duration with a random intensity.
    The loop keeps adding jobs until the average utilisation reaches the
    target or ``max_jobs`` is hit; remaining gaps stay idle.

    This is the lightweight internal model; the :mod:`repro.joblog`
    substrate produces the same matrix from an explicit scheduler
    simulation when job/environment alignment matters.
    """
    if n_nodes < 1 or n_timesteps < 1:
        raise ValueError("n_nodes and n_timesteps must be >= 1")
    if not 0.0 <= target_utilization <= 1.0:
        raise ValueError("target_utilization must be in [0, 1]")
    util = np.zeros((n_nodes, n_timesteps), dtype=float)
    total_cells = util.size
    busy_cells = 0
    jobs = 0
    while busy_cells < target_utilization * total_cells and jobs < max_jobs:
        width = max(1, int(rng.exponential(mean_job_nodes)))
        width = min(width, n_nodes)
        start_node = int(rng.integers(0, n_nodes - width + 1))
        duration = max(8, int(rng.exponential(mean_job_duration)))
        duration = min(duration, n_timesteps)
        start_t = int(rng.integers(0, max(1, n_timesteps - duration + 1)))
        intensity = float(rng.uniform(0.4, 1.0))
        block = util[start_node : start_node + width, start_t : start_t + duration]
        newly_busy = np.count_nonzero(block == 0.0)
        np.maximum(block, intensity, out=block)
        busy_cells += newly_busy
        jobs += 1
    return util


def thermal_response(
    utilization: np.ndarray,
    *,
    dt: float,
    time_constant: float = 120.0,
) -> np.ndarray:
    """First-order low-pass response of temperature to utilisation.

    ``y[t] = y[t-1] + (u[t] - y[t-1]) * (dt / (tau + dt))`` applied along
    the time axis; vectorised over nodes via a scan implemented with a
    simple loop over time (T iterations of O(P) work — the unavoidable
    sequential dependency of an IIR filter).
    """
    utilization = np.asarray(utilization, dtype=float)
    if utilization.ndim != 2:
        raise ValueError("utilization must be 2-D (nodes, time)")
    if dt <= 0 or time_constant <= 0:
        raise ValueError("dt and time_constant must be positive")
    alpha = dt / (time_constant + dt)
    out = np.empty_like(utilization)
    state = utilization[:, 0].copy()
    out[:, 0] = state
    for t in range(1, utilization.shape[1]):
        state += (utilization[:, t] - state) * alpha
        out[:, t] = state
    return out


def ar1_noise(
    shape: tuple[int, int],
    *,
    rng: np.random.Generator,
    correlation: float = 0.6,
    std: float = 1.0,
) -> np.ndarray:
    """Temporally correlated (AR(1)) noise with stationary std ``std``."""
    if not 0.0 <= correlation < 1.0:
        raise ValueError("correlation must be in [0, 1)")
    if std < 0:
        raise ValueError("std must be non-negative")
    n_rows, n_cols = shape
    innovations = rng.standard_normal((n_rows, n_cols)) * std * np.sqrt(1 - correlation**2)
    out = np.empty((n_rows, n_cols), dtype=float)
    out[:, 0] = rng.standard_normal(n_rows) * std
    for t in range(1, n_cols):
        out[:, t] = correlation * out[:, t - 1] + innovations[:, t]
    return out

"""Incremental PCA over a growing time axis — Fig. 8/9 streaming baseline.

scikit-learn's ``IncrementalPCA`` streams *samples*; the paper's streaming
setting instead appends *time points* (feature columns) to a fixed set of
sensor rows.  The natural incremental-PCA analogue in that orientation is to
maintain a truncated SVD of the (row-centred) data matrix under column
appends — precisely what :class:`repro.core.isvd.IncrementalSVD` provides —
and read the sample embedding off the left factors (``U_k diag(s_k)``).

``partial_fit`` therefore costs ``O(P (q + c)^2)`` per chunk, which is why
IPCA is the fastest partial-fit curve in Fig. 9 (and why the reproduction
preserves that ordering).
"""

from __future__ import annotations

import numpy as np

from ..core.isvd import IncrementalSVD
from .base import DimensionalityReducer

__all__ = ["IncrementalPCA"]


class IncrementalPCA(DimensionalityReducer):
    """Feature-streaming incremental PCA built on the incremental SVD.

    Parameters
    ----------
    n_components:
        Output dimensionality (2 in the paper).
    rank:
        Rank retained internally by the incremental SVD (defaults to
        ``max(8, n_components)`` — keeping a few extra directions makes the
        leading ones track the batch solution more closely).
    center_rows:
        Remove each sensor row's running mean before updating; this is the
        orientation-appropriate analogue of PCA's feature centering.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        rank: int | None = None,
        center_rows: bool = True,
    ) -> None:
        super().__init__(n_components)
        self.rank = rank if rank is not None else max(8, n_components)
        self.center_rows = bool(center_rows)
        self._isvd = IncrementalSVD(rank=self.rank, use_svht=False)
        self._row_sum: np.ndarray | None = None
        self._n_cols = 0

    # ------------------------------------------------------------------ #
    @property
    def row_mean_(self) -> np.ndarray | None:
        """Running per-row mean (None before the first fit)."""
        if self._row_sum is None or self._n_cols == 0:
            return None
        return self._row_sum / self._n_cols

    def _center(self, data: np.ndarray) -> np.ndarray:
        if not self.center_rows:
            return data
        mean = self.row_mean_
        if mean is None:
            return data
        return data - mean[:, None]

    def _update_mean(self, data: np.ndarray) -> None:
        if self._row_sum is None:
            self._row_sum = data.sum(axis=1)
        else:
            self._row_sum = self._row_sum + data.sum(axis=1)
        self._n_cols += data.shape[1]

    def _refresh_embedding(self) -> None:
        k = min(self.n_components, self._isvd.current_rank)
        u = self._isvd.u[:, :k]
        s = self._isvd.s[:k]
        self.embedding_ = u * s[None, :]

    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "IncrementalPCA":
        """Initial fit on ``(n_samples, n_features)`` data."""
        x = self._check_matrix(data)
        self._isvd = IncrementalSVD(rank=self.rank, use_svht=False)
        self._row_sum = None
        self._n_cols = 0
        self._update_mean(x)
        self._isvd.initialize(self._center(x))
        self._refresh_embedding()
        return self

    def partial_fit(self, new_columns: np.ndarray) -> "IncrementalPCA":
        """Fold new time-point columns into the embedding."""
        x = self._check_matrix(new_columns, name="new_columns")
        if not self._isvd.initialized:
            return self.fit(x)
        if x.shape[0] != self._isvd.u.shape[0]:
            raise ValueError(
                f"row mismatch: model has {self._isvd.u.shape[0]} rows, "
                f"update has {x.shape[0]}"
            )
        self._update_mean(x)
        self._isvd.update(self._center(x))
        self._refresh_embedding()
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Embed rows against the current right-singular basis.

        New rows must have the same number of feature columns as the data
        folded in so far; they are projected onto the retained right
        singular vectors.
        """
        if not self._isvd.initialized:
            raise RuntimeError("IncrementalPCA must be fitted before transform")
        x = self._check_matrix(data)
        vh = self._isvd.vh
        if x.shape[1] != vh.shape[1]:
            raise ValueError(
                f"feature mismatch: model covers {vh.shape[1]} columns, "
                f"data has {x.shape[1]}"
            )
        k = min(self.n_components, self._isvd.current_rank)
        return self._center(x) @ vh[:k].T

"""UMAP-lite: a compact uniform-manifold-approximation-style embedding.

The paper's Figs. 8/9 use McInnes et al.'s ``umap-learn`` (n_neighbors=15,
min_dist=0.1, Euclidean metric).  That package is not available offline, so
this module re-implements the algorithm's essential structure in NumPy/SciPy:

1. k-nearest-neighbour graph (``scipy.spatial.cKDTree``);
2. per-point bandwidth calibration (``rho`` = distance to the nearest
   neighbour, ``sigma`` chosen by binary search so the smoothed neighbour
   weights sum to ``log2(k)``);
3. fuzzy simplicial set symmetrisation ``P = A + A.T - A * A.T``;
4. spectral-ish initialisation (PCA of the input) followed by stochastic
   gradient optimisation of the cross-entropy with attractive forces along
   graph edges and repulsive forces against negative samples, using the
   standard ``1 / (1 + a d^{2b})`` low-dimensional kernel.

It is intentionally "lite": no smooth-kNN caching, no sophisticated
annealing.  For the paper's purposes (qualitative cluster structure in
Fig. 8 and runtime *shape* in Fig. 9) this captures the relevant behaviour;
DESIGN.md records the substitution.
"""

from __future__ import annotations

import numpy as np
from scipy.spatial import cKDTree

from .base import DimensionalityReducer
from .pca import PCA

__all__ = ["UMAPLite", "fuzzy_simplicial_set", "find_ab_params"]


def find_ab_params(min_dist: float, spread: float = 1.0) -> tuple[float, float]:
    """Fit the ``a, b`` parameters of the low-dimensional kernel.

    umap-learn fits a curve; here a small least-squares grid search over
    ``b`` with closed-form ``a`` gives values within a few percent of the
    reference for the usual ``min_dist``/``spread`` settings.
    """
    if spread <= 0:
        raise ValueError("spread must be positive")
    if min_dist < 0 or min_dist >= spread:
        raise ValueError("min_dist must satisfy 0 <= min_dist < spread")
    xs = np.linspace(0, 3.0 * spread, 300)
    target = np.where(
        xs < min_dist, 1.0, np.exp(-(xs - min_dist) / spread)
    )
    best = (1.577, 0.895)  # umap defaults for min_dist=0.1, spread=1
    best_err = np.inf
    for b in np.linspace(0.5, 2.0, 61):
        # For fixed b, fit a by least squares on 1 / (1 + a x^{2b}) ~ target.
        xb = xs**(2 * b)
        # avoid division by zero at x=0
        mask = target < 1.0
        if not np.any(mask):
            continue
        a_est = np.mean((1.0 / target[mask] - 1.0) / np.maximum(xb[mask], 1e-12))
        a_est = max(a_est, 1e-3)
        fitted = 1.0 / (1.0 + a_est * xb)
        err = float(np.mean((fitted - target) ** 2))
        if err < best_err:
            best_err = err
            best = (float(a_est), float(b))
    return best


def fuzzy_simplicial_set(
    data: np.ndarray,
    n_neighbors: int,
    *,
    bandwidth_iterations: int = 32,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Build the symmetrised fuzzy neighbourhood graph.

    Returns ``(rows, cols, weights)`` of the non-zero entries of the
    symmetric membership matrix (COO triplets), suitable for edge-sampled
    SGD.
    """
    data = np.asarray(data, dtype=float)
    n = data.shape[0]
    k = min(n_neighbors + 1, n)
    tree = cKDTree(data)
    distances, indices = tree.query(data, k=k)
    # Drop self-matches in column 0.
    distances, indices = distances[:, 1:], indices[:, 1:]
    k_eff = distances.shape[1]
    if k_eff == 0:
        return np.zeros(0, int), np.zeros(0, int), np.zeros(0)

    rho = distances[:, 0].copy()
    target = np.log2(max(k_eff, 2))
    sigma = np.ones(n)
    for i in range(n):
        lo, hi = 0.0, np.inf
        s = 1.0
        d = np.maximum(distances[i] - rho[i], 0.0)
        for _ in range(bandwidth_iterations):
            total = np.exp(-d / max(s, 1e-12)).sum()
            if abs(total - target) < 1e-5:
                break
            if total > target:
                hi = s
                s = (lo + s) / 2.0
            else:
                lo = s
                s = s * 2.0 if not np.isfinite(hi) else (s + hi) / 2.0
        sigma[i] = max(s, 1e-12)

    weights = np.exp(-np.maximum(distances - rho[:, None], 0.0) / sigma[:, None])
    rows = np.repeat(np.arange(n), k_eff)
    cols = indices.ravel()
    vals = weights.ravel()

    # Symmetrise: P = A + A^T - A ∘ A^T, done sparsely via a dict keyed on pairs.
    directed: dict[tuple[int, int], float] = {}
    for r, c, v in zip(rows, cols, vals):
        directed[(int(r), int(c))] = float(v)
    combined: dict[tuple[int, int], float] = {}
    for (r, c), v in directed.items():
        v_t = directed.get((c, r), 0.0)
        combined[(min(r, c), max(r, c))] = v + v_t - v * v_t
    if not combined:
        return np.zeros(0, int), np.zeros(0, int), np.zeros(0)
    pairs = np.array(list(combined.keys()), dtype=int)
    sym_weights = np.array(list(combined.values()), dtype=float)
    return pairs[:, 0], pairs[:, 1], sym_weights


class UMAPLite(DimensionalityReducer):
    """Simplified UMAP with the reference hyperparameters.

    Parameters mirror the paper's settings: ``n_neighbors=15``,
    ``min_dist=0.1``, Euclidean metric, 2 output components.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        n_neighbors: int = 15,
        min_dist: float = 0.1,
        n_epochs: int = 200,
        learning_rate: float = 1.0,
        negative_samples: int = 5,
        random_state: int = 0,
    ) -> None:
        super().__init__(n_components)
        if n_neighbors < 2:
            raise ValueError("n_neighbors must be >= 2")
        if n_epochs < 10:
            raise ValueError("n_epochs must be >= 10")
        self.n_neighbors = int(n_neighbors)
        self.min_dist = float(min_dist)
        self.n_epochs = int(n_epochs)
        self.learning_rate = float(learning_rate)
        self.negative_samples = int(negative_samples)
        self.random_state = int(random_state)
        self._a, self._b = find_ab_params(min_dist)
        self.graph_: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None

    # ------------------------------------------------------------------ #
    def _initial_embedding(self, data: np.ndarray, rng: np.random.Generator) -> np.ndarray:
        k = min(self.n_components, min(data.shape) - 1) or 1
        try:
            init = PCA(n_components=self.n_components).fit_transform(data)
        except Exception:  # degenerate input; fall back to random
            init = rng.standard_normal((data.shape[0], self.n_components))
        if init.shape[1] < self.n_components:
            pad = rng.standard_normal((data.shape[0], self.n_components - init.shape[1])) * 1e-4
            init = np.hstack([init, pad])
        scale = np.abs(init).max() or 1.0
        return 10.0 * init / scale + rng.standard_normal(init.shape) * 1e-4

    def _optimize(
        self,
        embedding: np.ndarray,
        rows: np.ndarray,
        cols: np.ndarray,
        weights: np.ndarray,
        rng: np.random.Generator,
        *,
        anchors: np.ndarray | None = None,
        anchor_strength: float = 0.0,
    ) -> np.ndarray:
        """Edge-sampled SGD on the UMAP cross-entropy (plus optional anchors)."""
        n = embedding.shape[0]
        if rows.size == 0:
            return embedding
        a, b = self._a, self._b
        w = weights / weights.max()
        for epoch in range(self.n_epochs):
            alpha = self.learning_rate * (1.0 - epoch / self.n_epochs)
            # Sample edges proportionally to their membership strength.
            active = rng.random(rows.size) < w
            e_rows, e_cols = rows[active], cols[active]
            if e_rows.size == 0:
                continue
            diff = embedding[e_rows] - embedding[e_cols]
            d2 = np.sum(diff**2, axis=1)
            # Attractive gradient coefficient.
            grad_coef = (-2.0 * a * b * d2 ** (b - 1.0)) / (1.0 + a * d2**b)
            grad = np.clip(grad_coef[:, None] * diff, -4.0, 4.0)
            np.add.at(embedding, e_rows, alpha * grad)
            np.add.at(embedding, e_cols, -alpha * grad)
            # Repulsive forces against negative samples.
            for _ in range(self.negative_samples):
                neg = rng.integers(0, n, size=e_rows.size)
                diff_n = embedding[e_rows] - embedding[neg]
                d2n = np.sum(diff_n**2, axis=1) + 1e-3
                rep_coef = (2.0 * b) / (d2n * (1.0 + a * d2n**b))
                rep = np.clip(rep_coef[:, None] * diff_n, -4.0, 4.0)
                np.add.at(embedding, e_rows, alpha * rep)
            if anchors is not None and anchor_strength > 0.0:
                embedding += anchor_strength * alpha * (anchors - embedding)
        return embedding

    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "UMAPLite":
        """Build the fuzzy graph and optimise the embedding."""
        x = self._check_matrix(data)
        rng = np.random.default_rng(self.random_state)
        rows, cols, weights = fuzzy_simplicial_set(x, self.n_neighbors)
        self.graph_ = (rows, cols, weights)
        embedding = self._initial_embedding(x, rng)
        self.embedding_ = self._optimize(embedding, rows, cols, weights, rng)
        return self

    def fit_with_anchors(
        self, data: np.ndarray, anchors: np.ndarray, anchor_strength: float = 0.1
    ) -> "UMAPLite":
        """Fit while pulling points toward given anchor coordinates.

        Used by Aligned-UMAP-lite to keep consecutive windows' embeddings
        mutually consistent.
        """
        x = self._check_matrix(data)
        anchors = np.asarray(anchors, dtype=float)
        if anchors.shape != (x.shape[0], self.n_components):
            raise ValueError(
                f"anchors must have shape ({x.shape[0]}, {self.n_components})"
            )
        rng = np.random.default_rng(self.random_state)
        rows, cols, weights = fuzzy_simplicial_set(x, self.n_neighbors)
        self.graph_ = (rows, cols, weights)
        embedding = anchors.copy() + rng.standard_normal(anchors.shape) * 1e-3
        self.embedding_ = self._optimize(
            embedding, rows, cols, weights, rng,
            anchors=anchors, anchor_strength=anchor_strength,
        )
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Nearest-training-neighbour barycentric placement of new rows."""
        if self.embedding_ is None or self.graph_ is None:
            raise RuntimeError("UMAPLite must be fitted before transform")
        raise NotImplementedError(
            "UMAPLite keeps only the training embedding; refit to embed new rows"
        )

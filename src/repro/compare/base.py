"""Common interface for the comparison dimensionality-reduction methods.

Fig. 8 compares PCA, incremental PCA, UMAP, t-SNE, Aligned-UMAP, mrDMD and
I-mrDMD on the same labelled readings; Fig. 9 compares their initial-fit and
partial-fit runtimes.  To keep both comparisons uniform, every method here
implements the same minimal estimator protocol:

* ``fit(X)`` / ``fit_transform(X)`` — batch fit on an ``(n_samples,
  n_features)`` matrix (for the paper's use case, samples are sensor rows
  and features are time points);
* ``transform(X)`` — embed new rows with the fitted model (where the method
  supports out-of-sample transforms);
* ``partial_fit(X)`` — incremental update with additional *feature columns*
  for the streaming methods (IPCA, Aligned-UMAP-lite, and the DMD family),
  mirroring how the paper appends new time points.

Methods that have no natural incremental update raise
:class:`NotIncrementalError` from ``partial_fit`` so the Fig. 9 harness can
skip those cells explicitly rather than silently.
"""

from __future__ import annotations

import abc

import numpy as np

__all__ = ["DimensionalityReducer", "NotIncrementalError"]


class NotIncrementalError(NotImplementedError):
    """Raised by ``partial_fit`` on methods without an incremental update."""


class DimensionalityReducer(abc.ABC):
    """Abstract base class of the Fig. 8/9 comparison methods."""

    #: Number of output dimensions (2 everywhere in the paper).
    n_components: int = 2

    def __init__(self, n_components: int = 2) -> None:
        if n_components < 1:
            raise ValueError("n_components must be >= 1")
        self.n_components = int(n_components)
        self.embedding_: np.ndarray | None = None

    # ------------------------------------------------------------------ #
    @staticmethod
    def _check_matrix(data: np.ndarray, name: str = "X") -> np.ndarray:
        arr = np.asarray(data, dtype=float)
        if arr.ndim != 2:
            raise ValueError(f"{name} must be 2-D (n_samples, n_features), got {arr.shape!r}")
        if arr.shape[0] < 1 or arr.shape[1] < 1:
            raise ValueError(f"{name} must be non-empty")
        return arr

    # ------------------------------------------------------------------ #
    @abc.abstractmethod
    def fit(self, data: np.ndarray) -> "DimensionalityReducer":
        """Fit the model on ``(n_samples, n_features)`` data."""

    @abc.abstractmethod
    def transform(self, data: np.ndarray) -> np.ndarray:
        """Embed rows of ``data`` into ``n_components`` dimensions."""

    def fit_transform(self, data: np.ndarray) -> np.ndarray:
        """Fit on ``data`` and return its embedding."""
        self.fit(data)
        if self.embedding_ is not None:
            return self.embedding_
        return self.transform(data)

    def partial_fit(self, new_columns: np.ndarray) -> "DimensionalityReducer":
        """Incorporate new feature columns (new time points).

        Methods without a streaming update raise
        :class:`NotIncrementalError`.
        """
        raise NotIncrementalError(
            f"{type(self).__name__} has no incremental update"
        )

    @property
    def supports_partial_fit(self) -> bool:
        """Whether :meth:`partial_fit` is implemented."""
        return type(self).partial_fit is not DimensionalityReducer.partial_fit

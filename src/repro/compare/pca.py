"""Principal component analysis (batch) — Fig. 8/9 baseline.

Plain SVD-based PCA on an ``(n_samples, n_features)`` matrix with feature
centering, equivalent to scikit-learn's ``PCA(n_components=2,
svd_solver="auto")`` as configured in the paper's Fig. 9 comparison.  In the
paper's usage, samples are sensor readings (rows) and features are time
points, so the embedding places each sensor according to the shape of its
time series.
"""

from __future__ import annotations

import numpy as np

from .base import DimensionalityReducer

__all__ = ["PCA"]


class PCA(DimensionalityReducer):
    """Exact PCA via singular value decomposition.

    Attributes (after ``fit``)
    --------------------------
    components_:
        ``(n_components, n_features)`` principal axes.
    explained_variance_:
        Variance explained by each retained component.
    explained_variance_ratio_:
        Fraction of total variance explained by each component.
    mean_:
        Per-feature mean removed before the SVD.
    embedding_:
        ``(n_samples, n_components)`` scores of the training data.
    """

    def __init__(self, n_components: int = 2) -> None:
        super().__init__(n_components)
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None
        self.mean_: np.ndarray | None = None
        self.singular_values_: np.ndarray | None = None

    def fit(self, data: np.ndarray) -> "PCA":
        """Fit the principal axes of ``data``."""
        x = self._check_matrix(data)
        k = min(self.n_components, *x.shape)
        self.mean_ = x.mean(axis=0)
        centered = x - self.mean_
        u, s, vh = np.linalg.svd(centered, full_matrices=False)
        self.components_ = vh[:k]
        self.singular_values_ = s[:k]
        n = x.shape[0]
        variances = (s**2) / max(n - 1, 1)
        total = variances.sum()
        self.explained_variance_ = variances[:k]
        self.explained_variance_ratio_ = (
            variances[:k] / total if total > 0 else np.zeros(k)
        )
        self.embedding_ = u[:, :k] * s[:k]
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Project new rows onto the fitted principal axes."""
        if self.components_ is None:
            raise RuntimeError("PCA must be fitted before transform")
        x = self._check_matrix(data)
        if x.shape[1] != self.components_.shape[1]:
            raise ValueError(
                f"feature mismatch: model has {self.components_.shape[1]}, "
                f"data has {x.shape[1]}"
            )
        return (x - self.mean_) @ self.components_.T

"""Comparison dimensionality-reduction methods for Figs. 8 and 9.

All methods share the :class:`~repro.compare.base.DimensionalityReducer`
interface; the DMD family (mrDMD / I-mrDMD) enters the comparison through
the z-score pipeline rather than through this subpackage.
"""

from .aligned_umap import AlignedUMAPLite
from .base import DimensionalityReducer, NotIncrementalError
from .ipca import IncrementalPCA
from .pca import PCA
from .tsne import TSNE
from .umap_lite import UMAPLite, find_ab_params, fuzzy_simplicial_set

__all__ = [
    "AlignedUMAPLite",
    "DimensionalityReducer",
    "NotIncrementalError",
    "IncrementalPCA",
    "PCA",
    "TSNE",
    "UMAPLite",
    "find_ab_params",
    "fuzzy_simplicial_set",
]

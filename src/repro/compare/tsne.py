"""Exact t-SNE (t-distributed stochastic neighbour embedding) — Fig. 8 baseline.

A from-scratch NumPy implementation of van der Maaten & Hinton's t-SNE with
the standard ingredients: per-point perplexity calibration by binary search,
early exaggeration, and momentum gradient descent on the KL divergence
between the high-dimensional Gaussian affinities and the low-dimensional
Student-t affinities.

The implementation is exact (O(N^2) per iteration) rather than Barnes-Hut;
the paper only uses t-SNE on a few-thousand-row comparison (and 40 labelled
rows in Fig. 8), where exact t-SNE is perfectly tractable.  There is no
out-of-sample transform and no incremental update — exactly the limitation
the paper's Fig. 9 comparison highlights for non-streaming methods.
"""

from __future__ import annotations

import numpy as np

from .base import DimensionalityReducer

__all__ = ["TSNE"]


def _pairwise_sq_distances(x: np.ndarray) -> np.ndarray:
    """Squared Euclidean distance matrix (vectorised)."""
    sq = np.sum(x**2, axis=1)
    d2 = sq[:, None] + sq[None, :] - 2.0 * (x @ x.T)
    np.maximum(d2, 0.0, out=d2)
    np.fill_diagonal(d2, 0.0)
    return d2


def _conditional_probabilities(
    distances_sq: np.ndarray, perplexity: float, *, tol: float = 1e-5, max_iter: int = 50
) -> np.ndarray:
    """Row-stochastic affinities with per-row bandwidth matched to the perplexity."""
    n = distances_sq.shape[0]
    target_entropy = np.log(perplexity)
    p = np.zeros((n, n), dtype=float)
    for i in range(n):
        beta_lo, beta_hi = 0.0, np.inf
        beta = 1.0
        row = distances_sq[i].copy()
        row[i] = np.inf  # exclude self
        for _ in range(max_iter):
            exp_row = np.exp(-row * beta)
            total = exp_row.sum()
            if total <= 0:
                beta *= 0.5
                continue
            probs = exp_row / total
            # Shannon entropy of the row distribution.
            nz = probs > 0
            entropy = -np.sum(probs[nz] * np.log(probs[nz]))
            diff = entropy - target_entropy
            if abs(diff) < tol:
                break
            if diff > 0:          # entropy too high -> narrow the kernel
                beta_lo = beta
                beta = beta * 2.0 if not np.isfinite(beta_hi) else (beta + beta_hi) / 2.0
            else:                 # entropy too low -> widen the kernel
                beta_hi = beta
                beta = beta / 2.0 if beta_lo == 0.0 else (beta + beta_lo) / 2.0
        p[i] = probs
        p[i, i] = 0.0
    return p


class TSNE(DimensionalityReducer):
    """Exact t-SNE with perplexity calibration and early exaggeration.

    Parameters
    ----------
    n_components:
        Output dimensionality (2 in all the paper's figures).
    perplexity:
        Effective number of neighbours (paper setting: 30).
    learning_rate:
        Gradient-descent step size (paper setting: 0.01 in Fig. 9's
        configuration; the common 200.0 works too — the default here keeps
        the paper's value but the optimiser normalises gradients so both
        converge on small inputs).
    n_iter:
        Total gradient-descent iterations.
    early_exaggeration:
        Multiplier on the target affinities during the first quarter of
        the iterations.
    random_state:
        Seed of the Gaussian initialisation.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        perplexity: float = 30.0,
        learning_rate: float = 200.0,
        n_iter: int = 300,
        early_exaggeration: float = 6.0,
        random_state: int = 0,
    ) -> None:
        super().__init__(n_components)
        if perplexity <= 1:
            raise ValueError("perplexity must be > 1")
        if n_iter < 10:
            raise ValueError("n_iter must be >= 10")
        self.perplexity = float(perplexity)
        self.learning_rate = float(learning_rate)
        self.n_iter = int(n_iter)
        self.early_exaggeration = float(early_exaggeration)
        self.random_state = int(random_state)
        self.kl_divergence_: float | None = None

    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "TSNE":
        """Embed ``data`` (no out-of-sample transform exists for t-SNE)."""
        x = self._check_matrix(data)
        n = x.shape[0]
        if n < 4:
            raise ValueError("t-SNE needs at least 4 samples")
        perplexity = min(self.perplexity, (n - 1) / 3.0)
        rng = np.random.default_rng(self.random_state)

        d2 = _pairwise_sq_distances(x)
        p_cond = _conditional_probabilities(d2, perplexity)
        p = (p_cond + p_cond.T) / (2.0 * n)
        np.maximum(p, 1e-12, out=p)

        y = rng.standard_normal((n, self.n_components)) * 1e-2
        update = np.zeros_like(y)
        gains = np.ones_like(y)
        exaggeration_end = self.n_iter // 4

        for iteration in range(self.n_iter):
            target = p * self.early_exaggeration if iteration < exaggeration_end else p
            # Student-t affinities in the embedding.
            dy2 = _pairwise_sq_distances(y)
            inv = 1.0 / (1.0 + dy2)
            np.fill_diagonal(inv, 0.0)
            q = inv / max(inv.sum(), 1e-12)
            np.maximum(q, 1e-12, out=q)

            # Gradient of KL(P || Q).
            pq = (target - q) * inv
            grad = 4.0 * ((np.diag(pq.sum(axis=1)) - pq) @ y)

            momentum = 0.5 if iteration < exaggeration_end else 0.8
            gains = np.where(np.sign(grad) != np.sign(update), gains + 0.2, gains * 0.8)
            np.maximum(gains, 0.01, out=gains)
            # Normalised step keeps the paper's tiny learning rate usable.
            step = self.learning_rate
            if step < 1.0:
                scale = np.abs(grad).max()
                step = step * (1.0 if scale == 0 else 10.0 / scale)
            update = momentum * update - step * gains * grad
            y = y + update
            y = y - y.mean(axis=0)

        dy2 = _pairwise_sq_distances(y)
        inv = 1.0 / (1.0 + dy2)
        np.fill_diagonal(inv, 0.0)
        q = np.maximum(inv / max(inv.sum(), 1e-12), 1e-12)
        self.kl_divergence_ = float(np.sum(p * np.log(p / q)))
        self.embedding_ = y
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """t-SNE has no parametric mapping; only the fitted embedding exists."""
        raise NotImplementedError(
            "t-SNE does not support out-of-sample transform; use fit_transform"
        )

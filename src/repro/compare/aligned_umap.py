"""Aligned-UMAP-lite: sequential, anchor-regularised UMAP over time windows.

Aligned-UMAP (Dadu et al., Patterns 2023) embeds a *sequence* of related
datasets (here: the same sensors observed over successive time windows) so
that each window's embedding stays geometrically consistent with its
predecessor.  The paper uses it as the only non-DMD method in Fig. 9 that
offers a ``partial_fit``-style update.

This lite version chains :class:`~repro.compare.umap_lite.UMAPLite` fits:
the first window is embedded normally; every subsequent window is embedded
with the previous window's coordinates as anchors (a quadratic pull toward
the old positions), which is the essential mechanism of the reference
implementation's relational regularisation.
"""

from __future__ import annotations

import numpy as np

from .base import DimensionalityReducer
from .umap_lite import UMAPLite

__all__ = ["AlignedUMAPLite"]


class AlignedUMAPLite(DimensionalityReducer):
    """Sequentially aligned UMAP-lite over growing time windows.

    Parameters
    ----------
    n_components / n_neighbors / min_dist / n_epochs / random_state:
        Forwarded to each window's :class:`UMAPLite`.
    alignment_strength:
        Weight of the pull toward the previous window's coordinates
        (0 = independent fits, larger = stiffer alignment).
    window:
        Number of most recent feature columns each fit considers
        (``None`` = all columns seen so far).  A finite window keeps
        partial-fit cost bounded, mirroring the reference usage on
        longitudinal data.
    """

    def __init__(
        self,
        n_components: int = 2,
        *,
        n_neighbors: int = 15,
        min_dist: float = 0.1,
        n_epochs: int = 120,
        alignment_strength: float = 0.15,
        window: int | None = None,
        random_state: int = 0,
    ) -> None:
        super().__init__(n_components)
        if alignment_strength < 0:
            raise ValueError("alignment_strength must be non-negative")
        if window is not None and window < 2:
            raise ValueError("window must be >= 2 or None")
        self.n_neighbors = int(n_neighbors)
        self.min_dist = float(min_dist)
        self.n_epochs = int(n_epochs)
        self.alignment_strength = float(alignment_strength)
        self.window = window
        self.random_state = int(random_state)
        self.embeddings_: list[np.ndarray] = []
        self._columns: np.ndarray | None = None
        self._n_fits = 0

    # ------------------------------------------------------------------ #
    def _make_umap(self) -> UMAPLite:
        return UMAPLite(
            n_components=self.n_components,
            n_neighbors=self.n_neighbors,
            min_dist=self.min_dist,
            n_epochs=self.n_epochs,
            random_state=self.random_state + self._n_fits,
        )

    def _current_view(self) -> np.ndarray:
        if self._columns is None:
            raise RuntimeError("AlignedUMAPLite has not been fitted yet")
        if self.window is None or self._columns.shape[1] <= self.window:
            return self._columns
        return self._columns[:, -self.window :]

    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "AlignedUMAPLite":
        """Embed the first window."""
        x = self._check_matrix(data)
        self._columns = x.copy()
        self._n_fits = 0
        umap = self._make_umap()
        self.embedding_ = umap.fit(self._current_view()).embedding_
        self.embeddings_ = [self.embedding_]
        self._n_fits = 1
        return self

    def partial_fit(self, new_columns: np.ndarray) -> "AlignedUMAPLite":
        """Append new time-point columns and re-embed with alignment."""
        x = self._check_matrix(new_columns, name="new_columns")
        if self._columns is None:
            return self.fit(x)
        if x.shape[0] != self._columns.shape[0]:
            raise ValueError(
                f"row mismatch: model has {self._columns.shape[0]} rows, "
                f"update has {x.shape[0]}"
            )
        self._columns = np.hstack([self._columns, x])
        umap = self._make_umap()
        anchors = self.embedding_
        self.embedding_ = umap.fit_with_anchors(
            self._current_view(), anchors, anchor_strength=self.alignment_strength
        ).embedding_
        self.embeddings_.append(self.embedding_)
        self._n_fits += 1
        return self

    def transform(self, data: np.ndarray) -> np.ndarray:
        """Aligned-UMAP-lite keeps only per-window training embeddings."""
        raise NotImplementedError(
            "AlignedUMAPLite does not support out-of-sample transform"
        )

    # ------------------------------------------------------------------ #
    def alignment_drift(self) -> np.ndarray:
        """Mean per-point displacement between consecutive window embeddings.

        Useful as a sanity metric: with a non-zero ``alignment_strength``
        the drift should be far smaller than the embedding's overall scale.
        """
        if len(self.embeddings_) < 2:
            return np.zeros(0)
        drifts = []
        for prev, curr in zip(self.embeddings_[:-1], self.embeddings_[1:]):
            drifts.append(float(np.mean(np.linalg.norm(curr - prev, axis=1))))
        return np.asarray(drifts)

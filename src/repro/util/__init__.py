"""Shared utilities: timing, validation, chunking, parallelism, statistics."""

from .chunking import chunk_indices, iter_chunks, split_columns
from .growbuf import GrowableMatrix, RingBuffer
from .parallel import (
    ProcessShardExecutor,
    SerialShardExecutor,
    ShardExecutor,
    ShardTask,
    ShardTaskError,
    ThreadShardExecutor,
    make_shard_executor,
    parallel_map,
)
from .stats import rolling_mean, running_moments, RunningMoments
from .timer import Timer, TimingTable, now, timeit
from .validation import (
    ensure_2d,
    ensure_positive,
    ensure_probability,
    require,
)

__all__ = [
    "chunk_indices",
    "iter_chunks",
    "split_columns",
    "GrowableMatrix",
    "RingBuffer",
    "parallel_map",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardTask",
    "ShardTaskError",
    "make_shard_executor",
    "rolling_mean",
    "running_moments",
    "RunningMoments",
    "Timer",
    "TimingTable",
    "now",
    "timeit",
    "ensure_2d",
    "ensure_positive",
    "ensure_probability",
    "require",
]

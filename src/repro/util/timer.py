"""Wall-clock timing helpers used by the performance-evaluation benchmarks.

The paper's Table I and Fig. 9 report completion times (averaged over 10
executions) of initial fits and incremental partial fits.  These helpers
keep the same protocol available outside pytest-benchmark: a context-manager
:class:`Timer`, a repeated-execution :func:`timeit`, and a
:class:`TimingTable` that accumulates labelled rows and renders them the way
Table I is laid out.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

import numpy as np

__all__ = ["now", "Timer", "timeit", "TimingTable"]

#: The one monotonic clock shared by every timing surface in the package —
#: :class:`Timer`, :func:`timeit`, the benchmark harnesses and the
#: :mod:`repro.obs` trace spans all read this name, so their timestamps are
#: directly comparable and there is exactly one place to swap the clock.
now: Callable[[], float] = time.perf_counter


class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    Example
    -------
    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    def __init__(self) -> None:
        self._start: float | None = None
        self.elapsed: float = 0.0

    def __enter__(self) -> "Timer":
        self._start = now()
        return self

    def __exit__(self, *exc_info) -> None:
        if self._start is not None:
            self.elapsed = now() - self._start

    def restart(self) -> None:
        """Reset the start time (for manual split timing)."""
        self._start = now()
        self.elapsed = 0.0


def timeit(
    func: Callable[[], object],
    *,
    repeats: int = 3,
    warmup: int = 0,
) -> dict[str, float]:
    """Run ``func`` ``repeats`` times and return timing statistics.

    Returns a dict with ``mean``, ``std``, ``min``, ``max`` in seconds.  The
    paper averages over 10 executions; benchmarks here default lower to stay
    within CI budgets but accept ``repeats=10`` to match it.
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    for _ in range(max(warmup, 0)):
        func()
    samples = []
    for _ in range(repeats):
        start = now()
        func()
        samples.append(now() - start)
    arr = np.asarray(samples, dtype=float)
    return {
        "mean": float(arr.mean()),
        "std": float(arr.std()),
        "min": float(arr.min()),
        "max": float(arr.max()),
        "repeats": float(repeats),
    }


@dataclass
class TimingTable:
    """Accumulates labelled timing rows and renders a fixed-width table.

    Used by the Table I / Fig. 9 benchmark harnesses to print rows in the
    same structure the paper reports (dataset, N, T, initial fit, partial
    fit).
    """

    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def add_row(self, *values: object) -> None:
        """Append one row; must match the number of columns."""
        if len(values) != len(self.columns):
            raise ValueError(
                f"expected {len(self.columns)} values, got {len(values)}"
            )
        self.rows.append(list(values))

    def to_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def render(self, float_format: str = "{:.4f}") -> str:
        """Fixed-width text rendering (one line per row, header included)."""
        def fmt(value: object) -> str:
            if isinstance(value, float):
                return float_format.format(value)
            return str(value)

        formatted = [[fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in formatted)) if formatted else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        header = "  ".join(c.ljust(widths[i]) for i, c in enumerate(self.columns))
        sep = "  ".join("-" * w for w in widths)
        lines = [header, sep]
        for row in formatted:
            lines.append("  ".join(row[i].ljust(widths[i]) for i in range(len(row))))
        return "\n".join(lines)

"""Small argument-validation helpers shared across the package.

Centralising these keeps error messages consistent and the hot paths free
of repeated inline checks.
"""

from __future__ import annotations

import numpy as np

__all__ = ["require", "ensure_2d", "ensure_positive", "ensure_probability"]


def require(condition: bool, message: str) -> None:
    """Raise ``ValueError(message)`` unless ``condition`` holds."""
    if not condition:
        raise ValueError(message)


def ensure_2d(array: np.ndarray, name: str = "array") -> np.ndarray:
    """Return ``array`` as a 2-D float ndarray or raise ``ValueError``."""
    arr = np.asarray(array, dtype=float)
    if arr.ndim != 2:
        raise ValueError(f"{name} must be 2-D, got shape {arr.shape!r}")
    return arr


def ensure_positive(value: float, name: str = "value") -> float:
    """Return ``value`` if strictly positive, else raise ``ValueError``."""
    if not value > 0:
        raise ValueError(f"{name} must be positive, got {value!r}")
    return float(value)


def ensure_probability(value: float, name: str = "value") -> float:
    """Return ``value`` if in ``[0, 1]``, else raise ``ValueError``."""
    if not 0.0 <= value <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {value!r}")
    return float(value)

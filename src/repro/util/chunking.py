"""Chunking helpers for streaming replay and blocked processing.

The online pipeline consumes telemetry in fixed-size column chunks (the
paper appends 1,000 time points at a time in Table I / Fig. 9); these
helpers produce the index ranges and column views without copying data
until the consumer asks for it.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["chunk_indices", "iter_chunks", "split_columns"]


def chunk_indices(total: int, chunk_size: int) -> list[tuple[int, int]]:
    """Return ``[start, stop)`` pairs covering ``range(total)`` in chunks."""
    if total < 0:
        raise ValueError("total must be non-negative")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    return [(lo, min(lo + chunk_size, total)) for lo in range(0, total, chunk_size)]


def iter_chunks(data: np.ndarray, chunk_size: int, axis: int = 1) -> Iterator[np.ndarray]:
    """Yield consecutive views of ``data`` split along ``axis``.

    Views (not copies) are yielded, matching the "be easy on the memory"
    guidance of the HPC optimisation guide.
    """
    data = np.asarray(data)
    if axis < 0:
        axis += data.ndim
    if not 0 <= axis < data.ndim:
        raise ValueError(f"axis {axis} out of range for {data.ndim}-D data")
    total = data.shape[axis]
    for lo, hi in chunk_indices(total, chunk_size):
        index = [slice(None)] * data.ndim
        index[axis] = slice(lo, hi)
        yield data[tuple(index)]


def split_columns(data: np.ndarray, first: int) -> tuple[np.ndarray, np.ndarray]:
    """Split a ``(P, T)`` matrix into its first ``first`` columns and the rest."""
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D, got shape {data.shape!r}")
    if not 0 <= first <= data.shape[1]:
        raise ValueError(
            f"first must be in [0, {data.shape[1]}], got {first}"
        )
    return data[:, :first], data[:, first:]

"""Streaming statistics helpers.

Online monitoring needs running means/variances that never hold the full
history (Welford's algorithm) and cheap smoothing for display.  These are
used by the telemetry generator's drift models, the alignment report, and a
few tests as an independent cross-check of the baseline statistics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["RunningMoments", "running_moments", "rolling_mean"]


@dataclass
class RunningMoments:
    """Welford running mean/variance over vectors of fixed dimension.

    ``update`` accepts a single ``(P,)`` sample or a ``(P, k)`` block of
    samples and maintains per-row statistics in O(P) memory.
    """

    count: int = 0
    mean: np.ndarray | None = None
    m2: np.ndarray | None = None

    def update(self, sample: np.ndarray) -> "RunningMoments":
        """Fold one sample (or a block of samples) into the moments."""
        block = np.asarray(sample, dtype=float)
        if block.ndim == 1:
            block = block[:, None]
        if block.ndim != 2:
            raise ValueError(f"sample must be 1-D or 2-D, got shape {block.shape!r}")
        if self.mean is None:
            self.mean = np.zeros(block.shape[0])
            self.m2 = np.zeros(block.shape[0])
        elif block.shape[0] != self.mean.shape[0]:
            raise ValueError(
                f"dimension mismatch: expected {self.mean.shape[0]}, got {block.shape[0]}"
            )
        for j in range(block.shape[1]):
            x = block[:, j]
            self.count += 1
            delta = x - self.mean
            self.mean = self.mean + delta / self.count
            self.m2 = self.m2 + delta * (x - self.mean)
        return self

    @property
    def variance(self) -> np.ndarray:
        """Population variance per row (zeros before two samples)."""
        if self.mean is None or self.count < 2:
            size = 0 if self.mean is None else self.mean.shape[0]
            return np.zeros(size)
        return self.m2 / self.count

    @property
    def std(self) -> np.ndarray:
        """Population standard deviation per row."""
        return np.sqrt(self.variance)


def running_moments(data: np.ndarray) -> RunningMoments:
    """Convenience constructor: fold an entire ``(P, T)`` matrix at once."""
    moments = RunningMoments()
    return moments.update(np.asarray(data, dtype=float))


def rolling_mean(values: np.ndarray, window: int) -> np.ndarray:
    """Centered-start rolling mean along the last axis (same length output).

    The first ``window - 1`` positions average over the partial prefix, so
    the output has the same length as the input — convenient for plotting
    overlays without index bookkeeping.
    """
    values = np.asarray(values, dtype=float)
    if window < 1:
        raise ValueError("window must be >= 1")
    if window == 1 or values.shape[-1] == 0:
        return values.copy()
    cumsum = np.cumsum(values, axis=-1)
    out = np.empty_like(values, dtype=float)
    n = values.shape[-1]
    for i in range(n):
        lo = max(0, i - window + 1)
        total = cumsum[..., i] - (cumsum[..., lo - 1] if lo > 0 else 0.0)
        out[..., i] = total / (i - lo + 1)
    return out

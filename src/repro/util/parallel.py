"""Process-pool helpers for embarrassingly parallel stages.

The paper notes that refreshing levels 2..L of a previously computed mrDMD
tree "is an embarrassingly parallel problem" (Sec. III-A-1): every window at
every level can be recomputed independently.  :func:`parallel_map` wraps
``multiprocessing`` with a serial fallback so callers get determinism by
default and opt into processes only when the per-task work is large enough
to amortise the fork/pickle overhead (the usual Python-HPC guidance).
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Callable, Iterable, Sequence, TypeVar

T = TypeVar("T")
R = TypeVar("R")

__all__ = ["parallel_map"]


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``func`` over ``items``, optionally with a process pool.

    Parameters
    ----------
    func:
        A picklable callable (top-level function or functools.partial of
        one) applied to each item.
    items:
        The work items.  They are materialised into a list first so the
        serial and parallel paths see identical inputs.
    processes:
        ``None`` or ``<= 1`` runs serially in-process (deterministic, no
        pickling requirements).  Larger values use a ``multiprocessing``
        pool of that many workers.
    chunksize:
        Forwarded to ``Pool.map`` to batch small tasks.

    Returns
    -------
    list
        Results in the same order as ``items``.
    """
    work = list(items)
    if processes is None or processes <= 1 or len(work) <= 1:
        return [func(item) for item in work]
    processes = min(processes, len(work))
    with mp.get_context("spawn").Pool(processes=processes) as pool:
        return pool.map(func, work, chunksize=max(1, chunksize))

"""Parallel execution helpers: one-shot maps and persistent shard executors.

The paper notes that refreshing levels 2..L of a previously computed mrDMD
tree "is an embarrassingly parallel problem" (Sec. III-A-1): every window at
every level can be recomputed independently.  Two tools expose that
structure:

* :func:`parallel_map` — a one-shot map with a serial fallback, for
  stateless work items that are cheap to pickle.  Every call that opts into
  processes pays a full pool spawn, so it only pays off when the per-item
  work is large.
* :class:`ShardExecutor` — a *persistent* executor for stateful shards
  (e.g. one online pipeline per rack).  Workers are created once, receive
  their shard objects once, and keep them **resident**: subsequent calls
  ship only ``(shard_id, payload)`` and small results travel back.  This is
  the streaming-service shape — a per-chunk pool would re-pickle the entire
  pipeline state (mode tree, iSVD factors, baselines) to the workers and
  back on every ingest, which is routinely slower than running serially.

Three interchangeable backends implement the same API:

``serial``
    Everything runs inline in the calling thread (deterministic, zero
    overhead, no pickling requirements) — the default.
``thread``
    A fixed pool of worker threads; shard objects are *shared* with the
    parent (no copies).  NumPy releases the GIL inside BLAS, so per-shard
    linear algebra genuinely overlaps.
``process``
    A fixed pool of spawned worker processes; shard objects are shipped
    once at :meth:`ShardExecutor.start` and live in the workers.  Use
    :meth:`ShardExecutor.pull` to bring them back (e.g. before shutdown).

Every backend guarantees per-shard FIFO ordering: two calls submitted for
the same shard run in submission order, so ``submit(ingest); submit(query)``
always observes the post-ingest state.  Results are bit-for-bit identical
across backends (same NumPy, same code path), which the service tests
assert.

Process-backend transport
-------------------------

Two optimisations keep the process backend's per-chunk wire cost flat:

* **Shared-memory chunk transport** — large ndarray arguments are written
  once into a refcounted ring of ``multiprocessing.shared_memory`` slabs
  and shipped as tiny ``(slab, offset, shape, dtype)`` descriptors instead
  of being pickled per task; workers map the slab read-only and copy the
  array out.  Slabs recycle as soon as their in-flight tasks complete.
  Falls back to plain pickling per array when the ring is exhausted, and
  per executor when shared memory is unavailable (or disabled via the
  ``REPRO_DISABLE_SHM`` environment variable / ``transport="pickle"``).
* **Broadcast payload dedup** — :meth:`ShardExecutor.broadcast` ships the
  ``(fn, args, kwargs)`` payload once per worker *process* and then one
  tiny ``(shard_id, payload_id)`` task per shard, instead of re-pickling
  the full payload for every shard.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue
import threading
import time
from abc import ABC, abstractmethod
from multiprocessing import shared_memory
from typing import Any, Callable, Iterable, Mapping, Sequence, TypeVar

import numpy as np

T = TypeVar("T")
R = TypeVar("R")

# repro.obs imports repro.util.timer/growbuf, and this module is imported by
# repro.util.__init__ — a top-level obs import here would be circular.  The
# provider is fetched lazily on first use and cached.
_OBS = None


def _get_obs():
    global _OBS
    if _OBS is None:
        from ..obs import OBS
        _OBS = OBS
    return _OBS


def _current_trace_context():
    """The (trace_id, parent span id) pair to ship with a task, or ``None``.

    ``None`` — tracing disabled or no span open — costs the worker nothing:
    the adopt call on the far side is a no-op.
    """
    obs = _get_obs()
    if not obs.enabled:
        return None
    return obs.current_context()


# --------------------------------------------------------------------------- #
# Worker-side trace plumbing (top-level, hence picklable by reference).
# Executor calling convention: fn(resident_obj, *args) — the resident is
# ignored; any shard on a worker reaches that interpreter's clock/provider.
# --------------------------------------------------------------------------- #
def _worker_clock_probe(obj=None) -> float:
    """Read the worker interpreter's monotonic clock (calibration probe)."""
    from .timer import now
    return now()


def _worker_set_trace_context(obj=None, trace_id=None, clock_offset=0.0) -> bool:
    """Install the coordinator's trace id and the measured clock offset in
    the worker's provider (see :meth:`ProcessShardExecutor.calibrate_clocks`)."""
    _get_obs().set_remote_context(trace_id, clock_offset)
    return True


__all__ = [
    "parallel_map",
    "ShardExecutor",
    "SerialShardExecutor",
    "ThreadShardExecutor",
    "ProcessShardExecutor",
    "ShardTask",
    "ShardTaskError",
    "ShardTimeoutError",
    "make_shard_executor",
    "shm_available",
    "SHARD_EXECUTOR_BACKENDS",
]


def parallel_map(
    func: Callable[[T], R],
    items: Sequence[T] | Iterable[T],
    *,
    processes: int | None = None,
    chunksize: int = 1,
) -> list[R]:
    """Map ``func`` over ``items``, optionally with a one-shot process pool.

    Parameters
    ----------
    func:
        A picklable callable (top-level function or functools.partial of
        one) applied to each item.
    items:
        The work items.  They are materialised into a list first so the
        serial and parallel paths see identical inputs.
    processes:
        ``None`` requests the serial path explicitly; otherwise the value
        must be ``>= 1`` (a pool of that many workers).  See the fallback
        rules below for when a pool is actually created.
    chunksize:
        Forwarded to ``Pool.map`` to batch small tasks; must be ``>= 1``.

    Serial-fallback rules (the single source of truth, also relied on by
    the tests):

    * ``processes is None`` — serial by request;
    * ``processes == 1`` — a one-worker pool is pointless, so the work
      runs serially in-process;
    * ``len(items) <= 1`` — nothing to fan out, runs serially regardless
      of ``processes``.

    Anything else spawns a pool of ``min(processes, len(items))`` workers.
    Invalid values (``processes < 1``, ``chunksize < 1``) raise
    ``ValueError`` instead of being silently clamped.

    Returns
    -------
    list
        Results in the same order as ``items``.
    """
    if processes is not None and processes < 1:
        raise ValueError(f"processes must be None or >= 1, got {processes!r}")
    if chunksize < 1:
        raise ValueError(f"chunksize must be >= 1, got {chunksize!r}")
    work = list(items)
    if processes is None or processes == 1 or len(work) <= 1:
        return [func(item) for item in work]
    n_workers = min(processes, len(work))
    with mp.get_context("spawn").Pool(processes=n_workers) as pool:
        return pool.map(func, work, chunksize=chunksize)


# --------------------------------------------------------------------------- #
# Persistent shard executors
# --------------------------------------------------------------------------- #
class ShardTaskError(RuntimeError):
    """A shard worker failed (or died) while executing a submitted call.

    Carries structured context so supervisors can react without parsing
    messages: ``shard_id`` (when known), ``attempts`` (how many tries the
    submitting layer has made, 1 for a first failure), ``kind`` (``"error"``
    for an ordinary task exception, ``"crash"`` for a dead/terminated
    worker, ``"timeout"`` for a missed deadline) and the original exception
    as ``__cause__`` / :attr:`cause`.
    """

    def __init__(
        self,
        message: str,
        *,
        shard_id: str | None = None,
        attempts: int = 1,
        kind: str = "error",
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(message)
        self.shard_id = shard_id
        self.attempts = int(attempts)
        self.kind = kind
        if cause is not None:
            self.__cause__ = cause

    @property
    def cause(self) -> BaseException | None:
        """The original worker-side exception, when one exists."""
        return self.__cause__

    def __reduce__(self):
        # Default exception pickling replays only positional args and would
        # drop the structured fields on the trip back from a worker.
        return (
            _rebuild_shard_task_error,
            (type(self), str(self), self.shard_id, self.attempts, self.kind),
        )


def _rebuild_shard_task_error(cls, message, shard_id, attempts, kind):
    if issubclass(cls, ShardTimeoutError):
        return cls(message, shard_id=shard_id, attempts=attempts)
    return cls(message, shard_id=shard_id, attempts=attempts, kind=kind)


class ShardTimeoutError(ShardTaskError):
    """A submitted call missed its deadline (its worker is presumed hung)."""

    def __init__(
        self,
        message: str,
        *,
        shard_id: str | None = None,
        attempts: int = 1,
        cause: BaseException | None = None,
    ) -> None:
        super().__init__(
            message, shard_id=shard_id, attempts=attempts, kind="timeout",
            cause=cause,
        )


class ShardTask:
    """Handle for one submitted shard call.

    ``result()`` blocks until the call completed in its worker and either
    returns the call's return value or re-raises the worker-side exception
    (wrapped in :class:`ShardTaskError` when it cannot be transported).
    """

    __slots__ = ("shard_id", "_done", "_result", "_error", "_event", "_worker")

    def __init__(self, shard_id: str, *, event=None, worker=None) -> None:
        self.shard_id = shard_id
        self._done = False
        self._result: Any = None
        self._error: BaseException | None = None
        self._event = event
        self._worker = worker

    @property
    def done(self) -> bool:
        return self._done

    def _resolve(self, result: Any, error: BaseException | None) -> None:
        self._result = result
        self._error = error
        self._done = True
        if self._event is not None:
            self._event.set()

    def result(self, timeout: float | None = None) -> Any:
        """Block for the result; ``timeout`` (seconds) turns the wait into
        a deadline.  A missed deadline raises :class:`ShardTimeoutError`
        and leaves the task pending — the worker serving it is presumed
        hung and should be respawned (see ``ShardExecutor.respawn``)."""
        if not self._done:
            obs = _get_obs()
            if obs.enabled:
                from .timer import now
                blocked = now()
                self._wait(timeout)
                obs.observe("executor.wait.seconds", now() - blocked,
                            shard=self.shard_id)
            else:
                self._wait(timeout)
        if not self._done:
            if timeout is not None:
                raise ShardTimeoutError(
                    f"task for shard {self.shard_id!r} missed its "
                    f"{timeout:.3f}s deadline",
                    shard_id=self.shard_id,
                )
            raise ShardTaskError(
                f"task for shard {self.shard_id!r} never completed",
                shard_id=self.shard_id,
            )
        if self._error is not None:
            raise self._error
        return self._result

    def _wait(self, timeout: float | None = None) -> None:
        if self._event is not None:
            self._event.wait(timeout)
        elif self._worker is not None:
            self._worker.wait_for(self, timeout=timeout)


class ShardExecutor(ABC):
    """Persistent executor whose workers own resident shard objects.

    Lifecycle::

        with make_shard_executor("process", max_workers=4) as executor:
            executor.start({"rack-0": pipeline0, "rack-1": pipeline1})
            tasks = [executor.submit(sid, ingest_fn, chunk) for sid, chunk in ...]
            results = [t.result() for t in tasks]

    ``fn`` arguments are always called as ``fn(shard_object, *args,
    **kwargs)``; for the process backend they must be picklable top-level
    functions, and arguments/results must be picklable.  Parent-side use is
    single-threaded by design (the service's ingest loop); the executor
    does not synchronise concurrent ``submit``/``result`` callers.
    """

    backend: str = "abstract"

    def __init__(self) -> None:
        self._objects: dict[str, Any] | None = None
        self._closed = False

    # -- lifecycle ------------------------------------------------------- #
    @property
    def started(self) -> bool:
        return self._objects is not None

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def shard_ids(self) -> tuple[str, ...]:
        return () if self._objects is None else tuple(self._objects)

    def start(self, objects: Mapping[str, Any]) -> None:
        """Install the resident shard objects and bring the workers up.

        A failure while bringing workers up (spawn limits, pickling
        errors) tears down whatever was started and leaves the executor
        *closed* — a half-started executor must not keep accepting work.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if self.started:
            raise RuntimeError("executor is already started")
        if not objects:
            raise ValueError("executor needs at least one shard object")
        self._objects = dict(objects)
        try:
            self._start()
        except BaseException:
            self._closed = True
            try:
                self._shutdown()
            except Exception:
                pass
            raise

    def _start(self) -> None:
        """Backend hook run after ``self._objects`` is populated."""

    def _check_ready(self, shard_id: str) -> None:
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self.started:
            raise RuntimeError("executor is not started")
        if shard_id not in self._objects:
            raise KeyError(f"unknown shard {shard_id!r}")

    def remote_worker_shards(self) -> tuple[str, ...]:
        """One representative shard id per worker *interpreter* that does
        not share this process's memory — the addresses a metrics
        collector must call to reach every remote
        :data:`repro.obs.OBS` instance.  In-process backends (serial,
        thread) record straight into the parent provider, so they report
        none."""
        return ()

    def calibrate_clocks(self) -> dict[str, float]:
        """Align remote worker clocks with this process's (trace timeline).

        In-process backends share the parent's monotonic clock, so there
        is nothing to align; the process backend overrides this with an
        NTP-style handshake per worker.  Returns the measured offset in
        seconds keyed by each calibrated worker's representative shard
        (empty when nothing needed calibrating).  No-op unless the
        observability provider is enabled.
        """
        return {}

    # -- calls ----------------------------------------------------------- #
    def _record_submit(self, shard_id: str, depth: int | None = None) -> None:
        """Submission metrics shared by the backends (no-op when disabled)."""
        obs = _get_obs()
        if obs.enabled:
            obs.inc("executor.submitted", backend=self.backend, shard=shard_id)
            if depth is not None:
                obs.gauge("executor.queue_depth", depth, backend=self.backend,
                          shard=shard_id)

    @abstractmethod
    def submit(self, shard_id: str, fn: Callable, /, *args, **kwargs) -> ShardTask:
        """Enqueue ``fn(shard_object, *args, **kwargs)``; FIFO per shard."""

    def call(self, shard_id: str, fn: Callable, /, *args, **kwargs) -> Any:
        """Synchronous :meth:`submit` + ``result()``."""
        return self.submit(shard_id, fn, *args, **kwargs).result()

    def map(self, fn: Callable, args_by_shard: Mapping[str, tuple]) -> dict[str, Any]:
        """Fan ``fn`` out with per-shard positional args; gather in order."""
        tasks = [
            (shard_id, self.submit(shard_id, fn, *args))
            for shard_id, args in args_by_shard.items()
        ]
        return {shard_id: task.result() for shard_id, task in tasks}

    def broadcast(self, fn: Callable, /, *args, **kwargs) -> dict[str, Any]:
        """Run ``fn`` on every shard with the same arguments; gather."""
        if not self.started:
            raise RuntimeError("executor is not started")
        tasks = [
            (shard_id, self.submit(shard_id, fn, *args, **kwargs))
            for shard_id in self._objects
        ]
        return {shard_id: task.result() for shard_id, task in tasks}

    # -- state management ------------------------------------------------ #
    def install(self, shard_id: str, obj: Any) -> None:
        """Replace one resident shard object (keeps workers in sync)."""
        self._check_ready(shard_id)
        self._objects[shard_id] = obj

    def add_shard(self, shard_id: str, obj: Any) -> None:
        """Install a brand-new resident shard into the running pool.

        This is the elastic-topology hook: a shard minted mid-stream (new
        sensors that do not belong to any existing shard) joins the live
        worker pool without a restart — existing residents, their queued
        work and their FIFO ordering are untouched.  The new shard is
        assigned to a worker deterministically (registration order modulo
        pool size), so every backend routes identically.
        """
        if self._closed:
            raise RuntimeError("executor is closed")
        if not self.started:
            raise RuntimeError("executor is not started")
        if shard_id in self._objects:
            raise ValueError(f"shard {shard_id!r} is already resident")
        self._objects[shard_id] = obj
        self._add_shard(shard_id, obj)

    def _add_shard(self, shard_id: str, obj: Any) -> None:
        """Backend hook run after the new shard joined ``self._objects``."""

    # -- supervision ------------------------------------------------------ #
    def worker_shards(self, shard_id: str) -> tuple[str, ...]:
        """Every shard co-resident with ``shard_id`` (same worker).

        Losing a worker loses *all* of these at once — a supervisor must
        rehydrate the full set when it respawns (see :meth:`respawn`).
        The serial backend has no workers, so each shard stands alone.
        """
        self._check_ready(shard_id)
        return (shard_id,)

    def worker_alive(self, shard_id: str) -> bool:
        """Liveness of the worker serving ``shard_id``.

        Detects *crashed* workers (the process backend checks the child's
        ``is_alive``); a *hung* worker still reports alive — hangs are
        detected by task deadlines (``ShardTask.result(timeout=...)``),
        which together with this probe form the supervision model.
        """
        self._check_ready(shard_id)
        return True

    def respawn(self, shard_id: str, objects: Mapping[str, Any]) -> None:
        """Replace the worker serving ``shard_id`` with a fresh one and
        install ``objects`` — rehydrated replacements for every resident
        shard (see :meth:`worker_shards`).

        The process backend force-terminates the old worker (dead or hung
        — either way it is not coming back), fails its in-flight tasks
        with crash-kind :class:`ShardTaskError`\\ s, and spawns a clean
        replacement.  In-process backends swap the resident objects (and,
        for threads, the worker loop) — they cannot kill a genuinely hung
        thread, only abandon it.  Tasks queued on the lost worker are NOT
        resubmitted; the supervisor retries them.
        """
        self._check_ready(shard_id)
        for sid, obj in objects.items():
            self._check_ready(sid)
            self._objects[sid] = obj
        obs = _get_obs()
        if obs.enabled:
            obs.inc("executor.worker.respawned", backend=self.backend)

    def pull(self) -> dict[str, Any]:
        """Return the resident shard objects to the parent.

        Serial/thread backends share objects with the parent, so this is a
        plain lookup; the process backend round-trips each object through
        its worker (one pickle per shard — the same price ``start`` paid).
        """
        if not self.started:
            raise RuntimeError("executor is not started")
        return dict(self._objects)

    # -- shutdown -------------------------------------------------------- #
    def close(self) -> None:
        """Shut the workers down; idempotent.  Resident state is dropped —
        callers that need it back must :meth:`pull` first."""
        if self._closed:
            return
        self._closed = True
        self._shutdown()

    def _shutdown(self) -> None:
        """Backend hook for worker teardown."""

    def __enter__(self) -> "ShardExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        state = "closed" if self._closed else ("started" if self.started else "idle")
        return f"<{type(self).__name__} backend={self.backend!r} {state} shards={len(self.shard_ids)}>"


class SerialShardExecutor(ShardExecutor):
    """Inline execution in the calling thread (deterministic reference)."""

    backend = "serial"

    def submit(self, shard_id: str, fn: Callable, /, *args, **kwargs) -> ShardTask:
        self._check_ready(shard_id)
        self._record_submit(shard_id)
        task = ShardTask(shard_id)
        try:
            obs = _get_obs()
            if obs.enabled and obs.tracer.current_span_id() is None:
                # No enclosing span to parent under (housekeeping outside a
                # round): keep the event out of the trace — it could never
                # chain onto the merged timeline — but feed the histogram.
                t0 = time.perf_counter()
                result = fn(self._objects[shard_id], *args, **kwargs)
                obs.observe("span.executor.task", time.perf_counter() - t0)
            else:
                with obs.span("executor.task", shard=shard_id, backend=self.backend):
                    result = fn(self._objects[shard_id], *args, **kwargs)
            task._resolve(result, None)
        except Exception as exc:
            task._resolve(None, exc)
        return task


def _default_max_workers(requested: int | None, n_shards: int) -> int:
    if requested is not None:
        if requested < 1:
            raise ValueError(f"max_workers must be >= 1, got {requested!r}")
        return min(requested, n_shards)
    return max(1, min(n_shards, os.cpu_count() or 1))


class ThreadShardExecutor(ShardExecutor):
    """Worker threads over *shared* shard objects.

    Each worker serves a fixed subset of shards through a FIFO queue, so
    per-shard ordering holds while independent shards overlap.  Objects are
    the parent's own (no copies): after any batch of tasks completes, the
    parent sees the mutated state directly.
    """

    backend = "thread"

    def __init__(self, max_workers: int | None = None) -> None:
        super().__init__()
        self._max_workers = max_workers
        self._queues: list[queue.Queue] = []
        self._threads: list[threading.Thread] = []
        self._worker_of_shard: dict[str, int] = {}

    def _start(self) -> None:
        n_workers = _default_max_workers(self._max_workers, len(self._objects))
        for index, shard_id in enumerate(self._objects):
            self._worker_of_shard[shard_id] = index % n_workers
        for index in range(n_workers):
            q: queue.Queue = queue.Queue()
            thread = threading.Thread(
                target=self._worker_loop, args=(q,),
                name=f"shard-worker-{index}", daemon=True,
            )
            thread.start()
            self._queues.append(q)
            self._threads.append(thread)

    def _worker_loop(self, q: queue.Queue) -> None:
        while True:
            item = q.get()
            if item is None:
                return
            task, fn, args, kwargs, ctx = item
            # BaseException included: an unresolved task would leave
            # result() blocked forever on its event.
            try:
                obs = _get_obs()
                # Adopt the submitter's context: worker threads have empty
                # span stacks, so without it their spans would be orphans.
                if not obs.enabled:
                    result = fn(self._objects[task.shard_id], *args, **kwargs)
                elif ctx is not None:
                    with obs.adopt(ctx):
                        with obs.span("executor.task", shard=task.shard_id,
                                      backend=self.backend):
                            result = fn(self._objects[task.shard_id], *args,
                                        **kwargs)
                else:
                    # Context-free submits (drains, housekeeping) would
                    # emit unparented events; record the duration only.
                    t0 = time.perf_counter()
                    result = fn(self._objects[task.shard_id], *args, **kwargs)
                    obs.observe("span.executor.task",
                                time.perf_counter() - t0)
                task._resolve(result, None)
            except BaseException as exc:
                task._resolve(None, exc)

    def submit(self, shard_id: str, fn: Callable, /, *args, **kwargs) -> ShardTask:
        self._check_ready(shard_id)
        worker_index = self._worker_of_shard[shard_id]
        self._record_submit(shard_id, depth=self._queues[worker_index].qsize())
        task = ShardTask(shard_id, event=threading.Event())
        self._queues[worker_index].put(
            (task, fn, args, kwargs, _current_trace_context())
        )
        return task

    def install(self, shard_id: str, obj: Any) -> None:
        # Barrier through the shard's FIFO queue: already-queued calls
        # must finish against the old object before the swap, matching
        # the per-shard ordering contract (the process backend drains its
        # pending set for the same reason).
        self._check_ready(shard_id)
        self.submit(shard_id, _noop).result()
        self._objects[shard_id] = obj

    def _add_shard(self, shard_id: str, obj: Any) -> None:
        # Same worker assignment rule as _start: arrival order mod pool
        # size, so routing is deterministic across backends and restarts.
        self._worker_of_shard[shard_id] = (len(self._worker_of_shard)) % len(
            self._queues
        )

    def worker_shards(self, shard_id: str) -> tuple[str, ...]:
        self._check_ready(shard_id)
        index = self._worker_of_shard[shard_id]
        return tuple(
            sid for sid, widx in self._worker_of_shard.items() if widx == index
        )

    def respawn(self, shard_id: str, objects: Mapping[str, Any]) -> None:
        """Swap in a fresh queue + worker thread for ``shard_id``'s slot.

        A hung thread cannot be killed, only abandoned (it is a daemon);
        tasks still queued behind it are failed with crash-kind errors so
        no caller blocks on them, and the supervisor resubmits what it
        still needs against the replacement worker.
        """
        self._check_ready(shard_id)
        index = self._worker_of_shard[shard_id]
        old_q = self._queues[index]
        q: queue.Queue = queue.Queue()
        thread = threading.Thread(
            target=self._worker_loop, args=(q,),
            name=f"shard-worker-{index}", daemon=True,
        )
        thread.start()
        self._queues[index] = q
        self._threads[index] = thread
        while True:
            try:
                item = old_q.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            task = item[0]
            task._resolve(None, ShardTaskError(
                f"worker for shard {task.shard_id!r} was respawned; "
                "queued task abandoned",
                shard_id=task.shard_id, kind="crash",
            ))
        # A *healthy* old worker (respawn after a task exception) exits on
        # this sentinel; a hung one never reads it and is abandoned.
        old_q.put(None)
        super().respawn(shard_id, objects)

    def _shutdown(self) -> None:
        for q in self._queues:
            q.put(None)
        for thread in self._threads:
            thread.join(timeout=30.0)
        self._queues = []
        self._threads = []


# --------------------------------------------------------------------------- #
# Shared-memory chunk transport (process backend)
# --------------------------------------------------------------------------- #
_SHM_MIN_BYTES = 1024  # below this, pickling the array is cheaper than a slab trip
_SHM_ALIGN = 64


class _ShmArrayRef:
    """Wire descriptor of an ndarray parked in a shared-memory slab.

    This is what travels instead of the array's pickled bytes: the worker
    attaches the named slab, views ``(offset, shape, dtype)`` and copies
    the array out (a view would alias the slab after it recycles).
    """

    __slots__ = ("slab_name", "offset", "shape", "dtype_str")

    def __init__(self, slab_name: str, offset: int, shape: tuple, dtype_str: str) -> None:
        self.slab_name = slab_name
        self.offset = offset
        self.shape = shape
        self.dtype_str = dtype_str

    def __getstate__(self):
        return (self.slab_name, self.offset, self.shape, self.dtype_str)

    def __setstate__(self, state):
        self.slab_name, self.offset, self.shape, self.dtype_str = state

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (f"<_ShmArrayRef {self.slab_name}+{self.offset} "
                f"{self.shape} {self.dtype_str}>")


class _SlabRing:
    """Parent-side ring of shared-memory slabs with bump allocation.

    Arrays are packed head-to-tail into the active slab; each placement
    takes one reference on its slab and :meth:`release` (called when the
    carrying task's result lands) drops it.  A slab whose references hit
    zero rewinds to empty and is eligible as the next active slab, so in
    steady state the ring cycles through a handful of slabs no matter how
    many chunks stream through.  When every slab is still referenced and
    the ring is at ``max_slabs``, :meth:`place` returns ``None`` and the
    caller falls back to pickling that array — slow, never wrong.
    """

    def __init__(self, slab_bytes: int = 1 << 20, max_slabs: int = 8) -> None:
        if slab_bytes < _SHM_ALIGN or max_slabs < 1:
            raise ValueError("slab_bytes/max_slabs too small")
        self._slab_bytes = int(slab_bytes)
        self._max_slabs = int(max_slabs)
        self._slabs: list[shared_memory.SharedMemory] = []
        self._refs: list[int] = []
        self._offsets: list[int] = []
        self._active = 0
        self._closed = False

    @property
    def n_slabs(self) -> int:
        return len(self._slabs)

    def occupancy(self) -> float:
        """Fraction of the ring's bytes currently holding in-flight data."""
        total = sum(slab.size for slab in self._slabs)
        if total == 0:
            return 0.0
        return sum(self._offsets) / total

    def place(self, array: np.ndarray) -> tuple[_ShmArrayRef, int] | None:
        """Copy ``array`` into a slab; returns (descriptor, slab index).

        ``None`` means "could not place" (ring closed, empty array, or
        every slab busy at capacity) — the caller ships the array by
        pickle instead.
        """
        nbytes = int(array.nbytes)
        if self._closed or nbytes == 0:
            return None
        index = self._claim(nbytes)
        if index is None:
            return None
        slab = self._slabs[index]
        offset = self._offsets[index]
        dst = np.ndarray(array.shape, dtype=array.dtype, buffer=slab.buf,
                         offset=offset)
        np.copyto(dst, array)
        aligned = nbytes + (-nbytes) % _SHM_ALIGN
        self._offsets[index] = offset + aligned
        self._refs[index] += 1
        ref = _ShmArrayRef(slab.name, offset, tuple(array.shape), array.dtype.str)
        return ref, index

    def _claim(self, nbytes: int) -> int | None:
        if self._slabs:
            index = self._active
            if self._offsets[index] + nbytes <= self._slabs[index].size:
                return index
            for index, refs in enumerate(self._refs):
                # Recycle: a drained slab rewinds to empty.
                if refs == 0 and self._slabs[index].size >= nbytes:
                    self._offsets[index] = 0
                    self._active = index
                    return index
        if len(self._slabs) < self._max_slabs:
            try:
                slab = shared_memory.SharedMemory(
                    create=True, size=max(self._slab_bytes, nbytes)
                )
            except Exception:
                return None
            self._slabs.append(slab)
            self._refs.append(0)
            self._offsets.append(0)
            self._active = len(self._slabs) - 1
            return self._active
        return None

    def release(self, index: int) -> None:
        """Drop one placement reference (its task's result landed)."""
        self._refs[index] -= 1
        if self._refs[index] <= 0:
            self._refs[index] = 0
            self._offsets[index] = 0

    def close(self) -> None:
        """Unlink every slab (workers have already copied out / shut down)."""
        self._closed = True
        for slab in self._slabs:
            try:
                slab.close()
                slab.unlink()
            except Exception:  # pragma: no cover - best-effort teardown
                pass
        self._slabs, self._refs, self._offsets = [], [], []


def shm_available() -> bool:
    """Whether POSIX shared memory actually works here (probe allocation)."""
    try:
        probe = shared_memory.SharedMemory(create=True, size=_SHM_ALIGN)
    except Exception:
        return False
    probe.close()
    probe.unlink()
    return True


def _shm_disabled_by_env() -> bool:
    return bool(os.environ.get("REPRO_DISABLE_SHM", ""))


def _shm_attach(name: str) -> shared_memory.SharedMemory:
    """Worker-side attach to a parent-owned slab.

    Spawned workers inherit the parent's resource tracker, so the
    attach-side registration is a set no-op against the parent's own and
    the single entry is retired when the parent unlinks the slab at
    shutdown — no extra bookkeeping needed (explicitly unregistering here
    would instead remove the *parent's* registration from the shared
    tracker).
    """
    return shared_memory.SharedMemory(name=name)


def _resolve_shm_value(value: Any, cache: dict[str, shared_memory.SharedMemory]) -> Any:
    if isinstance(value, _ShmArrayRef):
        seg = cache.get(value.slab_name)
        if seg is None:
            seg = _shm_attach(value.slab_name)
            cache[value.slab_name] = seg
        view = np.ndarray(value.shape, dtype=np.dtype(value.dtype_str),
                          buffer=seg.buf, offset=value.offset)
        # Copy out: the parent recycles the slab as soon as this task's
        # result lands, so a view must never escape this call.
        return np.array(view)
    return value


def _process_worker_main(conn) -> None:
    """Loop of one spawned shard worker: install / task / payload / ptask /
    close commands."""
    objects: dict[str, Any] = {}
    payloads: dict[int, list] = {}  # payload_id -> [fn, args, kwargs, uses left]
    shm_cache: dict[str, shared_memory.SharedMemory] = {}

    def run_one(task_id, shard_id, fn, args, kwargs, ctx=None) -> None:
        try:
            args = tuple(_resolve_shm_value(value, shm_cache) for value in args)
            kwargs = {
                key: _resolve_shm_value(value, shm_cache)
                for key, value in kwargs.items()
            }
            # The worker interpreter's own provider: disabled unless the
            # parent turned it on via repro.obs.worker_enable_metrics.
            # Adopting the shipped context parents this span under the
            # coordinator's round span (no-op while disabled).
            obs = _get_obs()
            if ctx is not None:
                with obs.adopt(ctx):
                    with obs.span("executor.task", shard=shard_id,
                                  backend="process"):
                        result = fn(objects[shard_id], *args, **kwargs)
            else:
                # No causal context: housekeeping (drains, calibration,
                # pulls) or work submitted outside any coordinator span.
                # An event here could never chain to the merged timeline,
                # so keep it out of the trace but still feed the span
                # duration histogram the metrics path reports.
                t0 = time.perf_counter()
                result = fn(objects[shard_id], *args, **kwargs)
                obs.observe("span.executor.task", time.perf_counter() - t0)
            payload = ("result", task_id, result, None)
        except Exception as exc:
            payload = ("result", task_id, None, exc)
        try:
            conn.send(payload)
        except Exception as exc:
            # Unpicklable result or exception: transport a description.
            conn.send(("result", task_id, None,
                       ShardTaskError(f"worker could not return result: {exc!r}",
                                      shard_id=shard_id)))

    while True:
        try:
            message = conn.recv()
        except EOFError:
            break
        kind = message[0]
        if kind == "install":
            _, shard_id, obj = message
            objects[shard_id] = obj
            conn.send(("installed", shard_id))
        elif kind == "task":
            _, task_id, shard_id, fn, args, kwargs, ctx = message
            run_one(task_id, shard_id, fn, args, kwargs, ctx)
        elif kind == "payload":
            # Broadcast dedup: the (fn, args, kwargs) of a fan-out travels
            # once per worker; the per-shard "ptask" messages reference it.
            _, payload_id, fn, args, kwargs, uses = message
            payloads[payload_id] = [fn, args, kwargs, int(uses)]
        elif kind == "ptask":
            _, task_id, shard_id, payload_id, ctx = message
            entry = payloads[payload_id]
            run_one(task_id, shard_id, entry[0], entry[1], entry[2], ctx)
            entry[3] -= 1
            if entry[3] <= 0:
                payloads.pop(payload_id, None)
        elif kind == "close":
            conn.send(("closed",))
            break
    for seg in shm_cache.values():
        try:
            seg.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
    conn.close()


class _ProcessWorker:
    """Parent-side handle of one spawned worker (duplex pipe + pending set)."""

    def __init__(self, ctx, index: int, ring: _SlabRing | None = None) -> None:
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        self.conn = parent_conn
        self.process = ctx.Process(
            target=_process_worker_main, args=(child_conn,),
            name=f"shard-worker-{index}", daemon=True,
        )
        self.process.start()
        child_conn.close()
        self._ring = ring
        self._pending: dict[int, ShardTask] = {}
        self._slab_refs: dict[int, tuple[int, ...]] = {}
        self._next_task_id = 0
        self._next_payload_id = 0

    def install(self, shard_id: str, obj: Any) -> None:
        self.drain()
        self.conn.send(("install", shard_id, obj))
        ack = self.conn.recv()
        if ack != ("installed", shard_id):  # pragma: no cover - defensive
            raise ShardTaskError(f"unexpected install ack {ack!r}")

    def submit(self, task: ShardTask, fn: Callable, args, kwargs,
               slab_indices: tuple[int, ...] = (), ctx=None) -> None:
        task_id = self._next_task_id
        self._next_task_id += 1
        self._pending[task_id] = task
        if slab_indices:
            self._slab_refs[task_id] = slab_indices
        try:
            self.conn.send(("task", task_id, task.shard_id, fn, args, kwargs, ctx))
        except Exception as exc:
            del self._pending[task_id]
            self._release_slabs(task_id)
            raise ShardTaskError(
                f"could not ship task for shard {task.shard_id!r} to worker: {exc!r}",
                shard_id=task.shard_id, kind="crash",
            ) from exc

    def send_payload(self, fn: Callable, args, kwargs, uses: int) -> int:
        """Ship one broadcast payload; the next ``uses`` ptasks reference it."""
        payload_id = self._next_payload_id
        self._next_payload_id += 1
        self.conn.send(("payload", payload_id, fn, args, kwargs, uses))
        return payload_id

    def submit_ptask(self, task: ShardTask, payload_id: int, ctx=None) -> None:
        task_id = self._next_task_id
        self._next_task_id += 1
        self._pending[task_id] = task
        self.conn.send(("ptask", task_id, task.shard_id, payload_id, ctx))

    @property
    def pending_shards(self) -> tuple[str, ...]:
        """Shards with in-flight tasks on this worker (submission order)."""
        return tuple(task.shard_id for task in self._pending.values())

    @property
    def alive(self) -> bool:
        return self.process.is_alive()

    def wait_for(self, task: ShardTask, timeout: float | None = None) -> None:
        if timeout is None:
            while not task.done and self._pending:
                self._receive_one()
            return
        deadline = time.monotonic() + timeout
        while not task.done and self._pending:
            remaining = deadline - time.monotonic()
            # A missed deadline returns with the task still pending; the
            # caller (ShardTask.result) raises ShardTimeoutError.
            if remaining <= 0 or not self._receive_one(timeout=remaining):
                return

    def drain(self, timeout: float | None = None) -> bool:
        """Receive until no task is pending; ``False`` on a missed deadline."""
        if timeout is None:
            while self._pending:
                self._receive_one()
            return True
        deadline = time.monotonic() + timeout
        while self._pending:
            remaining = deadline - time.monotonic()
            if remaining <= 0 or not self._receive_one(timeout=remaining):
                return False
        return True

    def _release_slabs(self, task_id: int) -> None:
        for index in self._slab_refs.pop(task_id, ()):
            self._ring.release(index)

    def _fail_pending(self, reason: str) -> tuple[str, ...]:
        """Resolve every in-flight task with a crash-kind error."""
        lost = self.pending_shards
        for task_id, pending in list(self._pending.items()):
            pending._resolve(None, ShardTaskError(
                f"{reason} (in-flight task for shard {pending.shard_id!r} lost)",
                shard_id=pending.shard_id, kind="crash",
            ))
            self._release_slabs(task_id)
        self._pending.clear()
        return lost

    def _receive_one(self, timeout: float | None = None) -> bool:
        """Receive one result; ``False`` only when ``timeout`` expired."""
        try:
            if timeout is not None and not self.conn.poll(timeout):
                return False
            message = self.conn.recv()
        except (EOFError, OSError) as exc:
            self._fail_pending(f"shard worker {self.process.name} died: {exc!r}")
            return True
        kind, task_id, result, error = message
        assert kind == "result", message
        self._release_slabs(task_id)
        self._pending.pop(task_id)._resolve(result, error)
        return True

    def kill(self, reason: str) -> tuple[str, ...]:
        """Force-terminate the worker; returns the shards whose in-flight
        tasks were lost.  Used for hung workers and respawns — never asks
        the child to cooperate."""
        lost = self._fail_pending(reason)
        if self.process.is_alive():
            self.process.terminate()
            self.process.join(timeout=5.0)
            if self.process.is_alive():  # pragma: no cover - defensive
                self.process.kill()
                self.process.join(timeout=5.0)
        try:
            self.conn.close()
        except Exception:  # pragma: no cover - best-effort teardown
            pass
        return lost

    def close(self, timeout: float = 30.0) -> tuple[str, ...]:
        """Graceful shutdown with a drain/join deadline.

        A worker that cannot drain within ``timeout`` (it hung, or died
        without the pipe collapsing) is force-terminated; the names of the
        shards whose in-flight tasks were lost are returned so the
        executor can raise one clear error instead of blocking forever.
        """
        if not self.drain(timeout=timeout):
            return self.kill(
                f"shard worker {self.process.name} failed to drain within "
                f"{timeout:.1f}s at close"
            )
        try:
            self.conn.send(("close",))
            if self.conn.poll(timeout):
                self.conn.recv()  # "closed" ack
        except (EOFError, OSError, BrokenPipeError):
            pass
        self.process.join(timeout=timeout)
        if self.process.is_alive():  # pragma: no cover - defensive
            self.process.terminate()
            self.process.join(timeout=5.0)
        self.conn.close()
        return ()


class ProcessShardExecutor(ShardExecutor):
    """Spawned worker processes with resident shard objects.

    Each shard object is pickled to its worker exactly once at ``start``
    (and once more per :meth:`pull`); every other exchange carries only the
    call payloads.  Parent-side state in ``self._objects`` is the *initial*
    copy and goes stale as workers mutate their residents — always query
    through the executor, or :meth:`pull` to resynchronise.

    ``transport`` selects how large ndarray arguments travel: ``"auto"``
    (default) uses the shared-memory slab ring when the platform supports
    it and falls back to pickling otherwise, ``"shm"`` requires shared
    memory (raises at :meth:`start` if unavailable), ``"pickle"`` disables
    it.  Setting the ``REPRO_DISABLE_SHM`` environment variable forces
    pickling regardless.  The transport changes only how bytes move —
    workers observe identical arrays either way, which the parity tests
    assert.
    """

    backend = "process"

    def __init__(self, max_workers: int | None = None, *,
                 transport: str = "auto", close_timeout: float = 30.0) -> None:
        super().__init__()
        if transport not in ("auto", "shm", "pickle"):
            raise ValueError(
                f"transport must be 'auto', 'shm' or 'pickle', got {transport!r}"
            )
        if close_timeout <= 0:
            raise ValueError(f"close_timeout must be positive, got {close_timeout!r}")
        self._max_workers = max_workers
        self._requested_transport = transport
        self._close_timeout = float(close_timeout)
        self._ring: _SlabRing | None = None
        self._workers: list[_ProcessWorker] = []
        self._worker_of_shard: dict[str, int] = {}

    @property
    def transport(self) -> str:
        """The transport actually in effect once started."""
        return "shm" if self._ring is not None else "pickle"

    def _start(self) -> None:
        if self._requested_transport != "pickle" and not _shm_disabled_by_env():
            if shm_available():
                self._ring = _SlabRing()
            elif self._requested_transport == "shm":
                raise RuntimeError(
                    "transport='shm' requested but shared memory is "
                    "unavailable on this platform"
                )
            else:
                obs = _get_obs()
                if obs.enabled:
                    obs.inc("executor.shm.unavailable")
        ctx = mp.get_context("spawn")
        n_workers = _default_max_workers(self._max_workers, len(self._objects))
        self._workers = [
            _ProcessWorker(ctx, index, ring=self._ring) for index in range(n_workers)
        ]
        for index, (shard_id, obj) in enumerate(self._objects.items()):
            worker = self._workers[index % n_workers]
            self._worker_of_shard[shard_id] = index % n_workers
            worker.install(shard_id, obj)
        # Calibration handshake at executor start (re-synced on respawn):
        # no-op unless the provider is enabled.
        self.calibrate_clocks()

    def _prepare_call(self, args: tuple, kwargs: dict) -> tuple[tuple, dict, tuple]:
        """Swap large ndarray arguments for slab descriptors.

        Returns the (possibly rewritten) args/kwargs plus the slab indices
        the resulting task must release when its result lands.  Only
        top-level positional/keyword values are inspected — that is where
        the ingest path passes its chunks.
        """
        ring = self._ring
        if ring is None or not (
            any(isinstance(v, np.ndarray) and v.nbytes >= _SHM_MIN_BYTES
                for v in args)
            or any(isinstance(v, np.ndarray) and v.nbytes >= _SHM_MIN_BYTES
                   for v in kwargs.values())
        ):
            return args, kwargs, ()
        obs = _get_obs()
        indices: list[int] = []

        def convert(value):
            if isinstance(value, np.ndarray) and value.nbytes >= _SHM_MIN_BYTES:
                placed = ring.place(np.ascontiguousarray(value))
                if placed is None:
                    if obs.enabled:
                        obs.inc("executor.shm.fallback")
                    return value
                ref, index = placed
                indices.append(index)
                return ref
            return value

        with obs.span("executor.shm.place"):
            new_args = tuple(convert(value) for value in args)
            new_kwargs = {key: convert(value) for key, value in kwargs.items()}
        if obs.enabled:
            obs.inc("executor.shm.placed", len(indices))
            obs.gauge("executor.shm.slab_occupancy", ring.occupancy())
            obs.gauge("executor.shm.slabs", ring.n_slabs)
        return new_args, new_kwargs, tuple(indices)

    def submit(self, shard_id: str, fn: Callable, /, *args, **kwargs) -> ShardTask:
        self._check_ready(shard_id)
        worker = self._workers[self._worker_of_shard[shard_id]]
        self._record_submit(shard_id, depth=len(worker._pending))
        args, kwargs, slab_indices = self._prepare_call(args, kwargs)
        task = ShardTask(shard_id, worker=worker)
        worker.submit(task, fn, args, kwargs, slab_indices=slab_indices,
                      ctx=_current_trace_context())
        return task

    def broadcast(self, fn: Callable, /, *args, **kwargs) -> dict[str, Any]:
        """Fan ``fn`` out to every shard, shipping the payload once per
        worker process instead of once per shard (see module docstring)."""
        if not self.started:
            raise RuntimeError("executor is not started")
        by_worker: dict[int, list[str]] = {}
        for shard_id in self._objects:
            by_worker.setdefault(self._worker_of_shard[shard_id], []).append(shard_id)
        tasks: dict[str, ShardTask] = {}
        ctx = _current_trace_context()
        for worker_index, shard_ids in by_worker.items():
            worker = self._workers[worker_index]
            payload_id = worker.send_payload(fn, args, kwargs, uses=len(shard_ids))
            for shard_id in shard_ids:
                self._record_submit(shard_id, depth=len(worker._pending))
                task = ShardTask(shard_id, worker=worker)
                worker.submit_ptask(task, payload_id, ctx=ctx)
                tasks[shard_id] = task
        return {shard_id: tasks[shard_id].result() for shard_id in self._objects}

    def remote_worker_shards(self) -> tuple[str, ...]:
        """One resident shard per spawned worker (any shard on a worker
        reaches that interpreter's module-level provider)."""
        if not self.started:
            return ()
        representative: dict[int, str] = {}
        for shard_id, index in self._worker_of_shard.items():
            representative.setdefault(index, shard_id)
        return tuple(representative[index] for index in sorted(representative))

    # How many round trips a clock handshake makes; the minimum-RTT probe
    # wins (NTP's trick: the midpoint estimate is tightest when the pipe
    # was least congested).
    _CLOCK_PROBES = 5

    def calibrate_clocks(self) -> dict[str, float]:
        obs = _get_obs()
        if not obs.enabled or not self.started or not self._workers:
            return {}
        offsets: dict[str, float] = {}
        for shard_id in self.remote_worker_shards():
            offsets[shard_id] = self._calibrate_worker(shard_id)
        return offsets

    def _calibrate_worker(self, shard_id: str) -> float:
        """NTP-style handshake with the worker serving ``shard_id``.

        Each probe brackets the worker's clock read between two parent
        clock reads; the probe with the smallest round trip gives the
        tightest midpoint estimate ``offset = (t0 + t1)/2 - t_worker``
        (seconds to ADD to the worker clock to land on the parent's).
        The result, plus the session trace id, is installed in the
        worker's provider so every event it emits is already calibrated.
        """
        from .timer import now

        obs = _get_obs()
        best_rtt = float("inf")
        offset = 0.0
        for _ in range(self._CLOCK_PROBES):
            t0 = now()
            t_worker = self.call(shard_id, _worker_clock_probe)
            t1 = now()
            rtt = t1 - t0
            if rtt < best_rtt:
                best_rtt = rtt
                offset = (t0 + t1) / 2.0 - t_worker
        self.call(shard_id, _worker_set_trace_context, obs.trace_id, offset)
        index = self._worker_of_shard[shard_id]
        obs.inc("executor.clock.calibrations", backend=self.backend)
        obs.gauge("executor.clock.offset_seconds", offset, worker=str(index))
        obs.gauge("executor.clock.rtt_seconds", best_rtt, worker=str(index))
        return offset

    def install(self, shard_id: str, obj: Any) -> None:
        super().install(shard_id, obj)
        self._workers[self._worker_of_shard[shard_id]].install(shard_id, obj)

    def _add_shard(self, shard_id: str, obj: Any) -> None:
        index = len(self._worker_of_shard) % len(self._workers)
        self._worker_of_shard[shard_id] = index
        self._workers[index].install(shard_id, obj)

    def worker_shards(self, shard_id: str) -> tuple[str, ...]:
        self._check_ready(shard_id)
        index = self._worker_of_shard[shard_id]
        return tuple(
            sid for sid, widx in self._worker_of_shard.items() if widx == index
        )

    def worker_alive(self, shard_id: str) -> bool:
        self._check_ready(shard_id)
        return self._workers[self._worker_of_shard[shard_id]].alive

    def respawn(self, shard_id: str, objects: Mapping[str, Any]) -> None:
        """Kill the worker serving ``shard_id`` and spawn a replacement.

        ``objects`` must carry a rehydrated object for every shard that
        was resident on the lost worker (:meth:`worker_shards`) — they are
        shipped to the fresh process exactly as ``start`` shipped the
        originals.  Any in-flight tasks on the old worker resolve with
        crash-kind :class:`ShardTaskError`\\ s; the supervisor resubmits.
        """
        self._check_ready(shard_id)
        index = self._worker_of_shard[shard_id]
        resident = self.worker_shards(shard_id)
        missing = sorted(set(resident) - set(objects))
        if missing:
            raise ValueError(
                f"respawn needs a replacement object for every shard resident "
                f"on the lost worker; missing {missing}"
            )
        old = self._workers[index]
        old.kill(f"respawning shard worker {old.process.name}")
        worker = _ProcessWorker(mp.get_context("spawn"), index, ring=self._ring)
        self._workers[index] = worker
        for sid in resident:
            worker.install(sid, objects[sid])
            self._objects[sid] = objects[sid]
        obs = _get_obs()
        if obs.enabled:
            obs.inc("executor.worker.respawned", backend=self.backend)
            # The killed worker's undrained registry (and buffered trace
            # events) die with it — surface the undercount instead of
            # hiding it.
            obs.inc("obs.metrics.lost_registries", backend=self.backend)
            # Re-sync the replacement's clock: a fresh interpreter has a
            # fresh monotonic epoch.
            self._calibrate_worker(shard_id)

    def pull(self) -> dict[str, Any]:
        if not self.started:
            raise RuntimeError("executor is not started")
        synced = self.broadcast(_return_shard_object)
        self._objects.update(synced)
        return dict(self._objects)

    def _shutdown(self) -> None:
        lost: list[str] = []
        lost_workers = 0
        for worker in self._workers:
            worker_lost = worker.close(timeout=self._close_timeout)
            if worker_lost:
                lost.extend(worker_lost)
                lost_workers += 1
        self._workers = []
        obs = _get_obs()
        if lost_workers and obs.enabled:
            # Each force-terminated worker took its undrained metric
            # registry with it; record the loss so reports can flag the
            # undercount rather than silently presenting partial totals.
            obs.inc("obs.metrics.lost_registries", lost_workers,
                    backend=self.backend)
        if self._ring is not None:
            # Workers have drained and exited (or were force-terminated):
            # no live worker can still dereference a slab, so the ring
            # unlinks safely.
            self._ring.close()
            self._ring = None
        if lost:
            raise ShardTaskError(
                "executor closed with unresponsive workers; in-flight tasks "
                f"for shards {sorted(set(lost))} were lost (force-terminated "
                f"after {self._close_timeout:.1f}s)",
                kind="crash",
            )


def _return_shard_object(obj: Any) -> Any:
    """Worker-side helper shipping the resident object back (see ``pull``)."""
    return obj


def _noop(obj: Any) -> None:
    """FIFO barrier used by :meth:`ThreadShardExecutor.install`."""


SHARD_EXECUTOR_BACKENDS = ("serial", "thread", "process")


def make_shard_executor(
    backend: str | ShardExecutor | None = None,
    *,
    max_workers: int | None = None,
    transport: str | None = None,
) -> ShardExecutor:
    """Build (or pass through) a :class:`ShardExecutor`.

    ``backend`` may be a backend name (``"serial"``/``"thread"``/
    ``"process"``), ``None`` (serial), or an existing un-started executor
    instance, which is returned as-is (``max_workers`` must then be
    ``None`` — the instance already carries its sizing).  ``transport``
    (``"auto"``/``"shm"``/``"pickle"``) applies to the process backend
    only — the in-process backends ship no bytes at all.
    """
    if isinstance(backend, ShardExecutor):
        if max_workers is not None:
            raise ValueError("max_workers cannot be combined with an executor instance")
        if transport is not None:
            raise ValueError("transport cannot be combined with an executor instance")
        if backend.started or backend.closed:
            raise ValueError("executor instance must be fresh (not started or closed)")
        return backend
    if backend == "process":
        return ProcessShardExecutor(
            max_workers=max_workers, transport=transport or "auto"
        )
    if transport is not None:
        raise ValueError(
            f"transport applies to the process backend only, not {backend!r}"
        )
    if backend is None or backend == "serial":
        if max_workers is not None and max_workers < 1:
            raise ValueError(f"max_workers must be >= 1, got {max_workers!r}")
        return SerialShardExecutor()
    if backend == "thread":
        return ThreadShardExecutor(max_workers=max_workers)
    raise ValueError(
        f"unknown executor backend {backend!r}; expected one of {SHARD_EXECUTOR_BACKENDS}"
    )

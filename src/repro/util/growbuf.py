"""Amortized-growth buffers for streaming accumulation.

The streaming hot path appends small column blocks to matrices that live
for the whole stream: the level-1 subsampled snapshot matrix of
:class:`~repro.core.imrdmd.IncrementalMrDMD`, its optional retained raw
timeline, and the right-factor base of the incremental SVD.  Growing those
with ``np.hstack`` copies the *entire* accumulated matrix on every append,
which silently turns the paper's ``O(P (q + c)^2)``-per-update scheme into
``O(T^2)`` over a stream of ``T`` snapshots.

:class:`GrowableMatrix` is the fix: a ``(P, capacity)`` backing buffer that
doubles its capacity when full, so appending ``c`` columns costs an
amortized ``O(P c)`` copy regardless of how many columns came before.
Reads are zero-copy views into the buffer.

:class:`RingBuffer` is the bounded sibling used by the alert sinks: a
fixed-capacity, array-backed ring with O(1) append that retains the most
recent ``capacity`` items (the :class:`collections.deque` it replaces is
also O(1), but the ring keeps the service's buffers on one shared,
introspectable implementation).
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

__all__ = ["GrowableMatrix", "RingBuffer"]

#: Smallest column capacity a :class:`GrowableMatrix` allocates.
_MIN_CAPACITY = 16


class GrowableMatrix:
    """A ``(P, T)`` matrix accumulated column-block by column-block.

    Parameters
    ----------
    n_rows:
        Fixed row count ``P`` of every appended block.
    dtype:
        Element dtype of the backing buffer (default ``float64``).
    capacity:
        Initial column capacity (grown geometrically as needed).

    Notes
    -----
    * :meth:`append` is O(1) amortized per element: the backing buffer
      doubles when full, so a stream of ``T`` columns performs
      ``O(log T)`` reallocations and ``O(P T)`` total copying — versus
      ``O(P T^2 / c)`` for repeated ``np.hstack`` with chunk size ``c``.
    * :meth:`view` is a zero-copy window onto the backing buffer.  It is
      only valid until the next :meth:`append` (which may reallocate) and
      must be treated as read-only; use :meth:`materialize` for a
      contiguous copy that callers may keep or hand to BLAS-heavy code.
    * Pickling stores only the occupied columns (the spare capacity is
      not shipped), so process-pool workers receive compact payloads with
      bit-identical contents.
    """

    def __init__(
        self,
        n_rows: int,
        *,
        dtype: np.dtype | type = np.float64,
        capacity: int = _MIN_CAPACITY,
    ) -> None:
        if n_rows < 1:
            raise ValueError(f"n_rows must be >= 1, got {n_rows!r}")
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._buffer = np.empty((int(n_rows), max(int(capacity), 1)), dtype=np.dtype(dtype))
        self._n_cols = 0

    @classmethod
    def from_array(cls, array: np.ndarray, *, dtype: np.dtype | type | None = None) -> "GrowableMatrix":
        """Build a buffer seeded with the columns of a 2-D array (copied)."""
        array = np.asarray(array)
        if array.ndim != 2:
            raise ValueError(f"array must be 2-D, got shape {array.shape!r}")
        out = cls(
            array.shape[0],
            dtype=array.dtype if dtype is None else dtype,
            capacity=max(array.shape[1], _MIN_CAPACITY),
        )
        out.append(array)
        return out

    # ------------------------------------------------------------------ #
    @property
    def n_rows(self) -> int:
        return int(self._buffer.shape[0])

    @property
    def n_cols(self) -> int:
        """Number of columns appended so far."""
        return self._n_cols

    @property
    def shape(self) -> tuple[int, int]:
        """Logical shape ``(P, T)`` (excludes spare capacity)."""
        return (self.n_rows, self._n_cols)

    @property
    def capacity(self) -> int:
        """Current column capacity of the backing buffer."""
        return int(self._buffer.shape[1])

    @property
    def dtype(self) -> np.dtype:
        return self._buffer.dtype

    def __len__(self) -> int:
        return self._n_cols

    # ------------------------------------------------------------------ #
    def _ensure_capacity(self, n_cols: int) -> None:
        if n_cols <= self.capacity:
            return
        new_capacity = max(self.capacity, _MIN_CAPACITY)
        while new_capacity < n_cols:
            new_capacity *= 2
        grown = np.empty((self.n_rows, new_capacity), dtype=self._buffer.dtype)
        grown[:, : self._n_cols] = self._buffer[:, : self._n_cols]
        self._buffer = grown

    def append(self, columns: np.ndarray) -> "GrowableMatrix":
        """Append a ``(P, c)`` block (or a single ``(P,)`` column)."""
        columns = np.asarray(columns)
        if columns.ndim == 1:
            columns = columns[:, None]
        if columns.ndim != 2:
            raise ValueError(f"columns must be 1-D or 2-D, got shape {columns.shape!r}")
        if columns.shape[0] != self.n_rows:
            raise ValueError(
                f"row-count mismatch: buffer has {self.n_rows} rows, "
                f"block has {columns.shape[0]}"
            )
        c = columns.shape[1]
        if c == 0:
            return self
        self._ensure_capacity(self._n_cols + c)
        self._buffer[:, self._n_cols : self._n_cols + c] = columns
        self._n_cols += c
        return self

    def add_rows(self, rows: np.ndarray) -> "GrowableMatrix":
        """Widen the buffer by ``(r, T)`` new *rows* covering the occupied columns.

        Row growth is the topology event (a new sensor joining a live
        stream), not the streaming hot path: it reallocates once and copies
        the occupied block — ``O((P + r) T)`` per event, amortisation-free
        by design.  ``rows`` must cover exactly the occupied columns; spare
        capacity is preserved.
        """
        rows = np.asarray(rows, dtype=self._buffer.dtype)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError(f"rows must be 1-D or 2-D, got shape {rows.shape!r}")
        if rows.shape[1] != self._n_cols:
            raise ValueError(
                f"column-count mismatch: buffer holds {self._n_cols} columns, "
                f"new rows have {rows.shape[1]}"
            )
        if rows.shape[0] == 0:
            return self
        grown = np.empty(
            (self.n_rows + rows.shape[0], self.capacity), dtype=self._buffer.dtype
        )
        grown[: self.n_rows, : self._n_cols] = self._buffer[:, : self._n_cols]
        grown[self.n_rows :, : self._n_cols] = rows
        self._buffer = grown
        return self

    # ------------------------------------------------------------------ #
    def view(self) -> np.ndarray:
        """Zero-copy ``(P, T)`` window (read-only by contract; invalidated
        by the next :meth:`append`)."""
        return self._buffer[:, : self._n_cols]

    def materialize(self) -> np.ndarray:
        """Contiguous copy of the occupied columns (safe to keep/mutate)."""
        return np.ascontiguousarray(self._buffer[:, : self._n_cols])

    def slice(self, start: int, stop: int) -> np.ndarray:
        """Contiguous copy of columns ``[start, stop)``."""
        if not 0 <= start <= stop <= self._n_cols:
            raise IndexError(
                f"slice [{start}, {stop}) out of range for {self._n_cols} columns"
            )
        return np.ascontiguousarray(self._buffer[:, start:stop])

    def column(self, index: int) -> np.ndarray:
        """Copy of one column (negative indices allowed)."""
        if index < 0:
            index += self._n_cols
        if not 0 <= index < self._n_cols:
            raise IndexError(f"column {index} out of range for {self._n_cols} columns")
        return self._buffer[:, index].copy()

    # ------------------------------------------------------------------ #
    # Pickling: ship only the occupied columns.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        return {"contents": self.materialize()}

    def __setstate__(self, state: dict) -> None:
        contents = np.asarray(state["contents"])
        self._buffer = np.empty(
            (contents.shape[0], max(contents.shape[1], _MIN_CAPACITY)),
            dtype=contents.dtype,
        )
        self._buffer[:, : contents.shape[1]] = contents
        self._n_cols = contents.shape[1]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GrowableMatrix(shape={self.shape}, capacity={self.capacity}, "
            f"dtype={self.dtype})"
        )


class RingBuffer:
    """Fixed-capacity ring retaining the most recent ``capacity`` items.

    Append is O(1) with no per-item allocation (the slot list is allocated
    once); iteration yields the retained items oldest-first.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity!r}")
        self._capacity = int(capacity)
        self._slots: list = [None] * self._capacity
        self._start = 0          # index of the oldest retained item
        self._count = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def append(self, item) -> None:
        """Add one item, evicting the oldest when full."""
        end = (self._start + self._count) % self._capacity
        self._slots[end] = item
        if self._count < self._capacity:
            self._count += 1
        else:
            self._start = (self._start + 1) % self._capacity

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator:
        for offset in range(self._count):
            yield self._slots[(self._start + offset) % self._capacity]

    def items(self) -> list:
        """Retained items as a list, oldest first."""
        return list(self)

    def clear(self) -> None:
        """Drop every retained item."""
        self._slots = [None] * self._capacity
        self._start = 0
        self._count = 0

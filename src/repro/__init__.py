"""repro — reproduction of "An Incremental Multi-Level, Multi-Scale Approach
to Assessment of Multifidelity HPC Systems" (SC 2024).

The package is organised as:

* :mod:`repro.core` — DMD / mrDMD / incremental SVD / **I-mrDMD** numerics,
  the mrDMD spectrum, and the baseline z-score analysis (the paper's
  contribution);
* :mod:`repro.telemetry` — synthetic multifidelity environment-log substrate
  (Theta XC40 / Polaris-shaped sensor data with multi-timescale dynamics,
  anomaly injection, and streaming replay);
* :mod:`repro.joblog` — job-log substrate (workload generator + scheduler
  simulator);
* :mod:`repro.hwlog` — hardware-error-log substrate;
* :mod:`repro.align` — temporal/per-node alignment of the three log types;
* :mod:`repro.viz` — rack-layout grammar, Turbo colormap, SVG/ASCII views,
  time-series and spectrum exports;
* :mod:`repro.compare` — PCA / incremental PCA / t-SNE / UMAP-lite /
  Aligned-UMAP-lite comparison methods (Figs. 8/9);
* :mod:`repro.pipeline` — the online analysis pipeline and case-study
  drivers tying everything together;
* :mod:`repro.service` — the fleet-scale monitoring service (sharding,
  alerting, checkpoint/restore, scenario catalog) for one machine;
* :mod:`repro.federation` — multi-machine federation: machine registry,
  federated monitor, cross-machine alert routing, rotating checkpoints;
* :mod:`repro.obs` — off-by-default tracing, metrics and profiling hooks
  threaded through the whole ingest path (core, executor, service,
  federation), with a text/Markdown session report;
* :mod:`repro.util` — timers, validation, chunking and parallel helpers.

Quickstart::

    import numpy as np
    from repro import IncrementalMrDMD
    from repro.telemetry import TelemetryGenerator, theta_machine

    gen = TelemetryGenerator(theta_machine(racks=2), seed=7)
    stream = gen.generate(n_timesteps=2000)
    model = IncrementalMrDMD(dt=stream.dt, max_levels=6)
    model.fit(stream.values[:, :1000])
    model.partial_fit(stream.values[:, 1000:])
    reconstruction = model.reconstruct()
"""

from .core import (
    BaselineModel,
    BaselineSpec,
    DMDResult,
    IncrementalMrDMD,
    IncrementalSVD,
    MrDMDConfig,
    MrDMDSpectrum,
    MrDMDTree,
    ZScoreCategory,
    ZScoreResult,
    compute_dmd,
    compute_mrdmd,
)

__version__ = "1.0.0"

__all__ = [
    "BaselineModel",
    "BaselineSpec",
    "DMDResult",
    "IncrementalMrDMD",
    "IncrementalSVD",
    "MrDMDConfig",
    "MrDMDSpectrum",
    "MrDMDTree",
    "ZScoreCategory",
    "ZScoreResult",
    "compute_dmd",
    "compute_mrdmd",
    "__version__",
]

"""Data structures for the multiresolution DMD mode tree.

The mrDMD recursion produces a binary tree of time windows: level 1 covers
the full timeline, level 2 its two halves, level 3 the four quarters, and
so on (Fig. 1(a) of the paper).  Each node stores the *slow* DMD modes
extracted at that window together with everything needed to reconstruct
their contribution (eigenvalues, amplitudes, the local sampling interval
after the 4x-Nyquist subsampling, and the window's absolute position).

The tree object offers the traversals the rest of the pipeline needs:

* per-level access (used by the incremental update's level re-indexing),
* global mode tables (used by the mrDMD spectrum, Figs. 5/7),
* window-resolved reconstruction (Eq. 7/8, Fig. 3),
* compact serialisation of what is, for week-scale telemetry, a
  megabyte-scale summary of terabyte-scale raw data.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

import numpy as np

__all__ = ["MrDMDNode", "MrDMDTree", "ModeTable"]


@dataclass
class MrDMDNode:
    """One window of the multiresolution decomposition.

    Attributes
    ----------
    level:
        1-based resolution level (1 = whole timeline / slowest dynamics).
    bin_index:
        Index of the window within its level (0-based, left to right).
    start:
        Absolute index (in snapshots) of the first snapshot of the window.
    n_snapshots:
        Window length in snapshots (before subsampling).
    dt:
        Raw sampling interval of the underlying data in seconds.
    step:
        Subsampling stride applied before the local DMD (>= 1); the local
        effective interval is ``dt * step``.
    rho:
        Slow/fast cutoff frequency (Hz) used at this node.
    modes:
        Complex ``(P, m)`` array of retained slow modes (possibly empty).
    eigenvalues:
        Discrete-time eigenvalues of the retained modes (w.r.t.
        ``dt * step``).
    amplitudes:
        Mode amplitudes fitted at the subsampled resolution.
    svd_rank:
        Rank retained by the local SVD truncation before slow-mode
        selection (diagnostic).
    contribution_start / contribution_end:
        Optional absolute snapshot indices bounding the part of the
        window this node contributes to reconstructions.  The incremental
        update (Fig. 1(c)) re-indexes the previous level-1 node to level 2
        while the *new* level-1 node spans the whole, longer timeline; to
        keep the summed reconstruction consistent, the new level-1 node
        only contributes over the freshly appended chunk.  ``None`` means
        "the whole window" (the batch-mrDMD default).
    """

    level: int
    bin_index: int
    start: int
    n_snapshots: int
    dt: float
    step: int
    rho: float
    modes: np.ndarray
    eigenvalues: np.ndarray
    amplitudes: np.ndarray
    svd_rank: int = 0
    contribution_start: int | None = None
    contribution_end: int | None = None

    def __post_init__(self) -> None:
        # Mode data is complex by contract.  np.linalg.eig returns *real*
        # arrays when every eigenvalue happens to be real, which would
        # otherwise make node dtypes — and therefore checkpoint payloads
        # and bit-for-bit state comparisons — depend on the data.
        self.modes = np.asarray(self.modes, dtype=complex)
        self.eigenvalues = np.asarray(self.eigenvalues, dtype=complex)
        self.amplitudes = np.asarray(self.amplitudes, dtype=complex)

    # ------------------------------------------------------------------ #
    @property
    def n_modes(self) -> int:
        """Number of slow modes kept at this node."""
        return int(self.modes.shape[1])

    @property
    def n_features(self) -> int:
        """State dimension ``P``."""
        return int(self.modes.shape[0])

    @property
    def end(self) -> int:
        """Absolute index one past the last snapshot of the window."""
        return self.start + self.n_snapshots

    @property
    def local_dt(self) -> float:
        """Effective sampling interval after subsampling (seconds)."""
        return self.dt * self.step

    @property
    def omega(self) -> np.ndarray:
        """Continuous-time eigenvalues ``psi_i = log(lambda_i) / (dt * step)``."""
        if self.eigenvalues.size == 0:
            return np.zeros(0, dtype=complex)
        with np.errstate(divide="ignore", invalid="ignore"):
            return np.log(self.eigenvalues.astype(complex)) / self.local_dt

    @property
    def frequencies(self) -> np.ndarray:
        """Mode oscillation frequencies in Hz (Eq. 9)."""
        return np.abs(self.omega.imag) / (2.0 * np.pi)

    @property
    def growth_rates(self) -> np.ndarray:
        """Real part of the continuous-time eigenvalues (1/s)."""
        return self.omega.real

    @property
    def power(self) -> np.ndarray:
        """mrDMD mode power ``||phi_i||_2^2`` (Eq. 10)."""
        if self.modes.size == 0:
            return np.zeros(0, dtype=float)
        return np.sum(np.abs(self.modes) ** 2, axis=0)

    @property
    def time_span(self) -> tuple[float, float]:
        """Absolute (start, end) times of the window in seconds."""
        return (self.start * self.dt, self.end * self.dt)

    # ------------------------------------------------------------------ #
    def local_reconstruction(self, n_timesteps: int | None = None) -> np.ndarray:
        """Contribution of this node's slow modes over its own window.

        Returns a real ``(P, n_timesteps)`` array evaluated at the *raw*
        sampling interval ``dt`` (time measured from the start of the
        window), i.e. the quantity subtracted from the data before the
        recursion descends (Eq. 8, first term).
        """
        if n_timesteps is None:
            n_timesteps = self.n_snapshots
        if self.n_modes == 0 or n_timesteps <= 0:
            return np.zeros((self.n_features, max(n_timesteps, 0)))
        t = np.arange(n_timesteps) * self.dt
        dynamics = self.amplitudes[:, None] * np.exp(np.outer(self.omega, t))
        return np.real(self.modes @ dynamics)

    def local_reconstruction_range(self, offset: int, length: int) -> np.ndarray:
        """Slow-mode contribution over ``[offset, offset + length)`` snapshots.

        ``offset`` is measured from the start of this node's window (i.e.
        local, not absolute).  Used when only part of the window should
        contribute to a summed reconstruction (see ``contribution_start``).
        """
        if length <= 0:
            return np.zeros((self.n_features, 0))
        if self.n_modes == 0:
            return np.zeros((self.n_features, length))
        t = (np.arange(length) + offset) * self.dt
        dynamics = self.amplitudes[:, None] * np.exp(np.outer(self.omega, t))
        return np.real(self.modes @ dynamics)

    @property
    def contribution_window(self) -> tuple[int, int]:
        """Absolute ``[start, end)`` range this node contributes to sums."""
        lo = self.start if self.contribution_start is None else max(self.start, self.contribution_start)
        hi = self.end if self.contribution_end is None else min(self.end, self.contribution_end)
        return (lo, max(lo, hi))

    def copy_with(self, **overrides) -> "MrDMDNode":
        """Return a shallow copy with selected fields replaced."""
        fields = dict(
            level=self.level,
            bin_index=self.bin_index,
            start=self.start,
            n_snapshots=self.n_snapshots,
            dt=self.dt,
            step=self.step,
            rho=self.rho,
            modes=self.modes,
            eigenvalues=self.eigenvalues,
            amplitudes=self.amplitudes,
            svd_rank=self.svd_rank,
            contribution_start=self.contribution_start,
            contribution_end=self.contribution_end,
        )
        fields.update(overrides)
        return MrDMDNode(**fields)


@dataclass
class ModeTable:
    """Flat table of every mode in a tree (one row per mode).

    Produced by :meth:`MrDMDTree.mode_table` and consumed by the spectrum
    and baseline/z-score analyses.  All arrays share the first dimension.
    """

    frequencies: np.ndarray
    power: np.ndarray
    growth_rates: np.ndarray
    amplitudes: np.ndarray
    levels: np.ndarray
    bin_indices: np.ndarray
    node_ids: np.ndarray
    mode_vectors: np.ndarray  # (n_modes_total, P) complex

    def __len__(self) -> int:
        return int(self.frequencies.size)

    def filter(self, mask: np.ndarray) -> "ModeTable":
        """Return a new table restricted to rows where ``mask`` is true."""
        mask = np.asarray(mask, dtype=bool)
        return ModeTable(
            frequencies=self.frequencies[mask],
            power=self.power[mask],
            growth_rates=self.growth_rates[mask],
            amplitudes=self.amplitudes[mask],
            levels=self.levels[mask],
            bin_indices=self.bin_indices[mask],
            node_ids=self.node_ids[mask],
            mode_vectors=self.mode_vectors[mask, :],
        )


class MrDMDTree:
    """Container of :class:`MrDMDNode` objects covering one timeline.

    Nodes are stored in insertion order; the tree is *not* required to be a
    perfect binary tree — the incremental update deliberately produces an
    uneven split at the append point (Fig. 1(c)).
    """

    def __init__(self, dt: float, n_features: int) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt!r}")
        if n_features <= 0:
            raise ValueError(f"n_features must be positive, got {n_features!r}")
        self.dt = float(dt)
        self.n_features = int(n_features)
        # Narrowest node width this tree accepts: the row count before any
        # add_features topology event.  Trees that never grew keep the
        # strict width check (a too-narrow node is a bug, not a
        # pre-topology-event survivor).
        self._min_node_features = int(n_features)
        self._nodes: list[MrDMDNode] = []
        self._revision = 0
        # mode_table() output memoised per revision: spectrum/threshold
        # queries between structural edits cost a tuple compare instead of
        # re-concatenating every node's mode arrays.
        self._mode_table_cache: ModeTable | None = None
        self._mode_table_revision: int = -1

    # ------------------------------------------------------------------ #
    # Pickling: the memoised mode table is derived state — drop it so
    # process-pool payloads and checkpoints stay compact.
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_mode_table_cache"] = None
        state["_mode_table_revision"] = -1
        return state

    @property
    def revision(self) -> int:
        """Counter bumped on every structural edit (add/shift/replace).

        Derived products (e.g. the pipeline's power-quantile threshold)
        key their caches on this value so they recompute only when the
        tree actually changed.
        """
        return self._revision

    # ------------------------------------------------------------------ #
    # Collection protocol
    # ------------------------------------------------------------------ #
    def add(self, node: MrDMDNode) -> None:
        """Append a node (validating its feature dimension).

        Nodes *narrower* than the tree are legal only down to the width
        the tree had before its first :meth:`add_features` topology event:
        such nodes predate the event and implicitly contribute zero to the
        rows that did not exist when their window was decomposed.  On a
        tree that never grew the check stays exact.
        """
        minimum = getattr(self, "_min_node_features", self.n_features)
        if not minimum <= node.n_features <= self.n_features:
            raise ValueError(
                f"node has {node.n_features} features, tree expects "
                f"{self.n_features}"
                + (
                    f" (or down to {minimum} for pre-topology-event nodes)"
                    if minimum < self.n_features
                    else ""
                )
            )
        self._nodes.append(node)
        self._revision += 1

    def __len__(self) -> int:
        return len(self._nodes)

    def __iter__(self) -> Iterator[MrDMDNode]:
        return iter(self._nodes)

    def __getitem__(self, idx: int) -> MrDMDNode:
        return self._nodes[idx]

    @property
    def nodes(self) -> list[MrDMDNode]:
        """All nodes in insertion order."""
        return list(self._nodes)

    @property
    def n_levels(self) -> int:
        """Deepest level present (0 for an empty tree)."""
        return max((n.level for n in self._nodes), default=0)

    @property
    def n_snapshots(self) -> int:
        """Total timeline length covered (max node end index)."""
        return max((n.end for n in self._nodes), default=0)

    @property
    def total_modes(self) -> int:
        """Total number of slow modes stored in the tree."""
        return int(sum(n.n_modes for n in self._nodes))

    def nodes_at_level(self, level: int) -> list[MrDMDNode]:
        """Nodes at the given 1-based level, ordered by window start."""
        return sorted(
            (n for n in self._nodes if n.level == level), key=lambda n: n.start
        )

    def levels(self) -> list[int]:
        """Sorted list of distinct levels present."""
        return sorted({n.level for n in self._nodes})

    # ------------------------------------------------------------------ #
    # Structural edits used by the incremental update
    # ------------------------------------------------------------------ #
    def shift_levels(self, offset: int = 1) -> None:
        """Increment every node's level by ``offset`` in place.

        This is the level re-indexing step of Fig. 1(c): after an
        incremental append, the previous level-1 node describes only the
        left part of the new, longer timeline and therefore becomes a
        level-2 node, and so on down the tree.
        """
        if offset < 0:
            raise ValueError("offset must be non-negative")
        for node in self._nodes:
            node.level += offset
        self._revision += 1

    def extend(self, other: "MrDMDTree") -> None:
        """Append every node of ``other`` (same dt / feature count required)."""
        if not np.isclose(other.dt, self.dt):
            raise ValueError(f"dt mismatch: {other.dt} vs {self.dt}")
        if other.n_features != self.n_features:
            raise ValueError("feature-count mismatch between trees")
        for node in other:
            self.add(node)

    def replace_level(self, level: int, new_nodes: list[MrDMDNode]) -> None:
        """Drop all nodes at ``level`` and insert ``new_nodes`` instead."""
        self._nodes = [n for n in self._nodes if n.level != level]
        self._revision += 1
        for node in new_nodes:
            self.add(node)

    def add_features(self, n_new: int) -> None:
        """Widen the row space by ``n_new`` features (elastic topology).

        Existing nodes are *not* touched: they keep their birth-time
        width, and every consumer (:meth:`reconstruct`,
        :meth:`mode_table`) zero-extends them on the fly — sensors that
        join mid-stream contribute nothing to windows decomposed before
        they existed.  That makes the topology event O(1) in the tree
        size, so onboarding cost stays independent of how long the stream
        has been running (the node count grows with the timeline).  Bumps
        the revision so every derived cache (mode tables, reconstruction
        windows, baselines keyed on the revision) invalidates.
        """
        if n_new < 0:
            raise ValueError(f"n_new must be non-negative, got {n_new!r}")
        if n_new == 0:
            return
        self.n_features += n_new
        self._revision += 1

    # ------------------------------------------------------------------ #
    # Analysis products
    # ------------------------------------------------------------------ #
    def mode_table(self) -> ModeTable:
        """Flatten every node's modes into a single :class:`ModeTable`.

        The table is cached per tree :attr:`revision`: between structural
        edits, every spectrum/threshold query shares one flattened table
        instead of re-concatenating all nodes per call.  Callers must
        treat the returned table (and tables derived from it via
        ``filter``) as read-only.
        """
        if (
            self._mode_table_cache is not None
            and self._mode_table_revision == self._revision
        ):
            return self._mode_table_cache
        table = self._build_mode_table()
        self._mode_table_cache = table
        self._mode_table_revision = self._revision
        return table

    def _build_mode_table(self) -> ModeTable:
        freqs, power, growth, amps = [], [], [], []
        levels, bins, node_ids, vectors = [], [], [], []
        for node_id, node in enumerate(self._nodes):
            m = node.n_modes
            if m == 0:
                continue
            freqs.append(node.frequencies)
            power.append(node.power)
            growth.append(node.growth_rates)
            amps.append(np.abs(node.amplitudes))
            levels.append(np.full(m, node.level, dtype=int))
            bins.append(np.full(m, node.bin_index, dtype=int))
            node_ids.append(np.full(m, node_id, dtype=int))
            if node.n_features < self.n_features:
                # Pre-topology-event node: zero-extend to the grown width.
                padded = np.zeros((m, self.n_features), dtype=complex)
                padded[:, : node.n_features] = node.modes.T
                vectors.append(padded)
            else:
                vectors.append(node.modes.T)
        if not freqs:
            empty_f = np.zeros(0, dtype=float)
            empty_i = np.zeros(0, dtype=int)
            return ModeTable(
                frequencies=empty_f,
                power=empty_f.copy(),
                growth_rates=empty_f.copy(),
                amplitudes=empty_f.copy(),
                levels=empty_i,
                bin_indices=empty_i.copy(),
                node_ids=empty_i.copy(),
                mode_vectors=np.zeros((0, self.n_features), dtype=complex),
            )
        return ModeTable(
            frequencies=np.concatenate(freqs),
            power=np.concatenate(power),
            growth_rates=np.concatenate(growth),
            amplitudes=np.concatenate(amps),
            levels=np.concatenate(levels),
            bin_indices=np.concatenate(bins),
            node_ids=np.concatenate(node_ids),
            mode_vectors=np.vstack(vectors),
        )

    def reconstruct(
        self,
        n_snapshots: int | None = None,
        *,
        time_range: tuple[int, int] | None = None,
        levels: list[int] | None = None,
        frequency_range: tuple[float, float] | None = None,
        min_power: float = 0.0,
    ) -> np.ndarray:
        """Sum the slow-mode contributions of (a subset of) nodes (Eq. 7).

        Parameters
        ----------
        n_snapshots:
            Length of the output timeline; defaults to the tree's span.
        time_range:
            Optional absolute ``(start, stop)`` snapshot window.  Only
            modes overlapping the window are expanded and the returned
            array has ``stop - start`` columns (after clamping to
            ``[0, n_snapshots)``) — column ``j`` equals column
            ``start + j`` of the full reconstruction.  This is what keeps
            recent-window queries (z-scores over the last chunk, rack
            views) from paying O(full timeline) per call.
        levels:
            Restrict the sum to these levels (``None`` = all levels).
        frequency_range:
            When given, only modes whose frequency (Hz) lies in
            ``[low, high]`` contribute — this is the "frequency isolation"
            used in the case studies (0-60 Hz in case study 1).
        min_power:
            Drop modes with power below this value (high-power filtering
            from the mrDMD spectrum).
        """
        total = self.n_snapshots if n_snapshots is None else int(n_snapshots)
        if time_range is None:
            window_lo, window_hi = 0, total
        else:
            start, stop = time_range
            if stop < start:
                raise ValueError(f"time_range must be (start, stop), got {time_range!r}")
            window_lo = min(max(int(start), 0), total)
            window_hi = min(max(int(stop), 0), total)
        out = np.zeros((self.n_features, window_hi - window_lo), dtype=float)
        level_set = set(levels) if levels is not None else None
        for node in self._nodes:
            if level_set is not None and node.level not in level_set:
                continue
            lo, hi = node.contribution_window
            lo = max(lo, window_lo)
            hi = min(hi, window_hi)
            if hi <= lo:
                continue
            use = node
            if frequency_range is not None or min_power > 0.0:
                mask = np.ones(node.n_modes, dtype=bool)
                if frequency_range is not None:
                    f_lo, f_hi = frequency_range
                    f = node.frequencies
                    mask &= (f >= f_lo) & (f <= f_hi)
                if min_power > 0.0:
                    mask &= node.power >= min_power
                if not np.any(mask):
                    continue
                use = node.copy_with(
                    modes=node.modes[:, mask],
                    eigenvalues=node.eigenvalues[mask],
                    amplitudes=node.amplitudes[mask],
                )
            offset = lo - node.start
            # Nodes predating a topology event are narrower than the tree:
            # their contribution lands in the leading rows (row order is
            # append-only) and the newer rows stay zero over their window.
            out[: use.n_features, lo - window_lo : hi - window_lo] += (
                use.local_reconstruction_range(offset, hi - lo)
            )
        return out

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise to plain Python/NumPy containers (for npz/JSON export)."""
        return {
            "dt": self.dt,
            "n_features": self.n_features,
            "nodes": [
                {
                    "level": n.level,
                    "bin_index": n.bin_index,
                    "start": n.start,
                    "n_snapshots": n.n_snapshots,
                    "dt": n.dt,
                    "step": n.step,
                    "rho": n.rho,
                    "modes": n.modes,
                    "eigenvalues": n.eigenvalues,
                    "amplitudes": n.amplitudes,
                    "svd_rank": n.svd_rank,
                    "contribution_start": n.contribution_start,
                    "contribution_end": n.contribution_end,
                }
                for n in self._nodes
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MrDMDTree":
        """Inverse of :meth:`to_dict`."""
        tree = cls(dt=float(payload["dt"]), n_features=int(payload["n_features"]))
        # A serialised elastic tree may hold nodes narrower than its
        # current width (they predate growth events); accept the narrowest
        # stored width as the floor while rebuilding.
        widths = [np.asarray(nd["modes"]).shape[0] for nd in payload["nodes"]]
        if widths:
            tree._min_node_features = min(widths)
        for nd in payload["nodes"]:
            tree.add(
                MrDMDNode(
                    level=int(nd["level"]),
                    bin_index=int(nd["bin_index"]),
                    start=int(nd["start"]),
                    n_snapshots=int(nd["n_snapshots"]),
                    dt=float(nd["dt"]),
                    step=int(nd["step"]),
                    rho=float(nd["rho"]),
                    modes=np.asarray(nd["modes"], dtype=complex),
                    eigenvalues=np.asarray(nd["eigenvalues"], dtype=complex),
                    amplitudes=np.asarray(nd["amplitudes"], dtype=complex),
                    svd_rank=int(nd.get("svd_rank", 0)),
                    contribution_start=nd.get("contribution_start"),
                    contribution_end=nd.get("contribution_end"),
                )
            )
        return tree

    def summary(self) -> str:
        """Human-readable multi-line description (levels, windows, modes)."""
        lines = [
            f"MrDMDTree: {len(self)} nodes, {self.n_levels} levels, "
            f"{self.total_modes} modes, {self.n_snapshots} snapshots @ dt={self.dt}s"
        ]
        for level in self.levels():
            nodes = self.nodes_at_level(level)
            modes = sum(n.n_modes for n in nodes)
            lines.append(f"  level {level}: {len(nodes)} windows, {modes} slow modes")
        return "\n".join(lines)

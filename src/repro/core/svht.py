"""Optimal singular value hard thresholding (SVHT).

Implements the Gavish--Donoho optimal hard threshold for singular values
("The optimal hard threshold for singular values is 4/sqrt(3)", IEEE
Trans. Inf. Theory 2014), which the paper uses to pick the reduced SVD rank
``r`` of the snapshot matrix before projecting the DMD operator
(Sec. III-A, step 1).

Two regimes are provided:

* **known noise level** ``sigma``: threshold ``tau = lambda(beta) * sqrt(n) * sigma``
  where ``beta = m/n`` (aspect ratio, ``m <= n``) and ``lambda`` is the
  closed-form coefficient from the paper;
* **unknown noise level** (the common case for measured HPC telemetry):
  ``tau = omega(beta) * median(singular values)`` where ``omega`` is
  approximated either by the published rational approximation or by
  numerically integrating the Marchenko--Pastur distribution.

All routines are pure NumPy, operate on 1-D arrays of singular values and
return integer ranks / float thresholds, so they can be reused by the batch
SVD path (:mod:`repro.core.dmd`) and the incremental SVD path
(:mod:`repro.core.isvd`) alike.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = [
    "lambda_star",
    "omega_approx",
    "median_marchenko_pastur",
    "svht_threshold",
    "svht_rank",
    "truncate_singular_triplets",
    "SVHTResult",
]


def lambda_star(beta: float) -> float:
    """Return the optimal hard-threshold coefficient ``lambda*(beta)``.

    ``beta`` is the matrix aspect ratio ``m / n`` with ``0 < beta <= 1``.
    For square matrices (``beta == 1``) this equals ``4 / sqrt(3)``, the
    value in the title of Gavish & Donoho (2014).

    Parameters
    ----------
    beta:
        Aspect ratio of the data matrix, ``min(shape) / max(shape)``.

    Returns
    -------
    float
        The coefficient multiplying ``sqrt(n) * sigma`` when the noise
        level ``sigma`` is known.
    """
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta!r}")
    return math.sqrt(
        2.0 * (beta + 1.0)
        + 8.0 * beta / ((beta + 1.0) + math.sqrt(beta**2 + 14.0 * beta + 1.0))
    )


def _marchenko_pastur_pdf(x: np.ndarray, beta: float) -> np.ndarray:
    """Density of the Marchenko--Pastur distribution with ratio ``beta``."""
    lower = (1.0 - math.sqrt(beta)) ** 2
    upper = (1.0 + math.sqrt(beta)) ** 2
    pdf = np.zeros_like(x, dtype=float)
    inside = (x > lower) & (x < upper)
    xi = x[inside]
    pdf[inside] = np.sqrt((upper - xi) * (xi - lower)) / (2.0 * math.pi * beta * xi)
    return pdf


def median_marchenko_pastur(beta: float, *, grid: int = 200_000) -> float:
    """Numerically compute the median of the Marchenko--Pastur law.

    The unknown-noise threshold is ``omega(beta) = lambda*(beta) /
    sqrt(mu_beta)`` where ``mu_beta`` is this median.  A dense trapezoidal
    CDF inversion is accurate to ~1e-5, far below what rank selection needs.
    """
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta!r}")
    lower = (1.0 - math.sqrt(beta)) ** 2
    upper = (1.0 + math.sqrt(beta)) ** 2
    x = np.linspace(lower, upper, grid)
    pdf = _marchenko_pastur_pdf(x, beta)
    cdf = np.cumsum((pdf[1:] + pdf[:-1]) * 0.5 * np.diff(x))
    cdf = np.concatenate([[0.0], cdf])
    cdf /= cdf[-1]
    idx = int(np.searchsorted(cdf, 0.5))
    idx = min(max(idx, 1), grid - 1)
    # Linear interpolation between the bracketing grid points.
    c0, c1 = cdf[idx - 1], cdf[idx]
    if c1 == c0:
        return float(x[idx])
    frac = (0.5 - c0) / (c1 - c0)
    return float(x[idx - 1] + frac * (x[idx] - x[idx - 1]))


def omega_approx(beta: float) -> float:
    """Rational approximation of ``omega(beta)`` from Gavish & Donoho.

    ``omega(beta) ~= 0.56 beta^3 - 0.95 beta^2 + 1.82 beta + 1.43``.
    Accurate to within a few percent over ``beta`` in (0, 1]; used as the
    fast default.  :func:`svht_threshold` can use the exact
    Marchenko--Pastur median instead when ``exact=True``.
    """
    if not 0.0 < beta <= 1.0:
        raise ValueError(f"beta must be in (0, 1], got {beta!r}")
    return 0.56 * beta**3 - 0.95 * beta**2 + 1.82 * beta + 1.43


@dataclass(frozen=True)
class SVHTResult:
    """Outcome of an SVHT rank decision.

    Attributes
    ----------
    rank:
        Number of singular values retained (at least 1 when requested).
    threshold:
        The cutoff applied to the singular values.
    beta:
        Aspect ratio used.
    noise_sigma:
        The noise level assumed (``None`` when unknown-noise rule used).
    """

    rank: int
    threshold: float
    beta: float
    noise_sigma: float | None


def svht_threshold(
    singular_values: np.ndarray,
    shape: tuple[int, int],
    *,
    sigma: float | None = None,
    exact: bool = False,
) -> float:
    """Return the hard threshold ``tau`` for the given singular values.

    Parameters
    ----------
    singular_values:
        Non-increasing 1-D array of singular values of the data matrix.
    shape:
        Shape ``(m, n)`` of the data matrix the values came from.
    sigma:
        Known per-entry noise standard deviation.  When ``None`` the
        median-based unknown-noise rule is applied.
    exact:
        When ``True`` use the numerically-integrated Marchenko--Pastur
        median rather than the rational approximation of ``omega``.
    """
    s = np.asarray(singular_values, dtype=float)
    if s.ndim != 1:
        raise ValueError("singular_values must be one-dimensional")
    if len(shape) != 2 or shape[0] <= 0 or shape[1] <= 0:
        raise ValueError(f"shape must be a positive 2-tuple, got {shape!r}")
    m, n = shape
    beta = min(m, n) / max(m, n)
    if sigma is not None:
        if sigma < 0:
            raise ValueError("sigma must be non-negative")
        return lambda_star(beta) * math.sqrt(max(m, n)) * sigma
    if s.size == 0:
        return 0.0
    if exact:
        coeff = lambda_star(beta) / math.sqrt(median_marchenko_pastur(beta))
    else:
        coeff = omega_approx(beta)
    return float(coeff * np.median(s))


def svht_rank(
    singular_values: np.ndarray,
    shape: tuple[int, int],
    *,
    sigma: float | None = None,
    exact: bool = False,
    min_rank: int = 1,
    max_rank: int | None = None,
) -> SVHTResult:
    """Select the SVD truncation rank by optimal hard thresholding.

    The returned rank is clipped to ``[min_rank, max_rank]`` (and to the
    number of available singular values).  ``min_rank=1`` guarantees DMD
    always has at least one mode to work with, matching the reference
    mrDMD implementations the paper builds on.
    """
    s = np.asarray(singular_values, dtype=float)
    tau = svht_threshold(s, shape, sigma=sigma, exact=exact)
    rank = int(np.count_nonzero(s > tau))
    rank = max(rank, int(min_rank))
    rank = min(rank, s.size) if s.size else 0
    if max_rank is not None:
        rank = min(rank, int(max_rank))
    beta = min(shape) / max(shape)
    return SVHTResult(rank=rank, threshold=float(tau), beta=float(beta), noise_sigma=sigma)


def truncate_singular_triplets(
    u: np.ndarray,
    s: np.ndarray,
    vh: np.ndarray,
    shape: tuple[int, int],
    *,
    sigma: float | None = None,
    use_svht: bool = True,
    max_rank: int | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, SVHTResult]:
    """Truncate an SVD ``(U, s, Vh)`` with the SVHT rule.

    Returns views (not copies) of the leading ``r`` components together
    with the :class:`SVHTResult` describing the decision.  When
    ``use_svht`` is ``False`` only ``max_rank`` (or full rank) applies.
    """
    s = np.asarray(s, dtype=float)
    if use_svht:
        decision = svht_rank(s, shape, sigma=sigma, max_rank=max_rank)
    else:
        rank = s.size if max_rank is None else min(int(max_rank), s.size)
        decision = SVHTResult(rank=max(rank, 1) if s.size else 0,
                              threshold=0.0,
                              beta=min(shape) / max(shape),
                              noise_sigma=sigma)
    r = decision.rank
    return u[:, :r], s[:r], vh[:r, :], decision

"""Exact (SVD-projected) Dynamic Mode Decomposition.

This module implements the DMD variant described in Sec. III-A of the paper
(Eqs. 1-6), following Tu et al. (2014) / Brunton & Kutz (2019):

1. form the shifted snapshot matrices ``X = [x_1 ... x_{T-1}]`` and
   ``Y = [x_2 ... x_T]``;
2. compute a rank-``r`` SVD ``X = U S V'`` with ``r`` chosen by the optimal
   singular value hard threshold (:mod:`repro.core.svht`);
3. project the best-fit linear operator ``A = Y X^+`` onto the POD modes:
   ``Atilde = U' Y V S^{-1}``;
4. eigendecompose ``Atilde W = W Lambda``;
5. lift the eigenvectors back to the full space: ``Phi = Y V S^{-1} W``
   (exact DMD modes);
6. obtain continuous-time frequencies ``psi_i = log(lambda_i) / dt`` and
   amplitudes ``a`` by least squares against the first snapshot.

The decomposition object supports forecasting/reconstruction
(:meth:`DMDResult.reconstruct`), per-mode frequency and power queries used
by the mrDMD spectrum, and "slow mode" selection used by the
multiresolution recursion.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .svht import SVHTResult, svht_rank, truncate_singular_triplets

__all__ = ["DMDResult", "compute_dmd", "compute_dmd_projected", "slow_mode_mask"]


@dataclass
class DMDResult:
    """Container for one DMD decomposition.

    Attributes
    ----------
    modes:
        Complex array of shape ``(P, r)``; column ``i`` is the exact DMD
        mode ``phi_i``.
    eigenvalues:
        Discrete-time eigenvalues ``lambda_i`` (shape ``(r,)``).
    amplitudes:
        Mode amplitudes ``a_i`` fitted against the first snapshot.
    dt:
        Sampling interval of the snapshots that produced the
        decomposition (seconds).
    n_snapshots:
        Number of snapshots ``T`` the decomposition covers.
    svd_rank:
        Rank retained after SVHT truncation.
    svht:
        Full record of the SVHT decision (threshold, aspect ratio, ...).
    """

    modes: np.ndarray
    eigenvalues: np.ndarray
    amplitudes: np.ndarray
    dt: float
    n_snapshots: int
    svd_rank: int
    svht: SVHTResult | None = None
    _omega_cache: np.ndarray | None = field(default=None, repr=False)

    # ------------------------------------------------------------------ #
    # Derived spectral quantities
    # ------------------------------------------------------------------ #
    @property
    def n_modes(self) -> int:
        """Number of retained DMD modes."""
        return int(self.modes.shape[1])

    @property
    def n_features(self) -> int:
        """State dimension ``P`` (number of sensors)."""
        return int(self.modes.shape[0])

    @property
    def omega(self) -> np.ndarray:
        """Continuous-time eigenvalues ``psi_i = log(lambda_i) / dt``."""
        if self._omega_cache is None or self._omega_cache.shape != self.eigenvalues.shape:
            with np.errstate(divide="ignore", invalid="ignore"):
                self._omega_cache = np.log(self.eigenvalues.astype(complex)) / self.dt
        return self._omega_cache

    @property
    def frequencies(self) -> np.ndarray:
        """Oscillation frequency of each mode in Hz (Eq. 9): ``|Im psi_i| / 2 pi``."""
        return np.abs(self.omega.imag) / (2.0 * np.pi)

    @property
    def growth_rates(self) -> np.ndarray:
        """Real part of ``psi_i``: positive = growing, negative = decaying."""
        return self.omega.real

    @property
    def power(self) -> np.ndarray:
        """mrDMD mode power (Eq. 10): squared 2-norm of each mode column."""
        return np.sum(np.abs(self.modes) ** 2, axis=0)

    @property
    def amplitude_magnitudes(self) -> np.ndarray:
        """Magnitude of the fitted mode amplitudes ``|a_i|``."""
        return np.abs(self.amplitudes)

    # ------------------------------------------------------------------ #
    # Time dynamics / reconstruction
    # ------------------------------------------------------------------ #
    def time_dynamics(self, timesteps: np.ndarray | int) -> np.ndarray:
        """Return the ``(r, len(t))`` matrix ``diag(a) exp(Psi t)``.

        ``timesteps`` may be an integer count (interpreted as
        ``0, dt, 2 dt, ...``) or an explicit array of times in seconds
        relative to the start of the decomposition window.
        """
        if np.isscalar(timesteps):
            t = np.arange(int(timesteps)) * self.dt
        else:
            t = np.asarray(timesteps, dtype=float)
        # (r, T) dynamics; outer product in the exponent is vectorized.
        dynamics = np.exp(np.outer(self.omega, t))
        return self.amplitudes[:, None] * dynamics

    def reconstruct(self, timesteps: np.ndarray | int | None = None) -> np.ndarray:
        """Reconstruct (or forecast) the data matrix from the modes (Eq. 6).

        With no argument, reconstructs the original ``T`` snapshots.
        The result is real-valued (imaginary residue is discarded; for
        real input data it is numerically negligible because complex
        modes come in conjugate pairs).
        """
        if timesteps is None:
            timesteps = self.n_snapshots
        dynamics = self.time_dynamics(timesteps)
        return np.real(self.modes @ dynamics)

    def mode_subset(self, mask: np.ndarray) -> "DMDResult":
        """Return a new :class:`DMDResult` restricted to ``mask`` modes."""
        mask = np.asarray(mask)
        if mask.dtype != bool:
            idx = np.asarray(mask, dtype=int)
        else:
            idx = np.flatnonzero(mask)
        return DMDResult(
            modes=self.modes[:, idx],
            eigenvalues=self.eigenvalues[idx],
            amplitudes=self.amplitudes[idx],
            dt=self.dt,
            n_snapshots=self.n_snapshots,
            svd_rank=self.svd_rank,
            svht=self.svht,
        )


def _fit_window_amplitudes(
    modes: np.ndarray,
    eigenvalues: np.ndarray,
    data: np.ndarray,
    powers: np.ndarray | None = None,
) -> np.ndarray:
    """Least-squares mode amplitudes against every snapshot of the window.

    Solves ``min_a || sum_i a_i phi_i lambda_i^t - x_t ||`` jointly over all
    ``t`` by flattening the (P, T) problem into a single tall least-squares
    system with ``r`` unknowns.  ``powers`` optionally gives the snapshot
    index of each data column (default ``0 .. T-1``); the streaming path
    uses this to fit against a trailing slice of a longer window without
    touching the rest of it.
    """
    n_snapshots = data.shape[1]
    r = modes.shape[1]
    # Vandermonde of eigenvalues: (r, T)
    if powers is None:
        powers = np.arange(n_snapshots)
    vander = eigenvalues[:, None] ** powers[None, :]
    # Design matrix: column i is vec(phi_i outer lambda_i^t); build (P, T, r)
    # then flatten the first two axes to obtain the (P*T, r) system.
    design = np.transpose(modes[:, :, None] * vander[None, :, :], (0, 2, 1)).reshape(
        -1, r
    )
    target = np.asarray(data, dtype=complex).reshape(-1)
    amplitudes, *_ = np.linalg.lstsq(design, target, rcond=None)
    return amplitudes


def _eig_from_projection(
    u_r: np.ndarray, s_r: np.ndarray, yv_r: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Eigenvalues and exact DMD modes from the projected cross product.

    ``yv_r = Y V_r`` is the only quantity the operator projection needs
    from the right factor: ``Atilde = U^H (Y V S^{-1})`` and
    ``Phi = (Y V S^{-1}) W``.  Shared by :func:`compute_dmd` (which forms
    ``Y V`` densely) and :func:`compute_dmd_projected` (which receives it
    incrementally maintained), so both paths run the identical
    instruction sequence from here on.
    """
    yvs = yv_r / s_r[None, :]                 # (P, r), scaled columns
    atilde = u_r.conj().T @ yvs               # (r, r)
    eigenvalues, w = np.linalg.eig(atilde)
    # Exact DMD modes: Phi = Y V S^{-1} W
    modes = yvs @ w                           # (P, r)
    return eigenvalues, modes


def _empty_result(n_features: int, dt: float, n_snapshots: int) -> DMDResult:
    """A zero-mode decomposition (used when the data window is degenerate)."""
    return DMDResult(
        modes=np.zeros((n_features, 0), dtype=complex),
        eigenvalues=np.zeros(0, dtype=complex),
        amplitudes=np.zeros(0, dtype=complex),
        dt=dt,
        n_snapshots=n_snapshots,
        svd_rank=0,
        svht=None,
    )


def compute_dmd(
    data: np.ndarray,
    dt: float = 1.0,
    *,
    svd_rank: int | None = None,
    use_svht: bool = True,
    noise_sigma: float | None = None,
    svd_factors: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
    amplitude_method: str = "first",
) -> DMDResult:
    """Compute the exact DMD of a ``(P, T)`` snapshot matrix.

    Parameters
    ----------
    data:
        Real or complex array with sensors along rows and time along
        columns.  At least two snapshots are required; degenerate inputs
        return an empty (zero-mode) result rather than raising, because
        the mrDMD recursion routinely produces very short leaves.
    dt:
        Sampling interval in seconds.
    svd_rank:
        Optional hard cap on the retained rank (applied after SVHT).
    use_svht:
        Apply the Gavish--Donoho threshold (default).  When ``False`` the
        rank is ``svd_rank`` or full.
    noise_sigma:
        Known noise level forwarded to the SVHT rule.
    svd_factors:
        Optionally, a precomputed (possibly incrementally-updated)
        truncated SVD ``(U, s, Vh)`` of ``X = data[:, :-1]``.  This is the
        hook the incremental mrDMD uses to avoid recomputing the SVD from
        scratch; the factors are still re-truncated with SVHT so both
        paths share the same rank rule.
    amplitude_method:
        How to fit the mode amplitudes ``a_i``: ``"first"`` (classic DMD,
        least squares against the first snapshot only — Eq. 6's
        ``a_i(0)``) or ``"window"`` (least squares against every snapshot
        of the window, markedly more robust when the first snapshot is
        unrepresentative; cost ``O(P T r^2)`` which is negligible on the
        subsampled windows mrDMD feeds in).
    """
    data = np.asarray(data)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (P, T), got shape {data.shape!r}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt!r}")
    n_features, n_snapshots = data.shape
    if n_snapshots < 2 or n_features == 0:
        return _empty_result(n_features, dt, n_snapshots)

    x = data[:, :-1]
    y = data[:, 1:]

    if svd_factors is None:
        u, s, vh = np.linalg.svd(x, full_matrices=False)
    else:
        u, s, vh = svd_factors
        u = np.asarray(u)
        s = np.asarray(s, dtype=float)
        vh = np.asarray(vh)
        if u.shape[0] != n_features or vh.shape[1] != n_snapshots - 1:
            raise ValueError(
                "svd_factors shapes are inconsistent with data: "
                f"U {u.shape}, Vh {vh.shape}, data {data.shape}"
            )

    # Drop numerically-zero singular values before thresholding so that
    # 1 / s never overflows.
    positive = s > max(s[0], 1.0) * np.finfo(float).eps * max(x.shape) if s.size else s > 0
    u, s, vh = u[:, positive], s[positive], vh[positive, :]
    if s.size == 0:
        return _empty_result(n_features, dt, n_snapshots)

    u_r, s_r, vh_r, decision = truncate_singular_triplets(
        u, s, vh, x.shape, sigma=noise_sigma, use_svht=use_svht, max_rank=svd_rank
    )
    r = s_r.size
    if r == 0:
        return _empty_result(n_features, dt, n_snapshots)

    # Atilde = U' Y V S^{-1}  -- work entirely in the r-dimensional space.
    yv = y @ vh_r.conj().T                    # (P, r)
    eigenvalues, modes = _eig_from_projection(u_r, s_r, yv)

    if amplitude_method == "first":
        # Amplitudes from the first snapshot: min ||Phi a - x_1||_2
        x1 = data[:, 0].astype(complex)
        amplitudes, *_ = np.linalg.lstsq(modes, x1, rcond=None)
    elif amplitude_method == "window":
        amplitudes = _fit_window_amplitudes(modes, eigenvalues, data)
    else:
        raise ValueError(
            f"amplitude_method must be 'first' or 'window', got {amplitude_method!r}"
        )

    return DMDResult(
        modes=modes,
        eigenvalues=eigenvalues,
        amplitudes=amplitudes,
        dt=dt,
        n_snapshots=n_snapshots,
        svd_rank=r,
        svht=decision if use_svht else None,
    )


def compute_dmd_projected(
    u: np.ndarray,
    s: np.ndarray,
    yv: np.ndarray,
    *,
    dt: float,
    n_snapshots: int,
    svd_rank: int | None = None,
    use_svht: bool = True,
    noise_sigma: float | None = None,
    amplitude_data: np.ndarray,
    amplitude_powers: np.ndarray | None = None,
) -> DMDResult:
    """Exact DMD from streaming-maintained projected factors — no ``Vh``.

    This is the flat-cost sibling of :func:`compute_dmd` for the
    incremental path: everything the operator projection needs from the
    ``(q, T)`` right factor is the ``(P, q)`` cross product
    ``yv = Y Vh^H`` (``X = data[:, :-1]``, ``Y = data[:, 1:]``), which
    :class:`~repro.core.imrdmd.IncrementalMrDMD` maintains incrementally
    from :attr:`IncrementalSVD.last_update_ops` in ``O(P q (q + c))`` per
    chunk.  Rank selection (zero-singular-value guard + SVHT), operator
    projection, eigendecomposition and mode lifting follow the exact same
    steps as :func:`compute_dmd` (the assembly is shared code); only the
    amplitude fit differs structurally: it is solved over the
    ``amplitude_data`` columns (typically the freshly appended chunk —
    the only range an incremental level-1 node contributes to
    reconstructions), whose absolute snapshot indices are given by
    ``amplitude_powers``.

    Parameters
    ----------
    u, s:
        Current left factors / singular values of ``X`` (from
        :class:`~repro.core.isvd.IncrementalSVD`).
    yv:
        The ``(P, q)`` cross product ``Y @ Vh^H`` for the *full* current
        right factor.
    dt:
        Sampling interval of the (possibly subsampled) snapshots.
    n_snapshots:
        Number of snapshots ``T`` the decomposition covers (``X`` has
        ``T - 1`` columns).
    svd_rank, use_svht, noise_sigma:
        Rank-selection knobs, as in :func:`compute_dmd`.
    amplitude_data:
        ``(P, k)`` columns the mode amplitudes are least-squares fitted
        against (``k >= 1``).
    amplitude_powers:
        Snapshot index of each ``amplitude_data`` column (default
        ``0 .. k-1``).
    """
    u = np.asarray(u)
    s = np.asarray(s, dtype=float)
    yv = np.asarray(yv)
    amplitude_data = np.asarray(amplitude_data)
    n_features = u.shape[0]
    x_shape = (n_features, n_snapshots - 1)
    if n_snapshots < 2 or n_features == 0 or s.size == 0:
        return _empty_result(n_features, dt, n_snapshots)
    if yv.shape != (n_features, s.size):
        raise ValueError(
            f"yv shape {yv.shape} inconsistent with factors "
            f"({n_features}, {s.size})"
        )

    # Same zero-singular-value guard as compute_dmd; dropping row i of Vh
    # drops column i of Y Vh^H.
    positive = s > max(s[0], 1.0) * np.finfo(float).eps * max(x_shape)
    u, s, yv = u[:, positive], s[positive], yv[:, positive]
    if s.size == 0:
        return _empty_result(n_features, dt, n_snapshots)

    if use_svht:
        decision = svht_rank(s, x_shape, sigma=noise_sigma, max_rank=svd_rank)
    else:
        rank = s.size if svd_rank is None else min(int(svd_rank), s.size)
        decision = SVHTResult(
            rank=max(rank, 1) if s.size else 0,
            threshold=0.0,
            beta=min(x_shape) / max(x_shape),
            noise_sigma=noise_sigma,
        )
    r = decision.rank
    if r == 0:
        return _empty_result(n_features, dt, n_snapshots)

    eigenvalues, modes = _eig_from_projection(u[:, :r], s[:r], yv[:, :r])
    amplitudes = _fit_window_amplitudes(
        modes, eigenvalues, amplitude_data, powers=amplitude_powers
    )

    return DMDResult(
        modes=modes,
        eigenvalues=eigenvalues,
        amplitudes=amplitudes,
        dt=dt,
        n_snapshots=n_snapshots,
        svd_rank=r,
        svht=decision if use_svht else None,
    )


def slow_mode_mask(result: DMDResult, rho: float) -> np.ndarray:
    """Boolean mask of "slow" modes used by the mrDMD recursion.

    A mode is slow when its oscillation rate ``|Im(log lambda)| / (2 pi dt)``
    expressed in *cycles per snapshot window* is at most ``rho`` cycles.
    Following Kutz, Fu & Brunton (2016), ``rho`` is the ``max_cycles``
    parameter divided by the window length in seconds; callers typically
    pass ``max_cycles / (T * dt)`` converted to Hz.  Here ``rho`` is given
    directly in Hz to keep the core numerics unit-explicit.
    """
    if rho < 0:
        raise ValueError(f"rho must be non-negative, got {rho!r}")
    return result.frequencies <= rho

"""Batch multiresolution Dynamic Mode Decomposition (mrDMD).

Implements the recursion of Kutz, Fu & Brunton (2016) as summarised in
Sec. III-A / Fig. 1(a) of the paper:

* level 1 processes the whole timeline and keeps only the *slow* modes —
  those oscillating at most ``max_cycles`` times across the window;
* the slow-mode reconstruction is subtracted from the data;
* the residual timeline is split into two halves and each half is
  processed recursively at the next level (finer temporal resolution,
  hence faster dynamics), until ``max_levels`` is reached or the window
  becomes too short;
* each level's local DMD runs on a *subsampled* view of its window.  The
  stride is chosen so that the retained slow dynamics are sampled at four
  times their Nyquist rate, following the paper ("we set the sampling rate
  to four times the Nyquist limit to capture cycles"); this is the main
  algorithmic lever that keeps the analysis tractable for terabyte-scale
  environment logs.

The entry point :func:`compute_mrdmd` returns a :class:`~repro.core.tree.MrDMDTree`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .dmd import compute_dmd, slow_mode_mask
from .tree import MrDMDNode, MrDMDTree

__all__ = ["MrDMDConfig", "compute_mrdmd", "decompose_window"]


@dataclass(frozen=True)
class MrDMDConfig:
    """Configuration of the multiresolution recursion.

    Attributes
    ----------
    max_levels:
        Maximum recursion depth (level 1 = whole timeline).  The paper
        uses 6-9 depending on the dataset.
    max_cycles:
        Number of oscillations across a window below which a mode counts
        as "slow" (``rho`` in Kutz et al.).  Default 2, as in the
        reference implementations and the paper's Fig. 9 settings.
    nyquist_factor:
        Oversampling factor relative to the Nyquist rate of the slow
        band.  4 reproduces the paper's choice; larger values subsample
        less (slower, slightly more accurate).
    min_window:
        Windows shorter than this many snapshots are not decomposed
        further (guards the recursion against degenerate leaves).
    use_svht:
        Apply the optimal hard threshold when truncating each local SVD.
    svd_rank:
        Optional hard cap on the local SVD rank.
    split:
        Number of children per node (2 = halves, as in the paper).
    amplitude_method:
        Amplitude fitting strategy forwarded to :func:`repro.core.dmd.compute_dmd`
        (``"window"`` default: least squares over the whole subsampled
        window, which gives noticeably better reconstructions than the
        classic first-snapshot fit at negligible cost).  Note: the
        incremental model's default streaming level-1 path
        (``IncrementalMrDMD(level1_path="projected")``) overrides this at
        level 1 only — it fits amplitudes over the appended chunk (the
        node's contribution window) to keep per-chunk cost flat; all
        deeper levels, the batch recursion, and
        ``level1_path="dense"`` honour this setting everywhere.
    """

    max_levels: int = 6
    max_cycles: int = 2
    nyquist_factor: int = 4
    min_window: int = 8
    use_svht: bool = True
    svd_rank: int | None = None
    split: int = 2
    amplitude_method: str = "window"

    def __post_init__(self) -> None:
        if self.max_levels < 1:
            raise ValueError("max_levels must be >= 1")
        if self.max_cycles < 1:
            raise ValueError("max_cycles must be >= 1")
        if self.nyquist_factor < 1:
            raise ValueError("nyquist_factor must be >= 1")
        if self.min_window < 4:
            raise ValueError("min_window must be >= 4")
        if self.split < 2:
            raise ValueError("split must be >= 2")
        if self.amplitude_method not in ("first", "window"):
            raise ValueError(
                f"amplitude_method must be 'first' or 'window', got {self.amplitude_method!r}"
            )

    @property
    def snapshots_required(self) -> int:
        """Snapshots needed in a window to resolve ``max_cycles`` slow cycles."""
        # Nyquist needs 2 samples/cycle; the paper oversamples by
        # ``nyquist_factor``.
        return int(self.nyquist_factor * 2 * self.max_cycles)

    def stride_for(self, window_length: int) -> int:
        """Subsampling stride for a window of ``window_length`` snapshots."""
        required = self.snapshots_required
        if window_length <= required:
            return 1
        return max(1, window_length // required)

    def rho_for(self, window_length: int, dt: float) -> float:
        """Slow/fast cutoff frequency in Hz for a window of given length."""
        window_seconds = window_length * dt
        if window_seconds <= 0:
            return 0.0
        return self.max_cycles / window_seconds


def decompose_window(
    data: np.ndarray,
    dt: float,
    config: MrDMDConfig,
    *,
    level: int,
    bin_index: int,
    start: int,
    svd_factors: tuple[np.ndarray, np.ndarray, np.ndarray] | None = None,
) -> tuple[MrDMDNode, np.ndarray]:
    """Extract the slow modes of one window and its slow reconstruction.

    Returns the populated :class:`MrDMDNode` and the real ``(P, T_window)``
    slow-mode reconstruction to be subtracted before recursing.

    ``svd_factors`` (of the *subsampled, shifted* matrix) may be supplied
    by the incremental path; when given, ``data`` must already be the
    subsampled view consistent with those factors and ``step`` is taken
    as 1 for the factor consistency check (the caller passes the stride
    explicitly through the node it builds).
    """
    n_features, window_length = data.shape
    step = 1 if svd_factors is not None else config.stride_for(window_length)
    sub = data[:, ::step] if step > 1 else data
    local_dt = dt * step
    rho = config.rho_for(window_length, dt)

    dmd = compute_dmd(
        sub,
        local_dt,
        svd_rank=config.svd_rank,
        use_svht=config.use_svht,
        svd_factors=svd_factors,
        amplitude_method=config.amplitude_method,
    )
    mask = slow_mode_mask(dmd, rho) if dmd.n_modes else np.zeros(0, dtype=bool)
    slow = dmd.mode_subset(mask)

    node = MrDMDNode(
        level=level,
        bin_index=bin_index,
        start=start,
        n_snapshots=window_length,
        dt=dt,
        step=step,
        rho=rho,
        modes=slow.modes,
        eigenvalues=slow.eigenvalues,
        amplitudes=slow.amplitudes,
        svd_rank=dmd.svd_rank,
    )
    reconstruction = node.local_reconstruction(window_length)
    return node, reconstruction


def _recurse(
    data: np.ndarray,
    dt: float,
    config: MrDMDConfig,
    tree: MrDMDTree,
    *,
    level: int,
    bin_index: int,
    start: int,
) -> None:
    """Depth-first mrDMD recursion over ``data`` (a residual window view)."""
    window_length = data.shape[1]
    if window_length < config.min_window:
        return
    node, slow_recon = decompose_window(
        data, dt, config, level=level, bin_index=bin_index, start=start
    )
    tree.add(node)
    if level >= config.max_levels:
        return
    residual = data - slow_recon
    # Split the residual timeline into `split` nearly-equal children.
    edges = np.linspace(0, window_length, config.split + 1, dtype=int)
    for child, (lo, hi) in enumerate(zip(edges[:-1], edges[1:])):
        if hi - lo < config.min_window:
            continue
        _recurse(
            residual[:, lo:hi],
            dt,
            config,
            tree,
            level=level + 1,
            bin_index=bin_index * config.split + child,
            start=start + int(lo),
        )


def compute_mrdmd(
    data: np.ndarray,
    dt: float = 1.0,
    config: MrDMDConfig | None = None,
    **config_overrides,
) -> MrDMDTree:
    """Run the batch mrDMD over a ``(P, T)`` snapshot matrix.

    Parameters
    ----------
    data:
        Sensors along rows, snapshots along columns.
    dt:
        Sampling interval in seconds.
    config:
        Full :class:`MrDMDConfig`; individual fields may instead be given
        as keyword overrides (e.g. ``compute_mrdmd(x, 1.0, max_levels=8)``).

    Returns
    -------
    MrDMDTree
        The populated mode tree.  ``tree.reconstruct()`` gives the
        noise-filtered reconstruction of ``data`` (Eq. 7).
    """
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (P, T), got shape {data.shape!r}")
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt!r}")
    if config is None:
        config = MrDMDConfig(**config_overrides)
    elif config_overrides:
        raise TypeError("pass either a config object or keyword overrides, not both")

    tree = MrDMDTree(dt=dt, n_features=data.shape[0])
    if data.shape[1] >= config.min_window:
        _recurse(data, dt, config, tree, level=1, bin_index=0, start=0)
    return tree

"""mrDMD spectrum: frequency/power analysis and mode isolation.

Sec. III-A-2 of the paper computes, for every mrDMD mode ``phi_i`` with
continuous-time eigenvalue ``psi_i = log(lambda_i) / dt``:

* the oscillation frequency (Eq. 9): ``f_i = |Im(psi_i)| / (2 pi)`` (Hz);
* the mrDMD power (Eq. 10): ``P_i = ||phi_i||_2^2``;

and visualises power against frequency (Figs. 5 and 7).  High-power modes in
a chosen frequency band are the ones retained for reconstruction and for the
baseline/z-score comparison.

This module provides the :class:`MrDMDSpectrum` view over a
:class:`~repro.core.tree.MrDMDTree` (or a flat
:class:`~repro.core.tree.ModeTable`), band/power filtering, band-energy
summaries, and a plain-data export consumed by the plotting helpers in
:mod:`repro.viz.spectrum_plot`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tree import ModeTable, MrDMDTree

__all__ = ["MrDMDSpectrum", "SpectrumBand", "mode_frequencies", "mode_power"]


def mode_frequencies(eigenvalues: np.ndarray, dt: float) -> np.ndarray:
    """Oscillation frequency (Hz) of discrete-time eigenvalues (Eq. 9)."""
    eigenvalues = np.asarray(eigenvalues, dtype=complex)
    if dt <= 0:
        raise ValueError(f"dt must be positive, got {dt!r}")
    if eigenvalues.size == 0:
        return np.zeros(0, dtype=float)
    with np.errstate(divide="ignore", invalid="ignore"):
        psi = np.log(eigenvalues) / dt
    return np.abs(psi.imag) / (2.0 * np.pi)


def mode_power(modes: np.ndarray) -> np.ndarray:
    """mrDMD power of each mode column: squared 2-norm (Eq. 10)."""
    modes = np.asarray(modes)
    if modes.size == 0:
        return np.zeros(modes.shape[1] if modes.ndim == 2 else 0, dtype=float)
    return np.sum(np.abs(modes) ** 2, axis=0)


@dataclass(frozen=True)
class SpectrumBand:
    """A labelled frequency band summary.

    Attributes
    ----------
    low, high:
        Band edges in Hz (inclusive).
    n_modes:
        Number of modes whose frequency falls in the band.
    total_power:
        Sum of mode powers in the band.
    peak_power:
        Largest single-mode power in the band (0 when empty).
    peak_frequency:
        Frequency of that peak mode (NaN when empty).
    """

    low: float
    high: float
    n_modes: int
    total_power: float
    peak_power: float
    peak_frequency: float


class MrDMDSpectrum:
    """Power-vs-frequency view of an mrDMD decomposition.

    Parameters
    ----------
    source:
        Either an :class:`~repro.core.tree.MrDMDTree` or a pre-built
        :class:`~repro.core.tree.ModeTable`.
    label:
        Optional name carried into exports (used to overlay "hot" vs
        "cool" spectra as in Fig. 7).
    """

    def __init__(self, source: MrDMDTree | ModeTable, label: str = "") -> None:
        if isinstance(source, MrDMDTree):
            table = source.mode_table()
        elif isinstance(source, ModeTable):
            table = source
        else:
            raise TypeError(
                f"source must be MrDMDTree or ModeTable, got {type(source).__name__}"
            )
        self._table = table
        self.label = label

    # ------------------------------------------------------------------ #
    @property
    def table(self) -> ModeTable:
        """The underlying flat mode table."""
        return self._table

    @property
    def frequencies(self) -> np.ndarray:
        """Mode frequencies in Hz."""
        return self._table.frequencies

    @property
    def power(self) -> np.ndarray:
        """Mode powers (Eq. 10)."""
        return self._table.power

    @property
    def amplitudes(self) -> np.ndarray:
        """Mode amplitude magnitudes (the y-axis used in Figs. 5/7)."""
        return self._table.amplitudes

    @property
    def n_modes(self) -> int:
        return len(self._table)

    def __len__(self) -> int:
        return self.n_modes

    # ------------------------------------------------------------------ #
    # Filtering
    # ------------------------------------------------------------------ #
    def band_mask(
        self,
        frequency_range: tuple[float, float] | None = None,
        *,
        min_power: float = 0.0,
        min_amplitude: float = 0.0,
        levels: list[int] | None = None,
    ) -> np.ndarray:
        """Boolean mask of modes satisfying all the given filters."""
        mask = np.ones(self.n_modes, dtype=bool)
        if frequency_range is not None:
            lo, hi = frequency_range
            if hi < lo:
                raise ValueError(f"frequency_range must be (low, high), got {frequency_range!r}")
            mask &= (self.frequencies >= lo) & (self.frequencies <= hi)
        if min_power > 0.0:
            mask &= self.power >= min_power
        if min_amplitude > 0.0:
            mask &= self.amplitudes >= min_amplitude
        if levels is not None:
            mask &= np.isin(self._table.levels, np.asarray(levels, dtype=int))
        return mask

    def filter(
        self,
        frequency_range: tuple[float, float] | None = None,
        *,
        min_power: float = 0.0,
        min_amplitude: float = 0.0,
        levels: list[int] | None = None,
        label: str | None = None,
    ) -> "MrDMDSpectrum":
        """Return a new spectrum restricted to the selected modes."""
        mask = self.band_mask(
            frequency_range,
            min_power=min_power,
            min_amplitude=min_amplitude,
            levels=levels,
        )
        return MrDMDSpectrum(self._table.filter(mask), label=label if label is not None else self.label)

    def high_power_modes(self, quantile: float = 0.5) -> "MrDMDSpectrum":
        """Keep modes whose power is at or above the given power quantile.

        This is the "filter modes by higher mrDMD power" step of
        Fig. 1(b).  ``quantile=0.5`` keeps the upper half.
        """
        if not 0.0 <= quantile <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {quantile!r}")
        if self.n_modes == 0:
            return MrDMDSpectrum(self._table, label=self.label)
        threshold = float(np.quantile(self.power, quantile))
        return self.filter(min_power=threshold)

    # ------------------------------------------------------------------ #
    # Summaries
    # ------------------------------------------------------------------ #
    def band_summary(self, edges: np.ndarray | list[float]) -> list[SpectrumBand]:
        """Summarise power by frequency band.

        ``edges`` is an increasing list of band boundaries in Hz; band
        ``k`` covers ``[edges[k], edges[k+1])`` (the last band is closed).
        """
        edges = np.asarray(edges, dtype=float)
        if edges.ndim != 1 or edges.size < 2:
            raise ValueError("edges must contain at least two values")
        if np.any(np.diff(edges) <= 0):
            raise ValueError("edges must be strictly increasing")
        bands: list[SpectrumBand] = []
        f, p = self.frequencies, self.power
        for k in range(edges.size - 1):
            lo, hi = float(edges[k]), float(edges[k + 1])
            if k == edges.size - 2:
                mask = (f >= lo) & (f <= hi)
            else:
                mask = (f >= lo) & (f < hi)
            if np.any(mask):
                powers = p[mask]
                peak_idx = int(np.argmax(powers))
                bands.append(
                    SpectrumBand(
                        low=lo,
                        high=hi,
                        n_modes=int(mask.sum()),
                        total_power=float(powers.sum()),
                        peak_power=float(powers[peak_idx]),
                        peak_frequency=float(f[mask][peak_idx]),
                    )
                )
            else:
                bands.append(
                    SpectrumBand(
                        low=lo, high=hi, n_modes=0, total_power=0.0,
                        peak_power=0.0, peak_frequency=float("nan"),
                    )
                )
        return bands

    def dominant_frequency(self) -> float:
        """Frequency (Hz) of the highest-power mode (NaN if empty)."""
        if self.n_modes == 0:
            return float("nan")
        return float(self.frequencies[int(np.argmax(self.power))])

    def total_power(self) -> float:
        """Sum of all mode powers."""
        return float(self.power.sum())

    def centroid_frequency(self) -> float:
        """Power-weighted mean frequency; shifts upward for "hotter" system
        states (the qualitative claim of Fig. 7)."""
        if self.n_modes == 0 or self.total_power() == 0.0:
            return float("nan")
        return float(np.average(self.frequencies, weights=self.power))

    # ------------------------------------------------------------------ #
    # Export
    # ------------------------------------------------------------------ #
    def to_points(self) -> dict[str, np.ndarray | str]:
        """Plain-array export (frequency, power, amplitude, level, label).

        Consumed by :mod:`repro.viz.spectrum_plot` and by the Figs. 5/7
        benchmarks; keeping it free of plotting dependencies means the
        benches can assert on the numbers directly.
        """
        return {
            "label": self.label,
            "frequency_hz": self.frequencies.copy(),
            "power": self.power.copy(),
            "amplitude": self.amplitudes.copy(),
            "level": self._table.levels.copy(),
        }

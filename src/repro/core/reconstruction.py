"""Reconstruction diagnostics for mrDMD / I-mrDMD decompositions.

Eq. 7/8 of the paper reconstruct the input time series as the sum of the
slow-mode contributions of every tree node; the case studies report the
Frobenius norm of the residual against the raw data (3958.58 for case 1,
3423.85 for case 2) and show actual-vs-reconstructed traces (Fig. 3).

:class:`~repro.core.tree.MrDMDTree.reconstruct` performs the sum itself;
this module adds the error metrics, denoising measures, and per-sensor
trace extraction that the figures, the Q1/Q2 benchmarks, and the tests
build on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .tree import MrDMDTree

__all__ = [
    "ReconstructionReport",
    "frobenius_error",
    "relative_error",
    "noise_reduction_ratio",
    "evaluate_reconstruction",
    "reconstruction_traces",
]


def frobenius_error(actual: np.ndarray, reconstructed: np.ndarray) -> float:
    """``||actual - reconstructed||_F`` — the error the paper reports."""
    actual = np.asarray(actual, dtype=float)
    reconstructed = np.asarray(reconstructed, dtype=float)
    if actual.shape != reconstructed.shape:
        raise ValueError(
            f"shape mismatch: actual {actual.shape} vs reconstructed {reconstructed.shape}"
        )
    return float(np.linalg.norm(actual - reconstructed))


def relative_error(actual: np.ndarray, reconstructed: np.ndarray) -> float:
    """Frobenius error normalised by ``||actual||_F`` (scale free)."""
    actual = np.asarray(actual, dtype=float)
    denom = float(np.linalg.norm(actual))
    if denom == 0.0:
        return 0.0 if np.allclose(actual, reconstructed) else float("inf")
    return frobenius_error(actual, reconstructed) / denom


def noise_reduction_ratio(actual: np.ndarray, reconstructed: np.ndarray) -> float:
    """Ratio of high-frequency energy removed by the reconstruction.

    Measured as the energy of first differences along time (a crude
    high-pass filter): values above 0 mean the reconstruction is smoother
    than the input — the qualitative claim illustrated by Fig. 3 ("the
    reconstructed data has less high-frequency noise").
    """
    actual = np.asarray(actual, dtype=float)
    reconstructed = np.asarray(reconstructed, dtype=float)
    if actual.shape != reconstructed.shape:
        raise ValueError("shape mismatch between actual and reconstructed data")
    if actual.shape[-1] < 2:
        return 0.0
    hf_actual = float(np.linalg.norm(np.diff(actual, axis=-1)))
    hf_recon = float(np.linalg.norm(np.diff(reconstructed, axis=-1)))
    if hf_actual == 0.0:
        return 0.0
    return 1.0 - hf_recon / hf_actual


@dataclass(frozen=True)
class ReconstructionReport:
    """Bundle of reconstruction-quality metrics for one decomposition."""

    frobenius: float
    relative: float
    noise_reduction: float
    per_sensor_rmse: np.ndarray
    n_modes: int
    n_levels: int

    def worst_sensors(self, k: int = 10) -> np.ndarray:
        """Indices of the ``k`` sensors with the largest RMSE."""
        k = min(int(k), self.per_sensor_rmse.size)
        return np.argsort(self.per_sensor_rmse)[::-1][:k]


def evaluate_reconstruction(
    tree: MrDMDTree,
    actual: np.ndarray,
    *,
    frequency_range: tuple[float, float] | None = None,
    min_power: float = 0.0,
) -> ReconstructionReport:
    """Reconstruct from ``tree`` and compare against ``actual``.

    ``frequency_range`` / ``min_power`` are forwarded to
    :meth:`MrDMDTree.reconstruct`, matching the case-study setting of
    restricting the spectrum to 0-60 Hz / high-power modes.
    """
    actual = np.asarray(actual, dtype=float)
    if actual.ndim != 2:
        raise ValueError(f"actual must be 2-D (P, T), got {actual.shape!r}")
    recon = tree.reconstruct(
        actual.shape[1], frequency_range=frequency_range, min_power=min_power
    )
    residual = actual - recon
    per_sensor_rmse = np.sqrt(np.mean(residual**2, axis=1))
    return ReconstructionReport(
        frobenius=frobenius_error(actual, recon),
        relative=relative_error(actual, recon),
        noise_reduction=noise_reduction_ratio(actual, recon),
        per_sensor_rmse=per_sensor_rmse,
        n_modes=tree.total_modes,
        n_levels=tree.n_levels,
    )


def reconstruction_traces(
    tree: MrDMDTree,
    actual: np.ndarray,
    sensors: np.ndarray | list[int],
    **reconstruct_kwargs,
) -> dict[str, np.ndarray]:
    """Extract actual vs reconstructed traces for selected sensors (Fig. 3).

    Returns a dict with ``"time_steps"``, ``"actual"`` and
    ``"reconstructed"`` arrays of shape ``(len(sensors), T)``, ready to be
    dumped by the plotting/export helpers.
    """
    actual = np.asarray(actual, dtype=float)
    sensors = np.asarray(sensors, dtype=int)
    recon = tree.reconstruct(actual.shape[1], **reconstruct_kwargs)
    return {
        "time_steps": np.arange(actual.shape[1]),
        "actual": actual[sensors, :].copy(),
        "reconstructed": recon[sensors, :].copy(),
    }

"""Core numerics: DMD, mrDMD, incremental SVD, I-mrDMD, spectrum, baselines.

This subpackage contains the paper's primary contribution — the incremental
multiresolution dynamic mode decomposition (:class:`IncrementalMrDMD`) — and
every numerical building block it relies on.  The public surface re-exported
here is what the examples, benchmarks, and higher-level pipeline use.
"""

from .baseline import (
    BaselineModel,
    BaselineSpec,
    ZScoreCategory,
    ZScoreResult,
    classify_zscores,
    compute_zscores,
    select_baseline_mask,
)
from .dmd import DMDResult, compute_dmd, compute_dmd_projected, slow_mode_mask
from .imrdmd import (
    MISSING_VALUE_POLICIES,
    RETENTION_POLICIES,
    IncrementalMrDMD,
    TopologyChange,
    UpdateRecord,
)
from .isvd import IncrementalSVD, ISVDState
from .mrdmd import MrDMDConfig, compute_mrdmd, decompose_window
from .reconstruction import (
    ReconstructionReport,
    evaluate_reconstruction,
    frobenius_error,
    noise_reduction_ratio,
    reconstruction_traces,
    relative_error,
)
from .spectrum import MrDMDSpectrum, SpectrumBand, mode_frequencies, mode_power
from .svht import SVHTResult, svht_rank, svht_threshold
from .tree import ModeTable, MrDMDNode, MrDMDTree

__all__ = [
    "BaselineModel",
    "BaselineSpec",
    "ZScoreCategory",
    "ZScoreResult",
    "classify_zscores",
    "compute_zscores",
    "select_baseline_mask",
    "DMDResult",
    "compute_dmd",
    "compute_dmd_projected",
    "RETENTION_POLICIES",
    "MISSING_VALUE_POLICIES",
    "slow_mode_mask",
    "IncrementalMrDMD",
    "TopologyChange",
    "UpdateRecord",
    "IncrementalSVD",
    "ISVDState",
    "MrDMDConfig",
    "compute_mrdmd",
    "decompose_window",
    "ReconstructionReport",
    "evaluate_reconstruction",
    "frobenius_error",
    "noise_reduction_ratio",
    "reconstruction_traces",
    "relative_error",
    "MrDMDSpectrum",
    "SpectrumBand",
    "mode_frequencies",
    "mode_power",
    "SVHTResult",
    "svht_rank",
    "svht_threshold",
    "ModeTable",
    "MrDMDNode",
    "MrDMDTree",
]

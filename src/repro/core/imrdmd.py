"""Incremental multiresolution Dynamic Mode Decomposition (I-mrDMD).

This is the paper's primary contribution (Sec. III-A-1, Fig. 1(c),
Algorithm 1): an online variant of mrDMD whose *partial fit* over a newly
arrived chunk of snapshots costs roughly ``O(L * P * T_new)`` instead of the
``O(L * P * (T_old + T_new))`` of a full recomputation, by

1. maintaining an :class:`~repro.core.isvd.IncrementalSVD` of the level-1
   (subsampled) snapshot matrix, so the slowest modes are *updated* instead
   of recomputed when data arrives;
2. re-indexing the previously computed mode tree — every old node's level is
   incremented, so the old level-1 node becomes the level-2 node describing
   the ``[0, T)`` half of the new, longer timeline (Algorithm 1, line 7-9);
3. running the ordinary mrDMD recursion *only on the new chunk*
   ``[T, T + T1)`` (after subtracting the updated level-1 slow dynamics),
   which attaches a fresh right-hand subtree starting at level 2;
4. tracking the drift (Frobenius norm) between the previous and the updated
   level-1 slow modes; when a user-defined threshold is exceeded the old
   levels 2..L are flagged stale and can be refreshed — an embarrassingly
   parallel recomputation the paper leaves asynchronous.

Accuracy follows the paper's observation (Q2): the incremental
reconstruction differs from the batch one by a small amount that grows with
the number of appended chunks, because old deep-level nodes are not refreshed
against the updated level-1 modes.  :meth:`IncrementalMrDMD.reconstruction_error`
and the Q2 benchmark quantify this gap.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from ..obs import OBS
from ..util.growbuf import GrowableMatrix
from ..util.timer import now
from .dmd import compute_dmd, compute_dmd_projected, slow_mode_mask
from .isvd import IncrementalSVD
from .mrdmd import MrDMDConfig, compute_mrdmd
from .tree import MrDMDNode, MrDMDTree

__all__ = [
    "IncrementalMrDMD",
    "PreparedChunk",
    "UpdateRecord",
    "TopologyChange",
    "RETENTION_POLICIES",
    "MISSING_VALUE_POLICIES",
    "DEEP_LEVEL_MODES",
]

#: Raw-snapshot retention policies (see :class:`IncrementalMrDMD`).
RETENTION_POLICIES = ("all", "window", "none")

#: When the levels-2..L recursion over an appended chunk runs (see
#: :class:`IncrementalMrDMD`): ``"inline"`` on the ingest path (the
#: historical behaviour), ``"deferred"`` queued for a later
#: :meth:`IncrementalMrDMD.refresh_deep_levels` call.
DEEP_LEVEL_MODES = ("inline", "deferred")

#: What to do with non-finite readings in ingested data (see
#: :class:`IncrementalMrDMD`).
MISSING_VALUE_POLICIES = ("raise", "zero")


@dataclass
class UpdateRecord:
    """Diagnostics for one :meth:`IncrementalMrDMD.partial_fit` call.

    Attributes
    ----------
    chunk_size:
        Number of snapshots appended.
    total_snapshots:
        Timeline length after the update.
    level1_rank:
        Rank of the updated level-1 SVD.
    level1_modes:
        Number of slow modes retained at the new level 1.
    drift:
        Frobenius norm of the difference between the previous and the new
        level-1 slow-mode matrices (the paper's recompute trigger).
    stale:
        Whether ``drift`` exceeded the configured threshold, marking the
        old deep levels as stale.
    new_nodes:
        Number of tree nodes created for the appended chunk.
    """

    chunk_size: int
    total_snapshots: int
    level1_rank: int
    level1_modes: int
    drift: float
    stale: bool
    new_nodes: int


@dataclass
class PreparedChunk:
    """First half of a split :meth:`IncrementalMrDMD.partial_fit`.

    Produced by :meth:`IncrementalMrDMD.prepare_partial_fit`, consumed by
    :meth:`IncrementalMrDMD.finish_partial_fit`.  Between the two calls the
    caller must fold :attr:`isvd_update_block` into the model's level-1
    iSVD (``model.level1_isvd.update(block)``) whenever it is not ``None``
    — this is the hook the batched shard kernel
    (:class:`repro.core.batchops.ShardBatchPlanner`) uses to run many
    same-shape shard updates as stacked BLAS calls.  ``partial_fit`` itself
    composes the two phases around a plain per-shard update, so the split
    introduces no second code path.
    """

    new_data: np.ndarray
    chunk_size: int
    t_old: int
    t_total: int
    new_cols: np.ndarray | None
    isvd_update_block: np.ndarray | None
    t_start: float


@dataclass
class TopologyChange:
    """One row-growth event: new sensors joining a live decomposition.

    This is the first-class record threaded through every layer of the
    stack (model → pipeline → shard → machine → federation): the model
    emits it from :meth:`IncrementalMrDMD.add_rows`, the pipeline and the
    fleet monitor enrich/forward it, and checkpoints persist the history so
    a restored system knows which rows existed when.

    Attributes
    ----------
    step:
        Absolute snapshot index at which the rows joined.  Rows onboarded
        with back-filled history carry ``step=0`` (they are treated as
        having existed from the start); rows onboarded without history are
        born at the current stream position.
    n_new_rows:
        How many rows joined in this event.
    total_rows:
        State dimension ``P`` after the event.
    backfilled:
        Whether caller-supplied history covered the existing timeline.
    tree_revision:
        The mode-tree revision after the event (caches/baselines keyed on
        the revision invalidate exactly once per event).
    """

    step: int
    n_new_rows: int
    total_rows: int
    backfilled: bool
    tree_revision: int


def _mode_drift(previous: np.ndarray, current: np.ndarray) -> float:
    """Frobenius distance between two slow-mode matrices.

    The matrices may have different numbers of columns (the SVHT rank can
    change between updates); the narrower one is zero-padded, matching the
    paper's "difference between the newly computed slower modes and the
    previous slower modes".
    """
    if previous.size == 0 and current.size == 0:
        return 0.0
    rows = max(previous.shape[0] if previous.size else 0,
               current.shape[0] if current.size else 0)
    cols = max(previous.shape[1] if previous.size else 0,
               current.shape[1] if current.size else 0)
    a = np.zeros((rows, cols), dtype=complex)
    b = np.zeros((rows, cols), dtype=complex)
    if previous.size:
        a[: previous.shape[0], : previous.shape[1]] = previous
    if current.size:
        b[: current.shape[0], : current.shape[1]] = current
    return float(np.linalg.norm(a - b))


class IncrementalMrDMD:
    """Online mrDMD with incremental level-1 updates.

    Parameters
    ----------
    dt:
        Sampling interval of the snapshots (seconds).
    config:
        :class:`~repro.core.mrdmd.MrDMDConfig`; keyword overrides may be
        passed instead (``IncrementalMrDMD(dt=1.0, max_levels=8)``).
    drift_threshold:
        User-defined Frobenius-norm threshold on the level-1 slow-mode
        drift above which the previously computed levels 2..L are marked
        stale (``stale_levels``).  ``None`` disables the check.
    keep_data:
        Back-compat alias for ``retain_data="all"``: keep a copy of every
        snapshot seen.  Required only for :meth:`refresh` (the
        asynchronous full recomputation of stale levels) and for
        :meth:`reconstruction_error` without an explicit reference; the
        streaming deployments the paper targets leave this off to keep
        memory bounded.
    retain_data:
        Raw-snapshot retention policy; overrides ``keep_data`` when given.
        ``"all"`` retains the full ``(P, T)`` timeline (in an
        amortized-growth buffer), ``"window"`` only the trailing
        ``retain_window`` snapshots (enough for recent-window diagnostics
        at bounded memory), ``"none"`` nothing — the model then holds only
        the mode tree, the level-1 factors and the subsampled level-1
        grid, honouring the paper's "factors, never the raw matrix"
        memory claim.
    retain_window:
        Number of trailing snapshots kept under ``retain_data="window"``.
    level1_path:
        How the updated level-1 DMD is computed on each
        :meth:`partial_fit`.  ``"projected"`` (default) works entirely in
        the rank-``q`` projected space — the ``Y Vh^H`` cross product is
        maintained incrementally, the lazily rotated right factor is never
        materialised, and the level-1 amplitudes are least-squares fitted
        over the freshly appended chunk (the only range the new level-1
        node contributes to reconstructions) — making the per-chunk cost
        independent of the stream length.  ``"dense"`` reproduces the
        pre-optimisation behaviour exactly: materialise the full factors
        and re-fit amplitudes per ``config.amplitude_method`` over the
        whole (growing) level-1 window, at ``O(T)`` per chunk.
    lazy_vh:
        Forwarded to :class:`~repro.core.isvd.IncrementalSVD`
        ``lazy_rotation``; both settings produce bit-for-bit identical
        results (the eager mode simply pays the rotation per update).
    deep_levels:
        When the levels-2..L mrDMD recursion over an appended chunk runs.
        ``"inline"`` (default) keeps it on the ingest path — the
        historical behaviour, reproduced exactly.  ``"deferred"`` runs
        only the projected level-1 update at ingest and queues the
        chunk's level-1 residual; a later
        :meth:`refresh_deep_levels` call (scheduled off the ingest path
        by the service layer, on drift firings or every N chunks)
        replays the queued recursions and attaches *bit-for-bit the same
        nodes* the inline path would have attached — the queue tracks
        how many :meth:`partial_fit` level shifts each entry has missed,
        so the re-indexing maths is identical, just late.  Until the
        refresh lands, reconstructions and alerts see a tree whose deep
        levels lag the stream by :attr:`deep_stale_snapshots` columns
        (level 1 is always current).

    Examples
    --------
    >>> import numpy as np
    >>> from repro.core import IncrementalMrDMD
    >>> t = np.linspace(0, 40, 2000)
    >>> x = np.vstack([np.sin(0.3 * t), np.cos(0.3 * t)]) + 0.01
    >>> model = IncrementalMrDMD(dt=t[1] - t[0], max_levels=3)
    >>> model.fit(x[:, :1000])                     # doctest: +ELLIPSIS
    <repro.core.imrdmd.IncrementalMrDMD object at ...>
    >>> record = model.partial_fit(x[:, 1000:])
    >>> record.total_snapshots
    2000
    """

    def __init__(
        self,
        dt: float = 1.0,
        config: MrDMDConfig | None = None,
        *,
        drift_threshold: float | None = None,
        keep_data: bool = False,
        retain_data: str | None = None,
        retain_window: int = 4096,
        level1_path: str = "projected",
        lazy_vh: bool = True,
        missing_values: str = "raise",
        deep_levels: str = "inline",
        **config_overrides,
    ) -> None:
        if dt <= 0:
            raise ValueError(f"dt must be positive, got {dt!r}")
        if config is None:
            config = MrDMDConfig(**config_overrides)
        elif config_overrides:
            raise TypeError("pass either a config object or keyword overrides, not both")
        if drift_threshold is not None and drift_threshold < 0:
            raise ValueError("drift_threshold must be non-negative")
        if retain_data is None:
            retain_data = "all" if keep_data else "none"
        if retain_data not in RETENTION_POLICIES:
            raise ValueError(
                f"retain_data must be one of {RETENTION_POLICIES}, got {retain_data!r}"
            )
        if retain_window < 1:
            raise ValueError("retain_window must be >= 1")
        if level1_path not in ("projected", "dense"):
            raise ValueError(
                f"level1_path must be 'projected' or 'dense', got {level1_path!r}"
            )
        if missing_values not in MISSING_VALUE_POLICIES:
            raise ValueError(
                f"missing_values must be one of {MISSING_VALUE_POLICIES}, "
                f"got {missing_values!r}"
            )
        if deep_levels not in DEEP_LEVEL_MODES:
            raise ValueError(
                f"deep_levels must be one of {DEEP_LEVEL_MODES}, got {deep_levels!r}"
            )
        self.dt = float(dt)
        self.config = config
        self.drift_threshold = drift_threshold
        self.retain_data = retain_data
        self.retain_window = int(retain_window)
        self.keep_data = retain_data == "all"
        self.level1_path = level1_path
        self.lazy_vh = bool(lazy_vh)
        self.missing_values = missing_values
        self.deep_levels = deep_levels

        self._tree: MrDMDTree | None = None
        self._isvd: IncrementalSVD | None = None
        self._level1_stride: int = 1
        # Subsampled level-1 matrix, grown in place (O(1) amortized append).
        # Under minimal retention (retain_data="none" + projected path) only
        # the trailing column is stored; ``_sub_offset`` counts the leading
        # grid columns dropped, so absolute grid indices stay recoverable.
        self._sub: GrowableMatrix | None = None
        self._sub_offset: int = 0
        self._next_sub_index: int = 0                 # next absolute index to subsample
        self._n_snapshots: int = 0
        self._n_features: int = 0
        self._level1_modes: np.ndarray = np.zeros((0, 0), dtype=complex)
        # Y Vh^H of the shifted level-1 matrix, advanced per update from
        # the iSVD's rotation ops (the projected path's whole view of Vh).
        self._level1_cross: np.ndarray | None = None
        # Retained raw snapshots: GrowableMatrix ("all"), trailing ndarray
        # ("window"), or None ("none").
        self._data: GrowableMatrix | np.ndarray | None = None
        self._stale: bool = False
        self._history: list[UpdateRecord] = []
        # Elastic topology: absolute birth step per row + event history.
        self._row_birth: np.ndarray = np.zeros(0, dtype=int)
        self._topology: list[TopologyChange] = []
        # Deferred levels-2..L work, oldest first.  Each entry holds the
        # chunk's level-1 residual plus the bookkeeping needed to attach
        # the recursion's nodes exactly where the inline path would have:
        # "start" is the chunk's absolute start column and "shifts" counts
        # the tree level shifts the entry has missed since it was queued.
        self._deep_pending: list[dict] = []

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def fitted(self) -> bool:
        """Whether :meth:`fit` has been called."""
        return self._tree is not None

    @property
    def tree(self) -> MrDMDTree:
        """The current mode tree (raises if not fitted)."""
        self._require_fitted()
        return self._tree

    @property
    def n_snapshots(self) -> int:
        """Total number of snapshots ingested so far."""
        return self._n_snapshots

    @property
    def n_features(self) -> int:
        """State dimension ``P``."""
        return self._n_features

    @property
    def stale_levels(self) -> bool:
        """True when the level-1 drift has exceeded ``drift_threshold``."""
        return self._stale

    @property
    def level1_isvd(self) -> IncrementalSVD:
        """The level-1 incremental SVD (the batched kernel's update target)."""
        self._require_fitted()
        return self._isvd

    @property
    def deep_pending(self) -> int:
        """Number of chunks whose levels-2..L recursion is still queued."""
        return len(self._deep_pending)

    @property
    def deep_stale_snapshots(self) -> int:
        """How many trailing snapshots the deep levels lag the stream by.

        ``0`` when nothing is queued (the tree is fully current).  Under
        ``deep_levels="deferred"`` this is the distance from the oldest
        queued chunk's start to the stream head — the staleness bound that
        snapshots and alerts stamp.
        """
        if not self._deep_pending:
            return 0
        return self._n_snapshots - int(self._deep_pending[0]["start"])

    @property
    def history(self) -> list[UpdateRecord]:
        """Per-update diagnostics, in chronological order."""
        return list(self._history)

    @property
    def drift_history(self) -> np.ndarray:
        """Array of level-1 drifts, one entry per :meth:`partial_fit`."""
        return np.array([rec.drift for rec in self._history], dtype=float)

    @property
    def row_birth(self) -> np.ndarray:
        """Absolute snapshot index at which each row joined (0 = original)."""
        return self._row_birth.copy()

    @property
    def topology_history(self) -> list[TopologyChange]:
        """Row-growth events, in chronological order."""
        return list(self._topology)

    def _require_fitted(self) -> None:
        if not self.fitted:
            raise RuntimeError("IncrementalMrDMD must be fitted before use")

    def _sanitize(self, data: np.ndarray, what: str) -> np.ndarray:
        """Police non-finite readings per the ``missing_values`` policy.

        ``"raise"`` (default) rejects them with a clear error; ``"zero"``
        fills them with 0.0 — the same fill the elastic ``add_rows``
        backfill uses for pre-birth history, so a sensor that is registered
        in the topology but not yet reporting contributes nothing.
        """
        if np.isfinite(data).all():
            return data
        if self.missing_values == "raise":
            raise ValueError(
                f"{what} contains non-finite values; pass missing_values='zero' "
                f"(PipelineConfig.missing_values) to treat missing readings as "
                f"zero-filled"
            )
        return np.nan_to_num(data, nan=0.0, posinf=0.0, neginf=0.0)

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def fit(self, data: np.ndarray) -> "IncrementalMrDMD":
        """Run the initial (batch) fit over ``(P, T0)`` snapshots.

        The batch mrDMD tree is computed exactly as
        :func:`~repro.core.mrdmd.compute_mrdmd` would, and the level-1
        incremental-SVD state is initialised so that subsequent
        :meth:`partial_fit` calls are cheap.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D (P, T), got shape {data.shape!r}")
        if data.shape[1] < self.config.min_window:
            raise ValueError(
                f"initial fit needs at least min_window={self.config.min_window} "
                f"snapshots, got {data.shape[1]}"
            )
        data = self._sanitize(data, "fit data")
        self._n_features, t0 = data.shape
        self._n_snapshots = t0
        self._row_birth = np.zeros(self._n_features, dtype=int)
        self._topology = []
        self._sub_offset = 0

        # Batch tree for the initial window.
        self._tree = compute_mrdmd(data, self.dt, self.config)

        # Level-1 incremental state: fix the stride at its initial value so
        # later appends extend a consistent subsampled grid.
        self._level1_stride = self.config.stride_for(t0)
        sub = np.ascontiguousarray(data[:, :: self._level1_stride])
        self._sub = GrowableMatrix.from_array(sub)
        self._next_sub_index = (
            ((t0 - 1) // self._level1_stride + 1) * self._level1_stride
        )
        self._isvd = IncrementalSVD(
            rank=self.config.svd_rank,
            use_svht=self.config.use_svht,
            lazy_rotation=self.lazy_vh,
        )
        self._level1_cross = None
        if sub.shape[1] >= 2:
            self._isvd.initialize(sub[:, :-1])
            if self.level1_path == "projected":
                self._level1_cross = self._initial_cross(sub)

        level1_nodes = self._tree.nodes_at_level(1)
        self._level1_modes = (
            level1_nodes[0].modes.copy() if level1_nodes else np.zeros((self._n_features, 0), dtype=complex)
        )
        if self.retain_data == "all":
            self._data = GrowableMatrix.from_array(data)
        elif self.retain_data == "window":
            self._data = np.ascontiguousarray(data[:, -self.retain_window :])
        else:
            self._data = None
        self._stale = False
        self._history = []
        self._deep_pending = []
        self._shrink_level1_grid()
        return self

    def _shrink_level1_grid(self) -> None:
        """Minimal level-1 retention: keep only the trailing grid column.

        Under ``retain_data="none"`` with the projected level-1 path the
        only grid reads are the trailing column (the anchor for the next
        update block and the stride-shorter amplitude fit) — the dense
        fallback, ``state_dict`` re-derivation and re-initialisation all
        need the full grid, so shrinking is gated on the projected path
        with an initialised iSVD.  This reaches the
        ``O(P q + q T/stride)`` → ``O(P q)`` memory target for the grid;
        ``_sub_offset`` keeps absolute column indices recoverable.
        """
        if (
            self.retain_data != "none"
            or self.level1_path != "projected"
            or self._sub is None
            or self._isvd is None
            or not self._isvd.initialized
            or self._level1_cross is None
        ):
            return
        drop = self._sub.n_cols - 1
        if drop <= 0:
            return
        last = self._sub.column(self._sub.n_cols - 1)
        self._sub = GrowableMatrix.from_array(last[:, None])
        self._sub_offset += drop

    # ------------------------------------------------------------------ #
    # Level-1 cross-product maintenance (projected path)
    # ------------------------------------------------------------------ #
    def _initial_cross(self, sub: np.ndarray) -> np.ndarray:
        """Batch ``Y Vh^H`` for the freshly (re)initialised level-1 iSVD."""
        y = np.ascontiguousarray(sub[:, 1:])
        return y @ self._isvd.vh.conj().T

    def _advance_cross(self, cross: np.ndarray, y_new: np.ndarray) -> np.ndarray:
        """Advance ``Y Vh^H`` through the iSVD's latest right-factor ops.

        An ``("extend", R, B)`` op means ``Vh <- [R Vh, B]`` while ``Y``
        gained the columns ``y_new``, so ``G <- G R^H + y_new B^H``; a
        ``("rotate", M)`` op (re-orthogonalisation) means ``G <- G M^H``.
        Cost is ``O(P q (q + c))`` per update — never ``O(T)``.
        """
        for op in self._isvd.last_update_ops:
            if op[0] == "extend":
                cross = cross @ op[1].conj().T + y_new @ op[2].conj().T
            else:
                cross = cross @ op[1].conj().T
        return cross

    # ------------------------------------------------------------------ #
    # Incremental update
    # ------------------------------------------------------------------ #
    def partial_fit(self, new_data: np.ndarray) -> UpdateRecord:
        """Fold a new chunk of ``(P, T1)`` snapshots into the decomposition.

        Implements Algorithm 1 of the paper: incremental SVD update of the
        level-1 factors, slow-mode extraction over the full (extended)
        timeline, level re-indexing of the existing tree, and a fresh
        mrDMD recursion over the appended chunk only.

        The call is the composition of :meth:`prepare_partial_fit`, the
        level-1 iSVD update, and :meth:`finish_partial_fit` — the batched
        shard kernel (:mod:`repro.core.batchops`) runs the same two phases
        around a stacked multi-shard update, so both paths share every
        line of this logic.
        """
        prepared = self.prepare_partial_fit(new_data)
        if prepared.isvd_update_block is not None:
            self._isvd.update(prepared.isvd_update_block)
        return self.finish_partial_fit(prepared)

    def prepare_partial_fit(self, new_data: np.ndarray) -> PreparedChunk:
        """Validate a chunk and extend the level-1 grid (phase one).

        Everything up to — but excluding — the level-1 iSVD update: the
        returned :class:`PreparedChunk` carries the ``(q_prev+c, c)``
        update block (``None`` when no new grid column landed, or when the
        chunk instead batch-initialised the factors).  The caller must
        fold a non-``None`` block into :attr:`level1_isvd` before calling
        :meth:`finish_partial_fit`.
        """
        self._require_fitted()
        new_data = np.asarray(new_data, dtype=float)
        if new_data.ndim == 1:
            new_data = new_data[:, None]
        if new_data.ndim != 2:
            raise ValueError(f"new_data must be 1-D or 2-D, got shape {new_data.shape!r}")
        if new_data.shape[0] != self._n_features:
            raise ValueError(
                f"feature mismatch: model has {self._n_features}, chunk has {new_data.shape[0]}"
            )
        t1 = new_data.shape[1]
        if t1 == 0:
            raise ValueError("new_data must contain at least one snapshot")
        new_data = self._sanitize(new_data, "new_data")

        t_old = self._n_snapshots
        t_total = t_old + t1
        t_phase = now() if OBS.enabled else 0.0

        # ---- 1. extend the level-1 subsampled grid ------------------- #
        new_sub_indices = np.arange(self._next_sub_index, t_total, self._level1_stride)
        new_cols: np.ndarray | None = None
        update_block: np.ndarray | None = None
        if new_sub_indices.size:
            new_cols = np.ascontiguousarray(new_data[:, new_sub_indices - t_old])
            old_sub_cols = self._sub.n_cols
            self._sub.append(new_cols)
            self._next_sub_index = int(new_sub_indices[-1]) + self._level1_stride
            if self._isvd.initialized:
                # The shifted matrix X = sub[:, :-1] gains the columns
                # between the previous X end and the new one; the shifted
                # targets Y = sub[:, 1:] gain exactly `new_cols`.
                block = self._sub.slice(old_sub_cols - 1, self._sub.n_cols - 1)
                if block.shape[1]:
                    update_block = block
            elif self._sub.n_cols >= 2:
                self._isvd.initialize(self._sub.slice(0, self._sub.n_cols - 1))
                if self.level1_path == "projected":
                    self._level1_cross = self._initial_cross(self._sub.view())
        return PreparedChunk(
            new_data=new_data,
            chunk_size=t1,
            t_old=t_old,
            t_total=t_total,
            new_cols=new_cols,
            isvd_update_block=update_block,
            t_start=t_phase,
        )

    def finish_partial_fit(self, prepared: PreparedChunk) -> UpdateRecord:
        """Complete a chunk update whose iSVD phase has already run.

        Phase two of the split :meth:`partial_fit`: advance the level-1
        cross product through the iSVD's freshly issued right-factor ops,
        recompute the level-1 DMD, re-index the tree, and run (or defer)
        the mrDMD recursion over the appended chunk.
        """
        new_data = prepared.new_data
        t1 = prepared.chunk_size
        t_old = prepared.t_old
        t_total = prepared.t_total
        new_cols = prepared.new_cols
        if prepared.isvd_update_block is not None and self._level1_cross is not None:
            self._level1_cross = self._advance_cross(self._level1_cross, new_cols)

        t_phase = prepared.t_start
        if OBS.enabled:
            OBS.record("core.grid_extend", now() - t_phase, cols=int(t1))
            t_phase = now()

        # ---- 2. updated level-1 DMD over the full timeline ----------- #
        rho = self.config.rho_for(t_total, self.dt)
        local_dt = self.dt * self._level1_stride
        # Absolute grid-column count; the stored buffer may hold only the
        # trailing column under minimal retention (see _shrink_level1_grid).
        n_sub = self._sub_offset + self._sub.n_cols
        if self._isvd.initialized and n_sub >= 2:
            if self.level1_path == "projected" and self._level1_cross is not None:
                # Flat-cost path: the operator projection reads only the
                # incrementally maintained (P, q) cross product, and the
                # amplitudes are fitted over the appended chunk's columns
                # (the only range this node contributes to, see
                # `contribution_start` below) at their absolute positions.
                if new_cols is not None and new_cols.shape[1]:
                    amp_data = new_cols
                    amp_powers = np.arange(n_sub - new_cols.shape[1], n_sub)
                else:
                    # Chunk shorter than the stride: no new grid column;
                    # anchor the fit at the latest retained column.
                    amp_data = self._sub.column(self._sub.n_cols - 1)[:, None]
                    amp_powers = np.arange(n_sub - 1, n_sub)
                dmd = compute_dmd_projected(
                    self._isvd.u,
                    self._isvd.s,
                    self._level1_cross,
                    dt=local_dt,
                    n_snapshots=n_sub,
                    svd_rank=self.config.svd_rank,
                    use_svht=self.config.use_svht,
                    amplitude_data=amp_data,
                    amplitude_powers=amp_powers,
                )
            else:
                dmd = compute_dmd(
                    self._sub.materialize(),
                    local_dt,
                    svd_rank=self.config.svd_rank,
                    use_svht=self.config.use_svht,
                    svd_factors=self._isvd.factors(),
                    amplitude_method=self.config.amplitude_method,
                )
        else:
            dmd = compute_dmd(
                self._sub.materialize(),
                local_dt,
                use_svht=self.config.use_svht,
                amplitude_method=self.config.amplitude_method,
            )
        slow = dmd.mode_subset(slow_mode_mask(dmd, rho)) if dmd.n_modes else dmd
        if OBS.enabled:
            OBS.record("core.level1_dmd", now() - t_phase,
                       path=self.level1_path, rank=int(dmd.svd_rank))
            t_phase = now()

        drift = _mode_drift(self._level1_modes, slow.modes)
        stale_now = (
            self.drift_threshold is not None and drift > self.drift_threshold
        )
        self._stale = self._stale or stale_now

        new_level1 = MrDMDNode(
            level=1,
            bin_index=0,
            start=0,
            n_snapshots=t_total,
            dt=self.dt,
            step=self._level1_stride,
            rho=rho,
            modes=slow.modes,
            eigenvalues=slow.eigenvalues,
            amplitudes=slow.amplitudes,
            svd_rank=dmd.svd_rank,
            # The appended chunk is the only part of the timeline not yet
            # described by the (re-indexed) previous nodes.
            contribution_start=t_old,
            contribution_end=t_total,
        )

        # ---- 3. re-index the previous tree (Algorithm 1, lines 7-9) -- #
        self._tree.shift_levels(1)
        # Entries already queued for deferred recursion have now missed
        # one more shift; their nodes must land one level deeper.
        for entry in self._deep_pending:
            entry["shifts"] += 1

        # ---- 4. mrDMD recursion over the appended chunk --------------- #
        # Subtract the updated level-1 slow dynamics over the new range.
        level1_on_chunk = new_level1.local_reconstruction_range(t_old, t1)
        residual = new_data - level1_on_chunk
        new_nodes = 0
        if self.deep_levels == "deferred":
            # Keep only the residual + re-indexing bookkeeping; the
            # recursion itself runs off the ingest path in
            # refresh_deep_levels(), attaching bit-for-bit the nodes the
            # inline branch below would have attached now.
            self._deep_pending.append(
                {"start": t_old, "shifts": 0, "residual": residual}
            )
            if OBS.enabled:
                OBS.gauge("core.deep.queue_depth", len(self._deep_pending))
        else:
            chunk_tree = compute_mrdmd(residual, self.dt, self._chunk_config())
            for node in chunk_tree:
                self._tree.add(
                    node.copy_with(
                        level=node.level + 1,
                        start=node.start + t_old,
                        bin_index=node.bin_index + 1,
                    )
                )
                new_nodes += 1
            if OBS.enabled:
                OBS.record("core.chunk_mrdmd", now() - t_phase,
                           cols=int(t1), new_nodes=new_nodes)

        # ---- 5. install the new level-1 node and bookkeeping ---------- #
        self._tree.add(new_level1)
        # complex by contract, like the node arrays (eig may return real)
        self._level1_modes = np.asarray(slow.modes, dtype=complex)
        self._n_snapshots = t_total
        if self.retain_data == "all":
            self._data.append(new_data)
        elif self.retain_data == "window":
            self._data = np.ascontiguousarray(
                np.concatenate([self._data, new_data], axis=1)[:, -self.retain_window :]
            )

        record = UpdateRecord(
            chunk_size=t1,
            total_snapshots=t_total,
            level1_rank=dmd.svd_rank,
            level1_modes=slow.modes.shape[1],
            drift=drift,
            stale=stale_now,
            new_nodes=new_nodes,
        )
        self._history.append(record)
        self._shrink_level1_grid()
        return record

    def _chunk_config(self) -> MrDMDConfig:
        """The mrDMD config for the recursion over one appended chunk."""
        return MrDMDConfig(
            max_levels=max(self.config.max_levels - 1, 1),
            max_cycles=self.config.max_cycles,
            nyquist_factor=self.config.nyquist_factor,
            min_window=self.config.min_window,
            use_svht=self.config.use_svht,
            svd_rank=self.config.svd_rank,
            split=self.config.split,
            amplitude_method=self.config.amplitude_method,
        )

    def refresh_deep_levels(self, max_entries: int | None = None) -> int:
        """Run queued levels-2..L recursions (the paper's async recompute).

        Under ``deep_levels="deferred"`` each :meth:`partial_fit` queues
        its chunk's level-1 residual instead of recursing inline; this
        call drains the queue (oldest first, up to ``max_entries``) and
        attaches the resulting nodes exactly where the inline path would
        have: an entry queued at level offset 1 that has missed ``k``
        later level shifts lands at ``level + 1 + k`` — bit-for-bit the
        node arrays inline ingestion produces, because the residual was
        captured against the same updated level-1 reconstruction at
        ingest time.  Returns the number of nodes added.  Safe (a no-op)
        when nothing is queued, including under ``deep_levels="inline"``.

        The service layer schedules this off the ingest path — on the
        persistent shard executor when a ``DriftRule`` fires or every N
        chunks (:class:`repro.service.FleetMonitor`).
        """
        self._require_fitted()
        n_entries = len(self._deep_pending)
        if max_entries is not None:
            n_entries = min(n_entries, max(int(max_entries), 0))
        if n_entries == 0:
            return 0
        t_start = now() if OBS.enabled else 0.0
        added = 0
        for _ in range(n_entries):
            entry = self._deep_pending.pop(0)
            chunk_tree = compute_mrdmd(
                entry["residual"], self.dt, self._chunk_config()
            )
            for node in chunk_tree:
                self._tree.add(
                    node.copy_with(
                        level=node.level + 1 + entry["shifts"],
                        start=node.start + entry["start"],
                        bin_index=node.bin_index + 1,
                    )
                )
                added += 1
        if OBS.enabled:
            OBS.record("core.deep_refresh", now() - t_start,
                       entries=int(n_entries), new_nodes=int(added))
            OBS.gauge("core.deep.queue_depth", len(self._deep_pending))
        return added

    # ------------------------------------------------------------------ #
    # Elastic topology: streaming new sensor rows
    # ------------------------------------------------------------------ #
    def add_rows(self, new_rows: int | np.ndarray) -> TopologyChange:
        """Fold new *sensor rows* into a live decomposition (topology event).

        This closes the paper's stated future-work loop ("add new entire
        time series or sensor measurements incrementally") end to end:

        * ``new_rows`` as an **int** onboards that many sensors *now*, with
          no history — their pre-birth timeline is treated as missing
          (zero-filled), which makes the whole event O(k) in the number of
          new sensors and **independent of the stream length**: the iSVD
          takes its all-zero-rows fast path (no right-factor
          materialisation), the ``Y Vh^H`` cross product gains zero rows,
          and existing tree nodes gain zero mode rows.
        * ``new_rows`` as a ``(r, T)`` **array** back-fills caller-supplied
          history over the full ingested timeline (NaNs are zero-filled);
          the basis extension then genuinely reads every retained column,
          so this form is O(T) by necessity.

        Either way the mode-tree revision is bumped exactly once, so every
        derived cache (mode tables, reconstruction windows, power-quantile
        thresholds) and every revision-tracking baseline invalidates
        correctly, and subsequent :meth:`partial_fit` chunks must carry the
        grown row count.  Returns the :class:`TopologyChange` record (also
        appended to :attr:`topology_history` and checkpointed).
        """
        self._require_fitted()
        t_now = self._n_snapshots
        if isinstance(new_rows, (int, np.integer)):
            r = int(new_rows)
            if r < 1:
                raise ValueError(f"new_rows must be >= 1, got {new_rows!r}")
            history = None
        else:
            history = np.asarray(new_rows, dtype=float)
            if history.ndim == 1:
                history = history[None, :]
            if history.ndim != 2:
                raise ValueError(
                    f"new_rows must be an int or a 1-D/2-D array, "
                    f"got shape {history.shape!r}"
                )
            if history.shape[1] != t_now:
                raise ValueError(
                    f"history must cover the full ingested timeline: model has "
                    f"{t_now} snapshots, history has {history.shape[1]}"
                )
            r = history.shape[0]
            if r == 0:
                raise ValueError("new_rows must contain at least one row")
            # Pre-birth gaps in supplied history are missing data by
            # definition; zero-fill regardless of the ingest policy.
            history = np.nan_to_num(history, nan=0.0, posinf=0.0, neginf=0.0)
        birth = 0 if history is not None else t_now

        n_sub = self._sub_offset + self._sub.n_cols
        stride = self._level1_stride

        # ---- 1. widen the level-1 grid ------------------------------- #
        stored_abs = np.arange(self._sub_offset, n_sub) * stride
        if history is not None:
            grid_rows = np.ascontiguousarray(history[:, stored_abs])
        else:
            grid_rows = np.zeros((r, stored_abs.size), dtype=float)
        self._sub.add_rows(grid_rows)

        # ---- 2. extend the iSVD basis and the cross product ---------- #
        if self._isvd is not None and self._isvd.initialized:
            if history is not None:
                isvd_rows = np.ascontiguousarray(
                    history[:, np.arange(self._isvd.n_columns) * stride]
                )
            else:
                isvd_rows = np.zeros((r, self._isvd.n_columns), dtype=float)
            self._isvd.add_rows(isvd_rows)
            if self._level1_cross is not None:
                cross = self._level1_cross
                # The row-append rotates Vh (no-op on the zero fast path);
                # advance the existing rows through the recorded ops, then
                # append the new rows' Y Vh^H block.
                for op in self._isvd.last_update_ops:
                    cross = cross @ op[1].conj().T
                if history is not None:
                    y_rows = np.ascontiguousarray(
                        history[:, np.arange(1, n_sub) * stride]
                    )
                    new_cross_rows = y_rows @ self._isvd.vh.conj().T
                else:
                    new_cross_rows = np.zeros((r, cross.shape[1]), dtype=cross.dtype)
                self._level1_cross = np.vstack([cross, new_cross_rows])

        # ---- 3. widen the mode tree and bookkeeping ------------------ #
        self._tree.add_features(r)
        self._level1_modes = np.vstack(
            [
                self._level1_modes,
                np.zeros((r, self._level1_modes.shape[1]), dtype=complex),
            ]
        )
        if self.retain_data == "all":
            if history is not None:
                self._data.add_rows(history)
            else:
                self._data.add_rows(np.zeros((r, self._data.n_cols), dtype=float))
        elif self.retain_data == "window":
            w = self._data.shape[1]
            if history is not None:
                block = history[:, t_now - w : t_now]
            else:
                block = np.zeros((r, w), dtype=float)
            self._data = np.ascontiguousarray(np.vstack([self._data, block]))

        self._n_features += r
        self._row_birth = np.concatenate(
            [self._row_birth, np.full(r, birth, dtype=int)]
        )
        change = TopologyChange(
            step=birth,
            n_new_rows=r,
            total_rows=self._n_features,
            backfilled=history is not None,
            tree_revision=self._tree.revision,
        )
        self._topology.append(change)
        return change

    # ------------------------------------------------------------------ #
    # Serialisation (checkpoint / restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Full model state as plain containers (for checkpointing).

        Everything :meth:`partial_fit` depends on is captured — the mode
        tree, the level-1 iSVD factors, the subsampled level-1 matrix, the
        stride/bookkeeping counters, the previous slow modes and the update
        history — so a model restored with :meth:`from_state_dict` resumes
        the stream bit-for-bit where the original left off.
        """
        self._require_fitted()
        if self.retain_data == "all":
            retained = self._data.materialize()
        elif self.retain_data == "window":
            retained = self._data
        else:
            retained = None
        return {
            "dt": self.dt,
            "config": asdict(self.config),
            "drift_threshold": self.drift_threshold,
            "keep_data": self.keep_data,
            "retain_data": self.retain_data,
            "retain_window": self.retain_window,
            "level1_path": self.level1_path,
            "lazy_vh": self.lazy_vh,
            "missing_values": self.missing_values,
            "deep_levels": self.deep_levels,
            "deep_pending": [
                {
                    "start": int(entry["start"]),
                    "shifts": int(entry["shifts"]),
                    "residual": entry["residual"],
                }
                for entry in self._deep_pending
            ],
            "level1_stride": self._level1_stride,
            "sub_offset": self._sub_offset,
            "next_sub_index": self._next_sub_index,
            "n_snapshots": self._n_snapshots,
            "n_features": self._n_features,
            "stale": self._stale,
            "sub": None if self._sub is None else self._sub.materialize(),
            "level1_modes": self._level1_modes,
            "level1_cross": self._level1_cross,
            "data": retained,
            "isvd": None if self._isvd is None else self._isvd.to_dict(),
            "tree": self._tree.to_dict(),
            "history": [asdict(record) for record in self._history],
            "row_birth": self._row_birth,
            "topology": [asdict(change) for change in self._topology],
        }

    def is_topology_bearing(self) -> bool:
        """Whether this state can only resume on elastic-aware code.

        True once rows have joined mid-stream, the level-1 grid has been
        shrunk to its trailing column, or deferred deep-level work is
        queued — pre-elastic loaders would silently mis-resume such state
        (dropping queued refreshes on the floor), so checkpoints carrying
        it are stamped with a newer format version (see
        :mod:`repro.service.checkpoint`).
        """
        return (
            bool(self._topology)
            or self._sub_offset > 0
            or bool(self._deep_pending)
        )

    @classmethod
    def from_state_dict(cls, state: dict) -> "IncrementalMrDMD":
        """Rebuild a fitted model from :meth:`state_dict` output.

        Checkpoints written before the streaming-core overhaul lack the
        ``retain_data`` / ``level1_cross`` keys: retention is then derived
        from ``keep_data`` and the level-1 cross product is recomputed
        from the stored subsampled matrix and factors, so old checkpoints
        keep resuming (deterministically, via the same batch product the
        initial fit uses).
        """
        model = cls(
            dt=float(state["dt"]),
            config=MrDMDConfig(**state["config"]),
            drift_threshold=state["drift_threshold"],
            keep_data=bool(state["keep_data"]),
            retain_data=state.get("retain_data"),
            retain_window=int(state.get("retain_window", 4096)),
            level1_path=str(state.get("level1_path", "projected")),
            lazy_vh=bool(state.get("lazy_vh", True)),
            missing_values=str(state.get("missing_values", "raise")),
            deep_levels=str(state.get("deep_levels", "inline")),
        )
        model._deep_pending = [
            {
                "start": int(entry["start"]),
                "shifts": int(entry["shifts"]),
                "residual": np.asarray(entry["residual"], dtype=float),
            }
            for entry in state.get("deep_pending", [])
        ]
        model._tree = MrDMDTree.from_dict(state["tree"])
        model._isvd = (
            None if state["isvd"] is None else IncrementalSVD.from_dict(state["isvd"])
        )
        model._level1_stride = int(state["level1_stride"])
        model._sub_offset = int(state.get("sub_offset", 0))
        model._next_sub_index = int(state["next_sub_index"])
        model._n_snapshots = int(state["n_snapshots"])
        model._n_features = int(state["n_features"])
        model._stale = bool(state["stale"])
        model._sub = (
            None
            if state["sub"] is None
            else GrowableMatrix.from_array(np.asarray(state["sub"], dtype=float))
        )
        model._level1_modes = np.asarray(state["level1_modes"], dtype=complex)
        cross = state.get("level1_cross")
        if cross is not None:
            model._level1_cross = np.asarray(cross, dtype=float)
        elif (
            model.level1_path == "projected"
            and model._isvd is not None
            and model._isvd.initialized
            and model._sub is not None
            and model._sub.n_cols >= 2
        ):
            model._level1_cross = model._initial_cross(model._sub.view())
        raw = state["data"]
        if raw is None:
            model._data = None
        elif model.retain_data == "all":
            model._data = GrowableMatrix.from_array(np.asarray(raw, dtype=float))
        else:
            model._data = np.asarray(raw, dtype=float)
        model._history = [UpdateRecord(**record) for record in state["history"]]
        # Pre-elastic checkpoints lack the provenance keys: every row is
        # then original (birth 0) with no topology events.
        birth = state.get("row_birth")
        model._row_birth = (
            np.zeros(model._n_features, dtype=int)
            if birth is None
            else np.asarray(birth, dtype=int)
        )
        model._topology = [
            TopologyChange(**change) for change in state.get("topology", [])
        ]
        return model

    # ------------------------------------------------------------------ #
    # Refresh / accuracy
    # ------------------------------------------------------------------ #
    def refresh(self) -> MrDMDTree:
        """Recompute the whole tree from the retained raw data (batch mrDMD).

        This is the "asynchronous recomputation of levels 2..L" the paper
        defers to operators when the drift threshold is crossed.  Requires
        the full raw timeline (``retain_data="all"`` /
        ``keep_data=True``).  The refreshed tree replaces the incremental
        one and the stale flag is cleared.
        """
        self._require_fitted()
        if self.retain_data != "all" or self._data is None:
            raise RuntimeError(
                "refresh() requires retain_data='all' (keep_data=True)"
            )
        self._tree = compute_mrdmd(self._data.materialize(), self.dt, self.config)
        level1_nodes = self._tree.nodes_at_level(1)
        self._level1_modes = (
            level1_nodes[0].modes.copy()
            if level1_nodes
            else np.zeros((self._n_features, 0), dtype=complex)
        )
        self._stale = False
        # The batch recompute covers every timeline column, so any queued
        # deferred deep-level work is subsumed.
        self._deep_pending = []
        return self._tree

    def reconstruct(self, **kwargs) -> np.ndarray:
        """Reconstruct the ingested timeline from the current tree (Eq. 7)."""
        self._require_fitted()
        return self._tree.reconstruct(self._n_snapshots, **kwargs)

    def retained_data(self) -> np.ndarray | None:
        """Copy of the retained raw snapshots (``None`` under ``"none"``).

        Under ``retain_data="window"`` this is the trailing window only;
        :meth:`retained_range` gives its absolute snapshot indices.
        """
        if self._data is None:
            return None
        if isinstance(self._data, GrowableMatrix):
            return self._data.materialize()
        return self._data.copy()

    def retained_range(self) -> tuple[int, int] | None:
        """Absolute ``[start, stop)`` snapshot range of the retained data."""
        if self._data is None:
            return None
        n_kept = (
            self._data.n_cols
            if isinstance(self._data, GrowableMatrix)
            else self._data.shape[1]
        )
        return (self._n_snapshots - n_kept, self._n_snapshots)

    def reconstruction_error(self, reference: np.ndarray | None = None) -> float:
        """Frobenius norm ``||X - X_hat||_F`` of the reconstruction error.

        ``reference`` defaults to the retained raw data (requires
        ``keep_data=True``).  This is the quantity the paper reports for
        both case studies (3958.58 and 3423.85).
        """
        self._require_fitted()
        if reference is None:
            if self.retain_data != "all" or self._data is None:
                raise RuntimeError(
                    "reconstruction_error() without a reference requires "
                    "retain_data='all' (keep_data=True)"
                )
            reference = self._data.view()
        reference = np.asarray(reference, dtype=float)
        if reference.shape != (self._n_features, self._n_snapshots):
            raise ValueError(
                f"reference shape {reference.shape} does not match ingested data "
                f"({self._n_features}, {self._n_snapshots})"
            )
        return float(np.linalg.norm(reference - self.reconstruct()))

    def incremental_vs_batch_gap(self, reference: np.ndarray) -> float:
        """Difference between incremental and batch reconstruction errors (Q2).

        Computes ``|err_incremental - err_batch|`` on ``reference`` (the raw
        data the model has seen), i.e. how much accuracy the incremental
        shortcut gives up relative to recomputing mrDMD from scratch.
        """
        self._require_fitted()
        reference = np.asarray(reference, dtype=float)
        batch_tree = compute_mrdmd(reference, self.dt, self.config)
        err_batch = float(np.linalg.norm(reference - batch_tree.reconstruct(reference.shape[1])))
        err_inc = self.reconstruction_error(reference)
        return abs(err_inc - err_batch)

"""Batched shard kernels: stacked BLAS over same-shape iSVD updates.

A fleet step runs one :meth:`IncrementalSVD.update` per shard.  In steady
state the shards agree on every shape that matters — same retained rank
``q``, same update-block width ``c``, same state dimension ``P`` (the
sharding policies split sensors evenly) and same dtype — so the two large
GEMMs of the Brand update,

.. math::

    L = U^H C, \\qquad R = C - U L,

can be issued as *stacked* 3-D products over ``(k, P, q)`` / ``(k, P, c)``
operands.  NumPy dispatches each 2-D slice of a stacked ``matmul`` to the
same cblas GEMM call the per-shard path makes, so the batched results are
**bit-for-bit identical** to looping — verified by the parity suite in
``tests/test_batchops.py``.  The per-shard tail (thin QR, core SVD,
truncation, rotation bookkeeping) has no batched LAPACK form and stays a
loop, through the exact code :meth:`IncrementalSVD.update` runs
(:meth:`IncrementalSVD._finish_update`).

:class:`ShardBatchPlanner` is the dispatch layer: it groups a round of
``(isvd, update_block)`` pairs by shape signature, runs groups of two or
more through the stacked kernel, and falls back to plain per-shard
updates for singleton groups — which is automatically what happens across
growth events (``add_shard`` / ``add_sensors``) and rank divergence,
because those shards stop sharing a signature.  The fallback is not a
degraded mode: it *is* the unbatched path.

Instrumentation (all under the serial backend that batches):
``core.batch.rounds`` / ``core.batch.shards`` counters, the
``core.batch.grouped`` / ``core.batch.fallback`` split, and a
``core.batch.kernel`` span around the stacked GEMMs.  These exist only
where batching runs, so the cross-backend metric parity suite excludes
``core.batch`` instruments the same way it excludes ``executor.*`` ones.
"""

from __future__ import annotations

import numpy as np

from ..obs import OBS
from ..util.timer import now
from .isvd import IncrementalSVD

__all__ = ["ShardBatchPlanner", "batch_signature"]


def batch_signature(isvd: IncrementalSVD, block: np.ndarray) -> tuple | None:
    """Shape signature under which updates can share a stacked kernel.

    ``None`` means "never batch this one": uninitialised factors take the
    batch-initialise path inside :meth:`IncrementalSVD.update`, and
    non-2-D blocks are coerced there too — both are handled by the plain
    per-shard call.
    """
    if not isvd.initialized:
        return None
    block = np.asarray(block)
    if block.ndim != 2 or block.shape[1] == 0:
        return None  # empty updates are a bookkeeping no-op in update()
    u = isvd.u
    if block.shape[0] != u.shape[0]:
        return None  # let update() raise the precise error
    return (u.shape[0], u.shape[1], block.shape[1], u.dtype.str, block.dtype.str)


class ShardBatchPlanner:
    """Group a round of per-shard iSVD updates into stacked BLAS calls.

    Usage is one call per fleet round::

        planner = ShardBatchPlanner()
        planner.run([(isvd_a, block_a), (isvd_b, block_b), ...])

    Each pair is folded into its ``IncrementalSVD`` exactly as
    ``isvd.update(block)`` would — same factors, same queued right-factor
    ops, same re-orthogonalisation schedule, same OBS instruments — but
    pairs whose :func:`batch_signature` agrees share their two large GEMMs
    as a single stacked 3-D ``matmul`` each.

    Parameters
    ----------
    min_group:
        Smallest signature group worth stacking (default 2; a stack of
        one is just the plain call with extra copies).
    """

    def __init__(self, *, min_group: int = 2) -> None:
        if min_group < 2:
            raise ValueError("min_group must be >= 2")
        self.min_group = int(min_group)

    def run(self, updates: list[tuple[IncrementalSVD, np.ndarray]]) -> dict:
        """Execute one round of updates; returns dispatch statistics.

        The returned dict has ``n_shards``, ``n_grouped`` (shards that
        went through a stacked kernel), ``n_fallback`` (plain per-shard
        calls) and ``n_groups`` (stacked kernels issued).
        """
        groups: dict[tuple, list[int]] = {}
        signatures: list[tuple | None] = []
        for index, (isvd, block) in enumerate(updates):
            signature = batch_signature(isvd, block)
            signatures.append(signature)
            if signature is not None:
                groups.setdefault(signature, []).append(index)

        n_grouped = 0
        n_groups = 0
        batched: set[int] = set()
        for signature, members in groups.items():
            if len(members) < self.min_group:
                continue
            self._run_group([updates[i] for i in members])
            batched.update(members)
            n_grouped += len(members)
            n_groups += 1
        for index, (isvd, block) in enumerate(updates):
            if index not in batched:
                isvd.update(block)

        stats = {
            "n_shards": len(updates),
            "n_grouped": n_grouped,
            "n_fallback": len(updates) - n_grouped,
            "n_groups": n_groups,
        }
        if OBS.enabled and updates:
            OBS.inc("core.batch.rounds")
            OBS.inc("core.batch.shards", len(updates))
            OBS.inc("core.batch.grouped", n_grouped)
            OBS.inc("core.batch.fallback", stats["n_fallback"])
        return stats

    @staticmethod
    def _run_group(members: list[tuple[IncrementalSVD, np.ndarray]]) -> None:
        """Stacked projection + residual GEMMs, then the shared tail.

        ``np.stack`` yields C-contiguous 3-D operands, so ``matmul``
        issues the identical cblas GEMM per slice that the 2-D per-shard
        call would — each slice of ``l_stack`` / ``r_stack`` is bitwise
        equal to ``u.conj().T @ block`` / ``block - u @ l``.
        """
        t_start = now() if OBS.enabled else 0.0
        dtype = members[0][0].dtype
        u_stack = np.stack([isvd.u for isvd, _ in members])
        c_stack = np.stack(
            [np.asarray(block, dtype=dtype) for _, block in members]
        )
        with OBS.span("core.batch.kernel", shards=len(members),
                      rank=int(u_stack.shape[2]), cols=int(c_stack.shape[2])):
            l_stack = np.matmul(u_stack.conj().transpose(0, 2, 1), c_stack)
            r_stack = c_stack - np.matmul(u_stack, l_stack)
        for index, (isvd, _) in enumerate(members):
            isvd._finish_update(l_stack[index], r_stack[index], t_start)

"""Incremental (streaming) truncated singular value decomposition.

The enabling kernel of the paper's I-mrDMD is an *incremental SVD update*:
after an initial truncated SVD of the level-1 snapshot matrix has been
computed, newly arriving snapshot columns are folded into the factors
without touching the original data (Sec. III-A-1, reference [46]:
Kuehl, Fischer, Hinze & Rung, "An incremental singular value decomposition
approach for large-scale spatially parallel & distributed but temporally
serial data", CPC 2024).

The update follows Brand's additive modification scheme specialised to
column (snapshot) appends:

.. math::

    X = U \\Sigma V^H,\\qquad
    [X\\;\\; C] = \\begin{bmatrix} U & J \\end{bmatrix}
    \\begin{bmatrix} \\Sigma & U^H C \\\\ 0 & K \\end{bmatrix}
    \\begin{bmatrix} V & 0 \\\\ 0 & I \\end{bmatrix}^H

where ``J K = (I - U U^H) C`` is a thin QR of the out-of-subspace residual.
The small ``(q + c) x (q + c)`` core matrix is re-diagonalised with a dense
SVD and the factors are rotated and re-truncated.

**Cost.**  The left factors and singular values are updated in
``O(P (q + c)^2)`` per call.  The right factor ``Vh`` has ``T`` columns
(one per snapshot folded in), so rotating it eagerly would cost an extra
``O(q^2 T)`` *per update* — ``O(T^2)`` summed over a stream, which is
exactly the degradation Table I and Fig. 9 rule out.  :meth:`IncrementalSVD.update`
therefore never touches ``Vh``: each update appends its small ``(r, q)``
core rotation and ``(r, c)`` new-column block to a pending list, and the
full ``Vh`` is materialised only when a caller actually asks for it
(:attr:`~IncrementalSVD.vh`, :meth:`~IncrementalSVD.factors`,
:meth:`~IncrementalSVD.to_dict`, :meth:`~IncrementalSVD.add_rows`).
Materialisation replays the pending rotations in their original order with
the exact matrix products the eager scheme would have issued, so the
result is bit-for-bit identical to eager per-update rotation
(``lazy_rotation=False``) — it just pays the ``O(q^2 T)`` once per access
instead of once per update.

The "spatially parallel / temporally serial" structure of the reference
means the row blocks of ``U`` can be updated independently once the small
core SVD is known (see :func:`blockwise_rotate`); the lazy right factor is
the "temporally serial" half of the same argument — new snapshots never
force a pass over old ones.

"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import OBS
from ..util.timer import now
from .svht import svht_rank

__all__ = ["IncrementalSVD", "ISVDState", "blockwise_rotate"]


@dataclass
class ISVDState:
    """Immutable snapshot of the factor state ``(U, s, Vh)``.

    ``u`` has shape ``(P, q)``, ``s`` shape ``(q,)`` (non-increasing) and
    ``vh`` shape ``(q, T)`` where ``T`` is the number of columns folded in
    so far.
    """

    u: np.ndarray
    s: np.ndarray
    vh: np.ndarray

    @property
    def rank(self) -> int:
        return int(self.s.size)

    @property
    def n_rows(self) -> int:
        return int(self.u.shape[0])

    @property
    def n_cols(self) -> int:
        return int(self.vh.shape[1])

    def reconstruct(self) -> np.ndarray:
        """Dense reconstruction ``U diag(s) Vh`` (for testing / diagnostics)."""
        return (self.u * self.s[None, :]) @ self.vh


def blockwise_rotate(u_blocks: list[np.ndarray], rotation: np.ndarray) -> list[np.ndarray]:
    """Apply the core rotation to row blocks of the basis independently.

    This is the "spatially parallel" half of the reference algorithm: each
    distributed row block ``U_b`` is updated as ``U_b @ rotation`` with no
    communication beyond the (tiny) shared rotation matrix.  Used by the
    process-pool helper in :mod:`repro.util.parallel`; kept here so the
    numerical contract lives next to the serial implementation.
    """
    return [np.asarray(block) @ rotation for block in u_blocks]


class IncrementalSVD:
    """Rank-``q`` truncated SVD maintained under streaming column appends.

    Parameters
    ----------
    rank:
        Maximum retained rank ``q``.  ``None`` lets the SVHT rule decide at
        every step (bounded by ``max_rank_cap``).
    use_svht:
        When ``True`` (default) re-truncate with the Gavish--Donoho
        threshold after every update, mirroring the batch DMD path.
    max_rank_cap:
        Absolute upper bound on the retained rank, protecting against
        unbounded growth when SVHT keeps everything.
    reorthogonalize_every:
        Left-basis orthogonality degrades slowly as updates accumulate;
        every this-many updates (counting both :meth:`update` and
        :meth:`add_rows` calls) a thin QR re-orthogonalisation is applied.
        ``0`` disables it.
    lazy_rotation:
        When ``True`` (default) the right factor ``Vh`` is not rotated
        during :meth:`update`; the small core rotations are queued and
        replayed on first access, making ``update`` genuinely
        ``O(P (q + c)^2)``.  ``False`` restores eager per-update rotation
        (the pre-optimisation behaviour); both settings yield bit-for-bit
        identical factors because materialisation replays the exact
        per-update products in order.
    dtype:
        Working dtype (default ``float64``).

    Notes
    -----
    The class never stores the raw data matrix: memory is
    ``O(P q + q T)``, which is what makes week-scale environment logs
    tractable (terabytes of raw samples vs megabytes of factors).
    """

    def __init__(
        self,
        rank: int | None = None,
        *,
        use_svht: bool = True,
        max_rank_cap: int = 512,
        reorthogonalize_every: int = 16,
        lazy_rotation: bool = True,
        dtype: np.dtype | type = np.float64,
    ) -> None:
        if rank is not None and rank < 1:
            raise ValueError(f"rank must be >= 1 or None, got {rank!r}")
        if max_rank_cap < 1:
            raise ValueError("max_rank_cap must be >= 1")
        if reorthogonalize_every < 0:
            raise ValueError("reorthogonalize_every must be >= 0")
        self.rank = rank
        self.use_svht = use_svht
        self.max_rank_cap = int(max_rank_cap)
        self.reorthogonalize_every = int(reorthogonalize_every)
        self.lazy_rotation = bool(lazy_rotation)
        self.dtype = np.dtype(dtype)
        self._u: np.ndarray | None = None
        self._s: np.ndarray | None = None
        self._vh: np.ndarray | None = None
        # Right-factor rotations not yet applied to ``_vh``, oldest first.
        # Ops are ("extend", R, B): Vh <- [R @ Vh, B], or ("rotate", M):
        # Vh <- M @ Vh (re-orthogonalisation).
        self._pending_vh_ops: list[tuple] = []
        # Ops issued by the most recent update()/add_rows() call, for
        # callers that maintain products against Vh incrementally (the
        # I-mrDMD level-1 cross product) without materialising it.
        self._last_update_ops: list[tuple] = []
        self._n_cols_seen = 0
        self._n_updates = 0

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def initialized(self) -> bool:
        """Whether :meth:`initialize` (or the first update) has run."""
        return self._u is not None

    @property
    def state(self) -> ISVDState:
        """Current factors as an :class:`ISVDState` (copies are not made)."""
        self._require_initialized()
        self._materialize_vh()
        return ISVDState(u=self._u, s=self._s, vh=self._vh)

    @property
    def pending_rotations(self) -> int:
        """Number of right-factor ops queued but not yet applied to ``Vh``."""
        return len(self._pending_vh_ops)

    @property
    def last_update_ops(self) -> list[tuple]:
        """Right-factor ops issued by the most recent update, oldest first.

        Each op is either ``("extend", R, B)`` — ``Vh <- [R @ Vh, B]`` with
        ``R`` of shape ``(r, q_prev)`` and ``B`` of shape ``(r, c)`` — or
        ``("rotate", M)`` — ``Vh <- M @ Vh``.  Consumers that maintain a
        product ``G = A @ Vh^H`` apply ``G <- G @ R^H + A_new @ B^H`` and
        ``G <- G @ M^H`` respectively, staying ``O(P q^2)`` per update
        instead of touching the ``(q, T)`` factor.
        """
        return list(self._last_update_ops)

    @property
    def current_rank(self) -> int:
        self._require_initialized()
        return int(self._s.size)

    @property
    def n_columns(self) -> int:
        """Total number of snapshot columns folded in so far."""
        return self._n_cols_seen

    def _require_initialized(self) -> None:
        if not self.initialized:
            raise RuntimeError("IncrementalSVD has not been initialized with data yet")

    # ------------------------------------------------------------------ #
    # Fitting
    # ------------------------------------------------------------------ #
    def _truncation_rank(self, s: np.ndarray, shape: tuple[int, int]) -> int:
        if self.use_svht:
            decision = svht_rank(s, shape, max_rank=self.rank or self.max_rank_cap)
            r = decision.rank
        else:
            r = s.size if self.rank is None else min(self.rank, s.size)
        return int(min(max(r, 1), self.max_rank_cap, s.size)) if s.size else 0

    def initialize(self, data: np.ndarray) -> "IncrementalSVD":
        """Batch-initialise the factors from an initial ``(P, T0)`` block."""
        data = np.asarray(data, dtype=self.dtype)
        if data.ndim != 2:
            raise ValueError(f"data must be 2-D, got shape {data.shape!r}")
        if data.shape[1] < 1:
            raise ValueError("initial block must contain at least one column")
        t_start = now() if OBS.enabled else 0.0
        u, s, vh = np.linalg.svd(data, full_matrices=False)
        r = self._truncation_rank(s, data.shape)
        self._u = np.ascontiguousarray(u[:, :r])
        self._s = np.ascontiguousarray(s[:r])
        self._vh = np.ascontiguousarray(vh[:r, :])
        self._pending_vh_ops = []
        self._last_update_ops = []
        self._n_cols_seen = data.shape[1]
        self._n_updates = 0
        if OBS.enabled:
            OBS.record("core.isvd.initialize", now() - t_start,
                       cols=int(data.shape[1]), rank=int(r))
            OBS.gauge("core.isvd.rank", int(r))
        return self

    def update(self, new_columns: np.ndarray) -> "IncrementalSVD":
        """Fold ``(P, c)`` new snapshot columns into the factors.

        The first call on an uninitialised object falls back to
        :meth:`initialize`.
        """
        c_block = np.asarray(new_columns, dtype=self.dtype)
        if c_block.ndim == 1:
            c_block = c_block[:, None]
        if c_block.ndim != 2:
            raise ValueError(f"new_columns must be 1-D or 2-D, got shape {c_block.shape!r}")
        if not self.initialized:
            return self.initialize(c_block)
        if c_block.shape[0] != self._u.shape[0]:
            raise ValueError(
                f"row-count mismatch: factors have {self._u.shape[0]} rows, "
                f"update has {c_block.shape[0]}"
            )
        if c_block.shape[1] == 0:
            self._last_update_ops = []
            return self

        t_start = now() if OBS.enabled else 0.0
        u = self._u

        # Project onto the current subspace and extract the residual.
        l_proj = u.conj().T @ c_block              # (q, c)
        residual = c_block - u @ l_proj            # (P, c)
        return self._finish_update(l_proj, residual, t_start)

    def _finish_update(
        self, l_proj: np.ndarray, residual: np.ndarray, t_start: float
    ) -> "IncrementalSVD":
        """Complete a column update from a precomputed projection/residual.

        This is the tail of :meth:`update` — thin QR of the residual, core
        re-diagonalisation, truncation, left-basis rotation, right-factor op
        queueing and bookkeeping.  It is split out so the batched shard
        kernel (:mod:`repro.core.batchops`) can compute the two large GEMMs
        (``U^H C`` and ``C - U L``) for many same-shape shards as stacked
        3-D products and then run this exact per-shard tail, keeping the
        batched path bit-for-bit identical to :meth:`update`.
        """
        u, s = self._u, self._s
        q = s.size
        c = l_proj.shape[1]

        # Thin QR of the residual: J is (P, k_cols), K is (k_cols, c) with
        # k_cols = min(P, c) -- the update block may be wider than the state
        # dimension, in which case the residual subspace saturates at P.
        j, k = np.linalg.qr(residual)
        k_cols = j.shape[1]

        # Core matrix: [[diag(s), L], [0, K]] of shape (q + k_cols, q + c).
        core = np.zeros((q + k_cols, q + c), dtype=self.dtype)
        core[:q, :q] = np.diag(s)
        core[:q, q:] = l_proj
        core[q:, q:] = k

        cu, cs, cvh = np.linalg.svd(core, full_matrices=False)

        total_cols = self._n_cols_seen + c
        r = self._truncation_rank(cs, (u.shape[0], total_cols))
        r = min(r, cs.size)

        # Rotate the left basis:  [U J] @ cu  (spatially parallel step).
        new_u = np.hstack([u, j]) @ cu[:, :r]
        # The right factor becomes [cvh[:r, :q] @ Vh, cvh[:r, q:]] — a
        # small rotation plus an appended identity-block image.  Queue it
        # instead of touching the (q, T) factor (temporally serial step).
        ops: list[tuple] = [("extend", cvh[:r, :q], cvh[:r, q:])]
        self._pending_vh_ops.append(ops[0])

        self._u = new_u
        self._s = np.ascontiguousarray(cs[:r])
        self._n_cols_seen = total_cols
        self._n_updates += 1

        if self.reorthogonalize_every and self._n_updates % self.reorthogonalize_every == 0:
            ops.append(self._reorthogonalize())
            OBS.inc("core.isvd.reorth")
        self._last_update_ops = ops
        if not self.lazy_rotation:
            self._materialize_vh()
        if OBS.enabled:
            OBS.record("core.isvd.update", now() - t_start, cols=int(c), rank=int(r))
            OBS.gauge("core.isvd.rank", int(r))
        return self

    def partial_fit(self, new_columns: np.ndarray) -> "IncrementalSVD":
        """Alias of :meth:`update` matching the scikit-learn streaming idiom."""
        return self.update(new_columns)

    def add_rows(self, new_rows: np.ndarray) -> "IncrementalSVD":
        """Fold ``(r, T)`` new *sensor rows* into the factors.

        This is the building block for the paper's stated future-work
        extension ("extend the I-mrDMD approach to add new entire time
        series or sensor measurements incrementally"): given
        ``X = U diag(s) Vh`` and new rows ``R`` covering the same ``T``
        columns, the stacked matrix factors as::

            [[X], [R]] = [[U, 0], [0, I]] @ [[diag(s)], [R V]] @ Vh

        so only the small ``(q + r) x q`` core needs a dense SVD.  The
        update costs ``O((q + r) q^2 + r T q)`` — it genuinely reads every
        retained column (``R V``), so this call materialises a lazily
        rotated ``Vh`` first — and re-truncates with the same rank rule as
        column updates.  It also participates in the same
        ``reorthogonalize_every`` schedule as :meth:`update` (the basis
        drifts identically whichever direction the factors grow in).
        """
        rows = np.asarray(new_rows, dtype=self.dtype)
        if rows.ndim == 1:
            rows = rows[None, :]
        if rows.ndim != 2:
            raise ValueError(f"new_rows must be 1-D or 2-D, got shape {rows.shape!r}")
        self._require_initialized()
        if rows.shape[1] != self.n_columns:
            raise ValueError(
                f"column-count mismatch: factors cover {self.n_columns} columns, "
                f"new rows have {rows.shape[1]}"
            )
        if rows.shape[0] == 0:
            self._last_update_ops = []
            return self
        if not np.any(rows):
            # Fast path for the elastic-topology case: sensors that join a
            # live stream with no back-filled history contribute all-zero
            # rows, and ``[[X], [0]]`` factors *exactly* as
            # ``[[U], [0]] diag(s) Vh`` — the singular values, the right
            # factor (and its pending lazy rotations) and the cross
            # products against ``Vh`` are all unchanged, so nothing is
            # materialised and the call is O(r q), independent of the
            # stream length.  The retained rank is left as-is (the SVHT
            # rule re-evaluates on the next column update anyway).
            self._u = np.vstack(
                [self._u, np.zeros((rows.shape[0], self._u.shape[1]), dtype=self.dtype)]
            )
            self._last_update_ops = []
            return self

        t_start = now() if OBS.enabled else 0.0
        self._materialize_vh()
        u, s, vh = self._u, self._s, self._vh
        q = s.size
        r = rows.shape[0]
        core = np.vstack([np.diag(s), rows @ vh.conj().T])   # (q + r, q)
        cu, cs, cvh = np.linalg.svd(core, full_matrices=False)

        total_rows = u.shape[0] + r
        rank = self._truncation_rank(cs, (total_rows, self._n_cols_seen))
        rank = min(rank, cs.size)

        new_u = np.zeros((total_rows, cu.shape[0]), dtype=self.dtype)
        new_u[: u.shape[0], :q] = u
        new_u[u.shape[0]:, q:] = np.eye(r, dtype=self.dtype)
        self._u = new_u @ cu[:, :rank]
        self._s = np.ascontiguousarray(cs[:rank])
        self._vh = cvh[:rank, :] @ vh
        self._n_updates += 1

        ops: list[tuple] = [("rotate", cvh[:rank, :])]
        if self.reorthogonalize_every and self._n_updates % self.reorthogonalize_every == 0:
            ops.append(self._reorthogonalize())
            OBS.inc("core.isvd.reorth")
            if not self.lazy_rotation:
                self._materialize_vh()
        self._last_update_ops = ops
        if OBS.enabled:
            OBS.record("core.isvd.add_rows", now() - t_start,
                       rows=int(r), rank=int(rank))
            OBS.gauge("core.isvd.rank", int(rank))
        return self

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Serialise configuration + factor state to plain containers.

        The returned dict round-trips exactly through
        :func:`repro.io.storage.save_state` / ``load_state``:
        ``from_dict(to_dict())`` yields an object whose subsequent
        :meth:`update` calls are bit-for-bit identical to the original's
        (including the re-orthogonalisation schedule, which depends on the
        update counter).

        Accessing the state materialises any pending lazy rotations, so
        the serialised ``vh`` is always the fully rotated factor.
        """
        self._materialize_vh()
        return {
            "rank": self.rank,
            "use_svht": self.use_svht,
            "max_rank_cap": self.max_rank_cap,
            "reorthogonalize_every": self.reorthogonalize_every,
            "lazy_rotation": self.lazy_rotation,
            "dtype": self.dtype.name,
            "u": None if self._u is None else self._u,
            "s": None if self._s is None else self._s,
            "vh": None if self._vh is None else self._vh,
            "n_cols_seen": self._n_cols_seen,
            "n_updates": self._n_updates,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "IncrementalSVD":
        """Rebuild an :class:`IncrementalSVD` from :meth:`to_dict` output."""
        obj = cls(
            rank=state["rank"],
            use_svht=bool(state["use_svht"]),
            max_rank_cap=int(state["max_rank_cap"]),
            reorthogonalize_every=int(state["reorthogonalize_every"]),
            lazy_rotation=bool(state.get("lazy_rotation", True)),
            dtype=np.dtype(state["dtype"]),
        )
        if state["u"] is not None:
            obj._u = np.asarray(state["u"], dtype=obj.dtype)
            obj._s = np.asarray(state["s"], dtype=obj.dtype)
            obj._vh = np.asarray(state["vh"], dtype=obj.dtype)
        obj._n_cols_seen = int(state["n_cols_seen"])
        obj._n_updates = int(state["n_updates"])
        return obj

    def _reorthogonalize(self) -> tuple:
        """Restore left-basis orthogonality via a thin QR + core re-SVD.

        The left factors are fixed immediately (they are what degrades and
        what every consumer reads each update); the matching right-factor
        rotation is queued like any other op and returned so the caller
        can expose it through :attr:`last_update_ops`.
        """
        qmat, rmat = np.linalg.qr(self._u)
        ru, rs, rvh = np.linalg.svd(rmat * self._s[None, :], full_matrices=False)
        self._u = qmat @ ru
        self._s = rs
        op = ("rotate", rvh)
        self._pending_vh_ops.append(op)
        return op

    def _materialize_vh(self) -> None:
        """Apply queued right-factor ops to ``Vh``, oldest first.

        The replay issues exactly the matrix products eager per-update
        rotation would have issued, in the same order, so the materialised
        factor is bit-for-bit identical to the eager path no matter when
        (or how often) materialisation happens.
        """
        if not self._pending_vh_ops:
            return
        n_pending = len(self._pending_vh_ops)
        t_start = now() if OBS.enabled else 0.0
        vh = self._vh
        for op in self._pending_vh_ops:
            if op[0] == "extend":
                rotation, block = op[1], op[2]
                n_old = vh.shape[1]
                new_vh = np.empty(
                    (rotation.shape[0], n_old + block.shape[1]), dtype=self.dtype
                )
                np.matmul(rotation, vh, out=new_vh[:, :n_old])
                new_vh[:, n_old:] = block
                vh = new_vh
            else:
                vh = op[1] @ vh
        self._vh = vh
        self._pending_vh_ops = []
        if OBS.enabled:
            OBS.record("core.isvd.rotation", now() - t_start, pending=n_pending)

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    @property
    def u(self) -> np.ndarray:
        self._require_initialized()
        return self._u

    @property
    def s(self) -> np.ndarray:
        self._require_initialized()
        return self._s

    @property
    def vh(self) -> np.ndarray:
        """The ``(q, T)`` right factor (materialises pending rotations)."""
        self._require_initialized()
        self._materialize_vh()
        return self._vh

    def factors(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Return ``(U, s, Vh)`` suitable for ``compute_dmd(svd_factors=...)``.

        Materialises pending lazy rotations: this is the full-``Vh``
        access path, costing ``O(q^2 T)`` when rotations are outstanding.
        Streaming consumers that only need products against ``Vh`` should
        track :attr:`last_update_ops` instead (see
        :func:`repro.core.dmd.compute_dmd_projected`).
        """
        self._require_initialized()
        self._materialize_vh()
        return self._u, self._s, self._vh

    def reconstruction_error(self, data: np.ndarray) -> float:
        """Frobenius-norm error ``||data - U S Vh||_F`` against a reference block."""
        self._require_initialized()
        self._materialize_vh()
        data = np.asarray(data, dtype=self.dtype)
        if data.shape != (self._u.shape[0], self._vh.shape[1]):
            raise ValueError(
                f"reference shape {data.shape} does not match factor shape "
                f"({self._u.shape[0]}, {self._vh.shape[1]})"
            )
        approx = (self._u * self._s[None, :]) @ self._vh
        return float(np.linalg.norm(data - approx))

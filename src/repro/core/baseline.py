"""Baseline selection and z-score change-from-baseline analysis.

The paper (Sec. III-A-2 and both case studies) turns the mrDMD output into
an operator-facing health signal in three steps:

1. **baseline selection** — pick readings that represent "expected" system
   behaviour.  In the case studies this is a simple temperature band
   (46-57 degC for case 1; 45-60 degC / 30-45 degC for the hot and cool
   halves of case 2), but any boolean selector over sensors/time works and
   the user can supply job- or project-specific baselines;
2. **per-measurement statistics** — estimate each measurement's baseline
   magnitude and the standard deviation of the deviation from it (following
   Brunton et al. 2016, reference [1]);
3. **z-scores** — ``z_p = (current_p - baseline_p) / sigma_p``; values in
   ``[-1.5, 1.5]`` count as near-baseline, ``> 2`` as critically hot
   (overheating risk), and strongly negative values as under-utilised /
   stalled nodes.

The resulting per-node z-scores feed the rack-layout view (Figs. 4/6) and
the alignment with hardware/job logs (:mod:`repro.align`).
"""

from __future__ import annotations

import warnings
from dataclasses import dataclass
from enum import Enum

import numpy as np

__all__ = [
    "ZScoreCategory",
    "BaselineSpec",
    "BaselineModel",
    "ZScoreResult",
    "select_baseline_mask",
    "compute_zscores",
    "classify_zscores",
]


class ZScoreCategory(Enum):
    """Operational interpretation of a z-score value (paper Sec. V)."""

    VERY_LOW = "very_low"        # z < -2     : likely idle / stalled node
    LOW = "low"                  # -2 <= z < -1.5
    BASELINE = "baseline"        # -1.5 <= z <= 1.5 : expected behaviour
    ELEVATED = "elevated"        # 1.5 < z <= 2
    VERY_HIGH = "very_high"      # z > 2      : overheating risk


@dataclass(frozen=True)
class BaselineSpec:
    """How to pick baseline readings out of a data matrix.

    Exactly one of the selection mechanisms is typically used; when several
    are given their conjunction applies.

    Attributes
    ----------
    value_range:
        Keep samples whose value lies in ``[low, high]`` — the paper's
        temperature-band baselines.
    time_range:
        Keep snapshots with index in ``[start, stop)``.
    row_indices:
        Restrict to these sensor rows (e.g. the nodes of a reference job).
    min_fraction:
        Minimum fraction of in-range samples a row must have for its
        in-range samples to be trusted; rows below it fall back to the
        global baseline statistics.
    """

    value_range: tuple[float, float] | None = None
    time_range: tuple[int, int] | None = None
    row_indices: np.ndarray | None = None
    min_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.value_range is not None and self.value_range[1] < self.value_range[0]:
            raise ValueError(f"value_range must be (low, high), got {self.value_range!r}")
        if self.time_range is not None and self.time_range[1] < self.time_range[0]:
            raise ValueError(f"time_range must be (start, stop), got {self.time_range!r}")
        if not 0.0 <= self.min_fraction <= 1.0:
            raise ValueError("min_fraction must be in [0, 1]")


def select_baseline_mask(data: np.ndarray, spec: BaselineSpec) -> np.ndarray:
    """Boolean mask over ``data`` (same shape) marking baseline samples."""
    data = np.asarray(data, dtype=float)
    if data.ndim != 2:
        raise ValueError(f"data must be 2-D (P, T), got shape {data.shape!r}")
    mask = np.ones(data.shape, dtype=bool)
    if spec.value_range is not None:
        lo, hi = spec.value_range
        mask &= (data >= lo) & (data <= hi)
    if spec.time_range is not None:
        start, stop = spec.time_range
        col_mask = np.zeros(data.shape[1], dtype=bool)
        col_mask[max(start, 0) : max(stop, 0)] = True
        mask &= col_mask[None, :]
    if spec.row_indices is not None:
        row_mask = np.zeros(data.shape[0], dtype=bool)
        row_mask[np.asarray(spec.row_indices, dtype=int)] = True
        mask &= row_mask[:, None]
    return mask


def compute_zscores(
    current: np.ndarray,
    baseline_mean: np.ndarray | float,
    baseline_std: np.ndarray | float,
    *,
    std_floor: float = 1e-8,
) -> np.ndarray:
    """Elementwise z-scores ``(current - mean) / max(std, std_floor)``."""
    current = np.asarray(current, dtype=float)
    std = np.maximum(np.asarray(baseline_std, dtype=float), std_floor)
    return (current - np.asarray(baseline_mean, dtype=float)) / std


def classify_zscores(
    zscores: np.ndarray,
    *,
    near: float = 1.5,
    extreme: float = 2.0,
) -> np.ndarray:
    """Map z-scores to :class:`ZScoreCategory` values (object array)."""
    if near <= 0 or extreme <= 0 or extreme < near:
        raise ValueError("thresholds must satisfy 0 < near <= extreme")
    z = np.asarray(zscores, dtype=float)
    out = np.empty(z.shape, dtype=object)
    out[...] = ZScoreCategory.BASELINE
    out[z > near] = ZScoreCategory.ELEVATED
    out[z > extreme] = ZScoreCategory.VERY_HIGH
    out[z < -near] = ZScoreCategory.LOW
    out[z < -extreme] = ZScoreCategory.VERY_LOW
    return out


@dataclass
class ZScoreResult:
    """Per-measurement z-scores plus derived summaries.

    Attributes
    ----------
    zscores:
        1-D array, one value per sensor/node row.
    categories:
        :class:`ZScoreCategory` per row.
    baseline_mean / baseline_std:
        The per-row statistics used.
    near / extreme:
        The classification thresholds used (paper defaults 1.5 / 2).
    """

    zscores: np.ndarray
    categories: np.ndarray
    baseline_mean: np.ndarray
    baseline_std: np.ndarray
    near: float = 1.5
    extreme: float = 2.0

    def counts(self) -> dict[ZScoreCategory, int]:
        """Number of rows in each category."""
        return {cat: int(np.sum(self.categories == cat)) for cat in ZScoreCategory}

    def hot_rows(self) -> np.ndarray:
        """Indices of rows flagged VERY_HIGH (overheating risk)."""
        return np.flatnonzero(self.categories == ZScoreCategory.VERY_HIGH)

    def cold_rows(self) -> np.ndarray:
        """Indices of rows flagged VERY_LOW (idle / stalled)."""
        return np.flatnonzero(self.categories == ZScoreCategory.VERY_LOW)

    def baseline_rows(self) -> np.ndarray:
        """Indices of rows within the near-baseline band."""
        return np.flatnonzero(self.categories == ZScoreCategory.BASELINE)

    def fraction_outside_baseline(self) -> float:
        """Fraction of rows outside the near-baseline band."""
        if self.zscores.size == 0:
            return 0.0
        return float(np.mean(np.abs(self.zscores) > self.near))


class BaselineModel:
    """Per-measurement baseline statistics and z-score computation.

    Typical usage mirrors the case studies::

        spec = BaselineSpec(value_range=(46.0, 57.0))
        model = BaselineModel.from_data(raw_or_reconstructed, spec)
        result = model.score(reconstruction)      # one z-score per sensor

    ``from_data`` estimates, for every row, the mean and standard deviation
    of its baseline samples; rows with too few baseline samples fall back to
    the global statistics so every row always gets a finite z-score.
    """

    def __init__(
        self,
        mean: np.ndarray,
        std: np.ndarray,
        *,
        near: float = 1.5,
        extreme: float = 2.0,
        std_floor: float = 1e-8,
    ) -> None:
        mean = np.asarray(mean, dtype=float)
        std = np.asarray(std, dtype=float)
        if mean.shape != std.shape:
            raise ValueError("mean and std must have the same shape")
        if np.any(std < 0):
            raise ValueError("std must be non-negative")
        self.mean = mean
        self.std = std
        self.near = float(near)
        self.extreme = float(extreme)
        self.std_floor = float(std_floor)

    # ------------------------------------------------------------------ #
    @classmethod
    def from_data(
        cls,
        data: np.ndarray,
        spec: BaselineSpec,
        *,
        near: float = 1.5,
        extreme: float = 2.0,
    ) -> "BaselineModel":
        """Estimate per-row baseline statistics from (reconstructed) data.

        ``data`` is a ``(P, T)`` matrix — typically the noise-filtered
        mrDMD reconstruction, so the statistics describe the underlying
        dynamics rather than sensor noise.
        """
        data = np.asarray(data, dtype=float)
        mask = select_baseline_mask(data, spec)
        counts = mask.sum(axis=1)
        n_cols = data.shape[1]

        masked = np.where(mask, data, np.nan)
        # Rows with no baseline samples produce all-NaN slices; NumPy warns
        # about those even though the fallback below replaces the result.
        with np.errstate(invalid="ignore"), warnings.catch_warnings():
            warnings.simplefilter("ignore", category=RuntimeWarning)
            row_mean = np.nanmean(masked, axis=1)
            row_std = np.nanstd(masked, axis=1)

        # Global fallback for rows with no (or too few) baseline samples.
        if np.any(mask):
            global_mean = float(data[mask].mean())
            global_std = float(data[mask].std())
        else:
            global_mean = float(data.mean())
            global_std = float(data.std())
        min_count = max(1, int(np.ceil(spec.min_fraction * n_cols)))
        insufficient = counts < min_count
        row_mean = np.where(insufficient | ~np.isfinite(row_mean), global_mean, row_mean)
        row_std = np.where(insufficient | ~np.isfinite(row_std) | (row_std == 0.0),
                           max(global_std, 1e-8), row_std)
        return cls(row_mean, row_std, near=near, extreme=extreme)

    @classmethod
    def from_reference_rows(
        cls,
        data: np.ndarray,
        rows: np.ndarray,
        *,
        near: float = 1.5,
        extreme: float = 2.0,
    ) -> "BaselineModel":
        """Build a shared baseline from a set of reference rows.

        Every row is compared against the *same* statistics computed over
        ``data[rows]`` — the "baselines specific to the user jobs" variant
        mentioned at the end of case study 2.
        """
        data = np.asarray(data, dtype=float)
        rows = np.asarray(rows, dtype=int)
        if rows.size == 0:
            raise ValueError("rows must contain at least one index")
        reference = data[rows]
        mean = float(reference.mean())
        std = float(reference.std()) or 1e-8
        p = data.shape[0]
        return cls(np.full(p, mean), np.full(p, std), near=near, extreme=extreme)

    # ------------------------------------------------------------------ #
    def score_values(self, values: np.ndarray) -> np.ndarray:
        """Z-scores of a per-row value vector (no classification)."""
        values = np.asarray(values, dtype=float)
        if values.shape != self.mean.shape:
            raise ValueError(
                f"values shape {values.shape} does not match baseline shape {self.mean.shape}"
            )
        return compute_zscores(values, self.mean, self.std, std_floor=self.std_floor)

    def score(
        self,
        data: np.ndarray,
        *,
        reducer: str = "mean",
        time_range: tuple[int, int] | None = None,
    ) -> ZScoreResult:
        """Score a ``(P, T)`` matrix (or ``(P,)`` vector) row by row.

        ``reducer`` collapses each row's time dimension before scoring:
        ``"mean"`` (default), ``"max"``, ``"median"`` or ``"last"``.
        ``time_range`` optionally restricts the columns considered, which
        is how the two 8-hour windows of case study 2 are scored from one
        decomposition.
        """
        data = np.asarray(data, dtype=float)
        if data.ndim == 1:
            values = data
        elif data.ndim == 2:
            window = data
            if time_range is not None:
                start, stop = time_range
                window = data[:, max(start, 0) : max(stop, 0)]
                if window.shape[1] == 0:
                    raise ValueError(f"time_range {time_range!r} selects no columns")
            if reducer == "mean":
                values = window.mean(axis=1)
            elif reducer == "max":
                values = window.max(axis=1)
            elif reducer == "median":
                values = np.median(window, axis=1)
            elif reducer == "last":
                values = window[:, -1]
            else:
                raise ValueError(f"unknown reducer {reducer!r}")
        else:
            raise ValueError(f"data must be 1-D or 2-D, got shape {data.shape!r}")

        z = self.score_values(values)
        cats = classify_zscores(z, near=self.near, extreme=self.extreme)
        return ZScoreResult(
            zscores=z,
            categories=cats,
            baseline_mean=self.mean.copy(),
            baseline_std=self.std.copy(),
            near=self.near,
            extreme=self.extreme,
        )

"""Checkpoint / restore of a running :class:`FleetMonitor`.

A monitoring service that watches a machine for weeks must survive its own
restarts.  A checkpoint is a directory::

    <dir>/
      manifest.json    # version, step, shard specs, alert-engine state
      shard_0.npz      # pipeline state of shards[0] (io.storage.save_state)
      shard_1.npz
      ...

Each ``shard_k.npz`` holds the *complete* per-shard pipeline state — the
I-mrDMD mode tree, the level-1 incremental-SVD factors, the subsampled
level-1 matrix and counters, and the fitted baseline — through
``OnlineAnalysisPipeline.state_dict()`` and the generic
:func:`repro.io.storage.save_state` container.  Restoring therefore resumes
the stream *bit-for-bit*: the next ingest, the resulting spectra, z-scores
and rack values are exactly what the uninterrupted monitor would have
produced (asserted by the tests and the ``service_fleet`` example).

Rules and sinks are code, not data: :func:`load_checkpoint` takes them as
arguments and re-attaches the engine's persisted dedup/cooldown state so a
restarted service does not re-fire alerts it already delivered.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..io.storage import load_state, save_state
from ..pipeline.config import PipelineConfig
from ..pipeline.online import OnlineAnalysisPipeline
from .alerts import AlertEngine, AlertRule, AlertSink
from .monitor import FleetMonitor
from .sharding import ShardSpec

__all__ = ["CheckpointInfo", "save_checkpoint", "load_checkpoint", "read_manifest"]

CHECKPOINT_VERSION = 1
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class CheckpointInfo:
    """What :func:`save_checkpoint` wrote."""

    directory: str
    step: int
    n_shards: int
    files: tuple[str, ...]

    @property
    def total_bytes(self) -> int:
        """On-disk size of every checkpoint file."""
        return sum(os.path.getsize(path) for path in self.files)


def _shard_filename(index: int) -> str:
    return f"shard_{index}.npz"


def save_checkpoint(directory: str, monitor: FleetMonitor) -> CheckpointInfo:
    """Write the monitor's full state under ``directory`` (created if needed).

    Per-shard state is collected through the monitor's executor
    (:meth:`FleetMonitor.shard_state_dicts`), so remote-resident backends
    ship only state dicts — identical bytes to a serial monitor's, as the
    parity tests assert.
    """
    os.makedirs(directory, exist_ok=True)
    files = []
    # One shard at a time: fetch, write, drop — peak memory stays at a
    # single shard's state even for fleets retaining raw data.
    for index, spec in enumerate(monitor.shards):
        path = os.path.join(directory, _shard_filename(index))
        save_state(path, monitor.shard_state_dict(spec.shard_id))
        files.append(path)
    manifest = {
        "version": CHECKPOINT_VERSION,
        "step": monitor.step,
        "dt": monitor.dt,
        "config": monitor.config.to_dict(),
        "shards": [spec.to_dict() for spec in monitor.shards],
        "shard_files": [os.path.basename(path) for path in files],
        "alert_engine": (
            None if monitor.alert_engine is None else monitor.alert_engine.state_dict()
        ),
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    files.append(manifest_path)
    return CheckpointInfo(
        directory=directory,
        step=monitor.step,
        n_shards=monitor.n_shards,
        files=tuple(files),
    )


def read_manifest(directory: str) -> dict:
    """Load and version-check a checkpoint's manifest."""
    with open(os.path.join(directory, MANIFEST_NAME), "r", encoding="utf-8") as handle:
        manifest = json.load(handle)
    version = manifest.get("version")
    if version != CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported checkpoint version {version!r} (expected {CHECKPOINT_VERSION})"
        )
    return manifest


def load_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    executor=None,
    max_workers: int | None = None,
) -> FleetMonitor:
    """Rebuild a :class:`FleetMonitor` from a checkpoint directory.

    ``rules``/``sinks`` recreate the alert engine (code is not persisted).
    An engine is attached whenever the checkpoint carried engine state *or*
    the caller passes rules/sinks; persisted cooldown bookkeeping, when
    present, is restored so alert deduplication continues seamlessly.
    ``executor``/``max_workers`` configure the restored monitor's shard
    fan-out exactly as the :class:`FleetMonitor` constructor does; the
    executor starts lazily on first use, after the restored pipelines are
    installed.
    """
    manifest = read_manifest(directory)
    shards = [ShardSpec.from_dict(payload) for payload in manifest["shards"]]

    sinks = list(sinks)
    engine = None
    if manifest["alert_engine"] is not None or rules is not None or sinks:
        engine = AlertEngine(rules=rules, sinks=sinks)
        if manifest["alert_engine"] is not None:
            engine.load_state_dict(manifest["alert_engine"])

    monitor = FleetMonitor(
        dt=float(manifest["dt"]),
        shards=shards,
        config=PipelineConfig.from_dict(manifest["config"]),
        alert_engine=engine,
        executor=executor,
        max_workers=max_workers,
    )
    for index, spec in enumerate(shards):
        path = os.path.join(directory, manifest["shard_files"][index])
        monitor._pipelines[spec.shard_id] = OnlineAnalysisPipeline.from_state_dict(
            load_state(path)
        )
    monitor._step = int(manifest["step"])
    return monitor

"""Checkpoint / restore of a running :class:`FleetMonitor`.

A monitoring service that watches a machine for weeks must survive its own
restarts.  A checkpoint is a directory::

    <dir>/
      manifest.json    # version, step, shard specs, alert-engine state
      shard_0.npz      # pipeline state of shards[0] (io.storage.save_state)
      shard_1.npz
      ...

With ``save_checkpoint(..., keep_last=N)`` the directory becomes a
*rotation root* instead: each save lands in a step-stamped subdirectory
(``step_000000000480/``), written to a temporary sibling first and renamed
into place so a crash mid-write never leaves a half-checkpoint that looks
loadable, and only the newest ``N`` are retained (older ones are renamed
aside before removal — pruning is atomic too).  :func:`list_checkpoints`
returns the retained history newest-first and :func:`load_checkpoint`
accepts either a concrete checkpoint directory or a rotation root (it
resumes from the newest entry).

Each ``shard_k.npz`` holds the *complete* per-shard pipeline state — the
I-mrDMD mode tree, the level-1 incremental-SVD factors, the subsampled
level-1 matrix and counters, and the fitted baseline — through
``OnlineAnalysisPipeline.state_dict()`` and the generic
:func:`repro.io.storage.save_state` container.  Restoring therefore resumes
the stream *bit-for-bit*: the next ingest, the resulting spectra, z-scores
and rack values are exactly what the uninterrupted monitor would have
produced (asserted by the tests and the ``service_fleet`` example).

Rules and sinks are code, not data: :func:`load_checkpoint` takes them as
arguments and re-attaches the engine's persisted dedup/cooldown state so a
restarted service does not re-fire alerts it already delivered.
"""

from __future__ import annotations

import json
import os
import re
import shutil
import zipfile
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..io.storage import load_state, save_state
from ..pipeline.config import PipelineConfig
from ..obs.flight import FLIGHT
from ..pipeline.online import OnlineAnalysisPipeline
from .alerts import AlertEngine, AlertRule, AlertSink
from .monitor import FleetMonitor
from .sharding import ShardSpec

__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "RotatedCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "read_manifest",
    "list_checkpoints",
    "resolve_checkpoint_dir",
    "rotate_into",
]


class CheckpointError(ValueError):
    """A checkpoint is corrupt, incomplete, or otherwise unloadable.

    Raised instead of the cryptic low-level errors a damaged checkpoint
    otherwise surfaces (``zipfile.BadZipFile`` from a truncated npz,
    ``KeyError`` from a missing manifest entry, ...) — the message always
    names the offending file and suggests restoring from an older rotation
    entry.  Subclasses ``ValueError`` so callers catching the historical
    version-mismatch error keep working.
    """

#: Base manifest version — written whenever the state could also resume on
#: pre-elastic code (every row present since the start, full level-1 grids).
CHECKPOINT_VERSION = 1
#: Written when the state is *topology-bearing* (rows added mid-stream, a
#: shard minted mid-run, or a level-1 grid shrunk to its trailing column):
#: pre-elastic loaders would silently mis-resume such state, so their
#: ``version != 1`` check makes them refuse cleanly instead.
ELASTIC_CHECKPOINT_VERSION = 2
SUPPORTED_CHECKPOINT_VERSIONS = (CHECKPOINT_VERSION, ELASTIC_CHECKPOINT_VERSION)
MANIFEST_NAME = "manifest.json"

#: Step-stamped rotation entries: ``step_<12-digit zero-padded step>``.
STEP_DIR_PREFIX = "step_"
_STEP_DIR_RE = re.compile(r"^step_(\d{12})$")


@dataclass(frozen=True)
class CheckpointInfo:
    """What :func:`save_checkpoint` wrote."""

    directory: str
    step: int
    n_shards: int
    files: tuple[str, ...]

    @property
    def total_bytes(self) -> int:
        """On-disk size of every checkpoint file."""
        return sum(os.path.getsize(path) for path in self.files)


@dataclass(frozen=True)
class RotatedCheckpoint:
    """One retained entry of a rotated checkpoint history."""

    step: int
    path: str


def _shard_filename(index: int) -> str:
    return f"shard_{index}.npz"


def _manifest_entry(manifest: dict, key: str, directory: str):
    """One required manifest entry, or a clear :class:`CheckpointError`."""
    try:
        return manifest[key]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint manifest under {directory!r} is missing its "
            f"{key!r} entry; the manifest is corrupt or written by an "
            f"incompatible tool — restore from an older rotation entry"
        ) from exc


def load_shard_state(path: str) -> dict:
    """Load one shard's pipeline state, mapping low-level failures to
    :class:`CheckpointError` (shared with the federated loader)."""
    try:
        return load_state(path)
    except FileNotFoundError as exc:
        raise CheckpointError(
            f"checkpoint shard file {path!r} is missing; the checkpoint "
            f"directory is incomplete — restore from an older rotation entry"
        ) from exc
    except (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"checkpoint shard file {path!r} is corrupt or unreadable "
            f"({type(exc).__name__}: {exc}); restore from an older "
            f"rotation entry"
        ) from exc


def list_checkpoints(directory: str) -> list[RotatedCheckpoint]:
    """Retained step-stamped checkpoints under a rotation root, newest first.

    Only *complete* entries count: a step directory missing its manifest
    (e.g. an interrupted write under a non-atomic filesystem) is skipped,
    as are the transient ``*.tmp`` / ``*.trash`` siblings the rotation
    protocol uses.  A missing root yields an empty history.
    """
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in os.listdir(directory):
        match = _STEP_DIR_RE.match(name)
        path = os.path.join(directory, name)
        if (
            match
            and os.path.isdir(path)
            and os.path.exists(os.path.join(path, MANIFEST_NAME))
        ):
            entries.append(RotatedCheckpoint(step=int(match.group(1)), path=path))
    entries.sort(key=lambda entry: entry.step, reverse=True)
    return entries


def _discard(path: str) -> None:
    """Remove a checkpoint directory atomically.

    The directory is renamed aside first (one atomic operation that takes
    it out of :func:`list_checkpoints`' view), then deleted — a crash
    mid-removal can never leave a partially deleted directory that still
    looks like a valid checkpoint.
    """
    trash = path + ".trash"
    if os.path.exists(trash):
        shutil.rmtree(trash)
    os.rename(path, trash)
    shutil.rmtree(trash)


def rotate_into(
    directory: str, step: int, keep_last: int, writer: Callable[[str], None]
) -> str:
    """Write one step-stamped checkpoint under a rotation root; prune old ones.

    ``writer`` receives a fresh temporary directory and must fully populate
    it; the directory is then renamed to ``step_<step>`` in one atomic
    operation (same filesystem), so readers never observe a half-written
    checkpoint.  Re-checkpointing the same step replaces the previous
    entry.  After the rename, any *newer* entries are discarded — they
    belong to a timeline abandoned by restoring an older checkpoint and
    resuming, and the resumed stream is now authoritative — then all but
    the newest ``keep_last`` entries are pruned (the entry just written is
    by construction the newest, so it always survives).  Returns the final
    checkpoint path.

    Shared by the single-machine and federated checkpoint writers.
    """
    if keep_last < 1:
        raise ValueError(f"keep_last must be >= 1, got {keep_last!r}")
    if step < 0:
        raise ValueError(f"step must be non-negative, got {step!r}")
    os.makedirs(directory, exist_ok=True)
    final = os.path.join(directory, f"{STEP_DIR_PREFIX}{step:012d}")
    tmp = final + ".tmp"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        writer(tmp)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    if os.path.exists(final):
        _discard(final)
    os.rename(tmp, final)
    for entry in list_checkpoints(directory):
        if entry.step > step:
            _discard(entry.path)
    for stale in list_checkpoints(directory)[keep_last:]:
        _discard(stale.path)
    return final


def save_checkpoint(
    directory: str, monitor: FleetMonitor, *, keep_last: int | None = None
) -> CheckpointInfo:
    """Write the monitor's full state under ``directory`` (created if needed).

    Per-shard state is collected through the monitor's executor
    (:meth:`FleetMonitor.shard_state_dicts`), so remote-resident backends
    ship only state dicts — identical bytes to a serial monitor's, as the
    parity tests assert.

    With ``keep_last=N`` the directory is treated as a *rotation root*:
    the checkpoint lands in an atomic step-stamped subdirectory
    (``step_000000000480/``) and only the newest ``N`` entries survive.
    The returned :class:`CheckpointInfo` then points at the step
    directory; :func:`load_checkpoint` accepts either form.
    """
    if keep_last is not None:
        final = rotate_into(
            directory,
            monitor.step,
            keep_last,
            lambda tmp: _write_checkpoint(tmp, monitor),
        )
        manifest = read_manifest(final)
        files = [os.path.join(final, name) for name in manifest["shard_files"]]
        files.append(os.path.join(final, MANIFEST_NAME))
        return CheckpointInfo(
            directory=final,
            step=monitor.step,
            n_shards=monitor.n_shards,
            files=tuple(files),
        )
    return _write_checkpoint(directory, monitor)


def _state_is_topology_bearing(state: dict) -> bool:
    """Whether a pipeline state dict needs an elastic-aware loader."""
    model = state.get("model")
    if not model:
        return False
    if int(model.get("sub_offset") or 0) > 0:
        return True
    topology = model.get("topology")
    return topology is not None and len(topology) > 0


def _write_checkpoint(directory: str, monitor: FleetMonitor) -> CheckpointInfo:
    os.makedirs(directory, exist_ok=True)
    files = []
    elastic = any(spec.start_step > 0 for spec in monitor.shards)
    # One shard at a time: fetch, write, drop — peak memory stays at a
    # single shard's state even for fleets retaining raw data.
    for index, spec in enumerate(monitor.shards):
        path = os.path.join(directory, _shard_filename(index))
        state = monitor.shard_state_dict(spec.shard_id)
        elastic = elastic or _state_is_topology_bearing(state)
        save_state(path, state)
        files.append(path)
    manifest = {
        "version": ELASTIC_CHECKPOINT_VERSION if elastic else CHECKPOINT_VERSION,
        "step": monitor.step,
        "dt": monitor.dt,
        "config": monitor.config.to_dict(),
        "shards": [spec.to_dict() for spec in monitor.shards],
        "shard_files": [os.path.basename(path) for path in files],
        # Row-policing modes are behaviour, not derivable from state: a
        # restored monitor watching registered-but-not-yet-reporting
        # sensors must keep padding their rows, not crash on the next
        # short chunk.
        "extra_rows": monitor.extra_rows,
        "missing_rows": monitor.missing_rows,
        "alert_engine": (
            None if monitor.alert_engine is None else monitor.alert_engine.state_dict()
        ),
        # Degradation is state: a restarted supervisor must keep excluding
        # the shards its predecessor quarantined (and keep annotating its
        # snapshots/alerts) rather than silently resurrecting stale rows.
        "quarantined": monitor.quarantine_info,
        "chunks_ingested": monitor._chunk_index,
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    files.append(manifest_path)
    return CheckpointInfo(
        directory=directory,
        step=monitor.step,
        n_shards=monitor.n_shards,
        files=tuple(files),
    )


def read_manifest(directory: str) -> dict:
    """Load and version-check a checkpoint's manifest.

    A missing, unparsable, or non-object manifest raises
    :class:`CheckpointError` naming the file; an unsupported version keeps
    its historical ``ValueError`` message (``CheckpointError`` is a
    subclass, so both spellings catch it).
    """
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise CheckpointError(f"no checkpoint manifest at {path!r}") from exc
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint manifest {path!r} is not valid JSON "
            f"({type(exc).__name__}: {exc}); the checkpoint is corrupt — "
            f"restore from an older rotation entry"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(
            f"checkpoint manifest {path!r} must hold a JSON object, "
            f"got {type(manifest).__name__}"
        )
    version = manifest.get("version")
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(expected one of {SUPPORTED_CHECKPOINT_VERSIONS})"
        )
    return manifest


def resolve_checkpoint_dir(directory: str) -> str:
    """Map ``directory`` to a concrete checkpoint directory.

    A directory holding a manifest *is* a checkpoint; a rotation root
    resolves to its newest retained entry.  Anything else raises
    ``FileNotFoundError``.
    """
    if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        return directory
    history = list_checkpoints(directory)
    if history:
        return history[0].path
    raise FileNotFoundError(
        f"no checkpoint under {directory!r}: neither a {MANIFEST_NAME} nor any "
        f"retained {STEP_DIR_PREFIX}* entries"
    )


def load_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    executor=None,
    max_workers: int | None = None,
    resilience=None,
    fault_plan=None,
) -> FleetMonitor:
    """Rebuild a :class:`FleetMonitor` from a checkpoint directory.

    ``rules``/``sinks`` recreate the alert engine (code is not persisted).
    An engine is attached whenever the checkpoint carried engine state *or*
    the caller passes rules/sinks; persisted cooldown bookkeeping, when
    present, is restored so alert deduplication continues seamlessly.
    ``executor``/``max_workers`` configure the restored monitor's shard
    fan-out exactly as the :class:`FleetMonitor` constructor does; the
    executor starts lazily on first use, after the restored pipelines are
    installed.

    ``directory`` may be either a concrete checkpoint or a rotation root
    written with ``save_checkpoint(..., keep_last=N)`` — the latter
    resumes from the newest retained entry.

    ``resilience``/``fault_plan`` re-arm supervision on the restored
    monitor (policies are code, not data); the predecessor's quarantine
    record, when present in the manifest, is restored either way so the
    degradation stays visible across the restart.

    Damaged checkpoints — truncated or garbage shard files, missing
    manifest entries — raise :class:`CheckpointError` naming the file
    rather than leaking low-level numpy/zipfile/KeyError noise; each such
    failure also drops a flight-recorder bundle (a refused restore is
    exactly the moment the operator wants the black box).
    """
    requested = str(directory)
    try:
        return _load_checkpoint(
            directory,
            rules=rules,
            sinks=sinks,
            executor=executor,
            max_workers=max_workers,
            resilience=resilience,
            fault_plan=fault_plan,
        )
    except CheckpointError as exc:
        FLIGHT.record_note(
            "checkpoint_load_failed", path=requested, error=str(exc)
        )
        FLIGHT.dump(
            "checkpoint_load_failed",
            extra={"path": requested, "error": str(exc)},
        )
        raise


def _load_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    executor=None,
    max_workers: int | None = None,
    resilience=None,
    fault_plan=None,
) -> FleetMonitor:
    directory = resolve_checkpoint_dir(directory)
    manifest = read_manifest(directory)
    shards = [
        ShardSpec.from_dict(payload)
        for payload in _manifest_entry(manifest, "shards", directory)
    ]
    shard_files = _manifest_entry(manifest, "shard_files", directory)
    if len(shard_files) != len(shards):
        raise CheckpointError(
            f"checkpoint manifest under {directory!r} lists "
            f"{len(shards)} shards but {len(shard_files)} shard files; "
            f"the manifest is corrupt — restore from an older rotation entry"
        )

    sinks = list(sinks)
    engine = None
    engine_state = _manifest_entry(manifest, "alert_engine", directory)
    if engine_state is not None or rules is not None or sinks:
        engine = AlertEngine(rules=rules, sinks=sinks)
        if engine_state is not None:
            engine.load_state_dict(engine_state)

    monitor = FleetMonitor(
        dt=float(_manifest_entry(manifest, "dt", directory)),
        shards=shards,
        config=PipelineConfig.from_dict(_manifest_entry(manifest, "config", directory)),
        alert_engine=engine,
        executor=executor,
        max_workers=max_workers,
        extra_rows=str(manifest.get("extra_rows", "raise")),
        missing_rows=str(manifest.get("missing_rows", "raise")),
        resilience=resilience,
        fault_plan=fault_plan,
    )
    for index, spec in enumerate(shards):
        path = os.path.join(directory, shard_files[index])
        monitor._pipelines[spec.shard_id] = OnlineAnalysisPipeline.from_state_dict(
            load_shard_state(path)
        )
        if resilience is not None:
            monitor._pipelines[spec.shard_id].validate_chunks = True
    monitor._step = int(_manifest_entry(manifest, "step", directory))
    monitor._chunk_index = int(manifest.get("chunks_ingested", 0))
    monitor._quarantined = {
        str(shard_id): dict(info)
        for shard_id, info in (manifest.get("quarantined") or {}).items()
    }
    return monitor

"""Checkpoint / restore of a running :class:`FleetMonitor`.

A monitoring service that watches a machine for weeks must survive its own
restarts.  A checkpoint is a directory::

    <dir>/
      manifest.json    # version, step, shard specs, alert-engine state
      shard_0.npz      # pipeline state of shards[0] (io.storage.save_state)
      shard_1.npz
      ...

With ``save_checkpoint(..., keep_last=N)`` the directory becomes a
*rotation root* instead: each save lands in a step-stamped subdirectory
(``step_000000000480/``), written to a temporary sibling first and renamed
into place so a crash mid-write never leaves a half-checkpoint that looks
loadable, and only the newest ``N`` are retained (older ones are renamed
aside before removal — pruning is atomic too).  :func:`list_checkpoints`
returns the retained history newest-first and :func:`load_checkpoint`
accepts either a concrete checkpoint directory or a rotation root (it
resumes from the newest entry).

Each ``shard_k.npz`` holds the *complete* per-shard pipeline state — the
I-mrDMD mode tree, the level-1 incremental-SVD factors, the subsampled
level-1 matrix and counters, and the fitted baseline — through
``OnlineAnalysisPipeline.state_dict()`` and the generic
:func:`repro.io.storage.save_state` container.  Restoring therefore resumes
the stream *bit-for-bit*: the next ingest, the resulting spectra, z-scores
and rack values are exactly what the uninterrupted monitor would have
produced (asserted by the tests and the ``service_fleet`` example).

Rules and sinks are code, not data: :func:`load_checkpoint` takes them as
arguments and re-attaches the engine's persisted dedup/cooldown state so a
restarted service does not re-fire alerts it already delivered.

Two orthogonal switches take persistence off the ingest critical path
(both require a rotation root, i.e. ``keep_last=N``):

* ``format="delta"`` writes *version-3* entries: shard states live in a
  shared content-addressed ``blocks/`` directory next to the rotation
  entries, and the entry manifest lists one digest per shard
  (``shard_blocks``) instead of per-entry ``shard_files``.  Shards whose
  :meth:`~repro.pipeline.online.OnlineAnalysisPipeline.state_stamp` is
  unchanged since the previous save skip ``state_dict()`` entirely and
  re-reference the block already on disk, so a steady-state save costs
  O(changed state).  Blocks unreferenced by any retained entry are swept
  after every rotation (reference counting at ``keep_last`` pruning
  time); :func:`compact_checkpoint` rewrites a delta entry as a
  self-contained v1/v2 full checkpoint loadable by pre-delta code.
* ``mode="async"`` captures a decoupled snapshot synchronously (cheap:
  stamps + dirty shards only under ``format="delta"``) and defers the
  hash/compress/write/rotate tail to a bounded background writer
  (:class:`~repro.io.delta.AsyncCheckpointWriter`).  Crash consistency
  is unchanged — blocks land before the entry rename, so a torn async
  write leaves at worst orphan blocks and the newest *complete* entry
  keeps loading.  ``monitor.flush_checkpoints()`` (or ``close()``) is
  the barrier that surfaces deferred write errors.
"""

from __future__ import annotations

import copy
import json
import os
import re
import shutil
import time
import zipfile
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

from ..io.delta import (
    BLOCKS_DIRNAME,
    AsyncCheckpointWriter,
    BlockStore,
    copy_state,
    state_digest,
)
from ..io.storage import load_state, save_state
from ..obs import OBS
from ..obs.flight import FLIGHT
from ..pipeline.config import PipelineConfig
from ..pipeline.online import OnlineAnalysisPipeline
from .alerts import AlertEngine, AlertRule, AlertSink
from .monitor import FleetMonitor
from .sharding import ShardSpec

__all__ = [
    "CheckpointError",
    "CheckpointInfo",
    "RotatedCheckpoint",
    "save_checkpoint",
    "load_checkpoint",
    "compact_checkpoint",
    "read_manifest",
    "list_checkpoints",
    "resolve_checkpoint_dir",
    "rotate_into",
]


class CheckpointError(ValueError):
    """A checkpoint is corrupt, incomplete, or otherwise unloadable.

    Raised instead of the cryptic low-level errors a damaged checkpoint
    otherwise surfaces (``zipfile.BadZipFile`` from a truncated npz,
    ``KeyError`` from a missing manifest entry, ...) — the message always
    names the offending file and suggests restoring from an older rotation
    entry.  Subclasses ``ValueError`` so callers catching the historical
    version-mismatch error keep working.
    """

#: Base manifest version — written whenever the state could also resume on
#: pre-elastic code (every row present since the start, full level-1 grids).
CHECKPOINT_VERSION = 1
#: Written when the state is *topology-bearing* (rows added mid-stream, a
#: shard minted mid-run, or a level-1 grid shrunk to its trailing column):
#: pre-elastic loaders would silently mis-resume such state, so their
#: ``version != 1`` check makes them refuse cleanly instead.
ELASTIC_CHECKPOINT_VERSION = 2
#: Written by ``format="delta"`` saves: shard state lives in a shared
#: content-addressed block store and the manifest lists digests
#: (``shard_blocks`` + ``blocks_dir``) instead of per-entry files.  Pre-delta
#: loaders refuse v3 cleanly via their version check.
DELTA_CHECKPOINT_VERSION = 3
SUPPORTED_CHECKPOINT_VERSIONS = (
    CHECKPOINT_VERSION,
    ELASTIC_CHECKPOINT_VERSION,
    DELTA_CHECKPOINT_VERSION,
)
MANIFEST_NAME = "manifest.json"

#: Step-stamped rotation entries: ``step_<12-digit zero-padded step>``.
STEP_DIR_PREFIX = "step_"
_STEP_DIR_RE = re.compile(r"^step_(\d{12})$")


@dataclass(frozen=True)
class CheckpointInfo:
    """What :func:`save_checkpoint` wrote.

    For ``mode="async"`` the info is *provisional*: ``directory`` is
    where the entry will land, ``files`` is empty, and the write stats
    are zero (the commit happens on the writer thread; its totals show
    up in the ``checkpoint.*`` obs counters).  ``stall_seconds`` is the
    time the caller actually spent on the critical path either way.
    """

    directory: str
    step: int
    n_shards: int
    files: tuple[str, ...]
    format: str = "full"
    mode: str = "sync"
    shards_reused: int = 0
    bytes_written: int = 0
    bytes_referenced: int = 0
    stall_seconds: float = 0.0

    @property
    def total_bytes(self) -> int:
        """On-disk size of every checkpoint file."""
        return sum(os.path.getsize(path) for path in self.files)


@dataclass(frozen=True)
class RotatedCheckpoint:
    """One retained entry of a rotated checkpoint history."""

    step: int
    path: str


def _shard_filename(index: int) -> str:
    return f"shard_{index}.npz"


def _manifest_entry(manifest: dict, key: str, directory: str):
    """One required manifest entry, or a clear :class:`CheckpointError`."""
    try:
        return manifest[key]
    except KeyError as exc:
        raise CheckpointError(
            f"checkpoint manifest under {directory!r} is missing its "
            f"{key!r} entry; the manifest is corrupt or written by an "
            f"incompatible tool — restore from an older rotation entry"
        ) from exc


def load_shard_state(path: str) -> dict:
    """Load one shard's pipeline state, mapping low-level failures to
    :class:`CheckpointError` (shared with the federated loader)."""
    try:
        return load_state(path)
    except FileNotFoundError as exc:
        raise CheckpointError(
            f"checkpoint shard file {path!r} is missing; the checkpoint "
            f"directory is incomplete — restore from an older rotation entry"
        ) from exc
    except (OSError, EOFError, KeyError, ValueError, zipfile.BadZipFile) as exc:
        raise CheckpointError(
            f"checkpoint shard file {path!r} is corrupt or unreadable "
            f"({type(exc).__name__}: {exc}); restore from an older "
            f"rotation entry"
        ) from exc


def list_checkpoints(directory: str) -> list[RotatedCheckpoint]:
    """Retained step-stamped checkpoints under a rotation root, newest first.

    Only *complete* entries count: a step directory missing its manifest
    (e.g. an interrupted write under a non-atomic filesystem) is skipped,
    as are the transient ``*.tmp`` / ``*.trash`` siblings the rotation
    protocol uses.  A missing root yields an empty history.
    """
    if not os.path.isdir(directory):
        return []
    entries = []
    for name in os.listdir(directory):
        match = _STEP_DIR_RE.match(name)
        path = os.path.join(directory, name)
        if (
            match
            and os.path.isdir(path)
            and os.path.exists(os.path.join(path, MANIFEST_NAME))
        ):
            entries.append(RotatedCheckpoint(step=int(match.group(1)), path=path))
    entries.sort(key=lambda entry: entry.step, reverse=True)
    return entries


def _discard(path: str) -> None:
    """Remove a checkpoint directory atomically.

    The directory is renamed aside first (one atomic operation that takes
    it out of :func:`list_checkpoints`' view), then deleted — a crash
    mid-removal can never leave a partially deleted directory that still
    looks like a valid checkpoint.
    """
    trash = path + ".trash"
    if os.path.exists(trash):
        shutil.rmtree(trash)
    os.rename(path, trash)
    shutil.rmtree(trash)


def rotate_into(
    directory: str, step: int, keep_last: int, writer: Callable[[str], None]
) -> str:
    """Write one step-stamped checkpoint under a rotation root; prune old ones.

    ``writer`` receives a fresh temporary directory and must fully populate
    it; the directory is then renamed to ``step_<step>`` in one atomic
    operation (same filesystem), so readers never observe a half-written
    checkpoint.  Re-checkpointing the same step replaces the previous
    entry.  After the rename, any *newer* entries are discarded — they
    belong to a timeline abandoned by restoring an older checkpoint and
    resuming, and the resumed stream is now authoritative — then all but
    the newest ``keep_last`` entries are pruned (the entry just written is
    by construction the newest, so it always survives).  Returns the final
    checkpoint path.

    Shared by the single-machine and federated checkpoint writers.
    """
    if keep_last < 1:
        raise ValueError(f"keep_last must be >= 1, got {keep_last!r}")
    if step < 0:
        raise ValueError(f"step must be non-negative, got {step!r}")
    os.makedirs(directory, exist_ok=True)
    final = os.path.join(directory, f"{STEP_DIR_PREFIX}{step:012d}")
    tmp = final + ".tmp"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    os.makedirs(tmp)
    try:
        writer(tmp)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    if os.path.exists(final):
        _discard(final)
    os.rename(tmp, final)
    for entry in list_checkpoints(directory):
        if entry.step > step:
            _discard(entry.path)
    for stale in list_checkpoints(directory)[keep_last:]:
        _discard(stale.path)
    return final


def save_checkpoint(
    directory: str,
    monitor: FleetMonitor,
    *,
    keep_last: int | None = None,
    format: str = "full",
    mode: str = "sync",
    writer: AsyncCheckpointWriter | None = None,
) -> CheckpointInfo:
    """Write the monitor's state under ``directory`` (created if needed).

    Per-shard state is collected through the monitor's executor
    (:meth:`FleetMonitor.shard_state_dicts`), so remote-resident backends
    ship only state dicts — identical bytes to a serial monitor's, as the
    parity tests assert.

    With ``keep_last=N`` the directory is treated as a *rotation root*:
    the checkpoint lands in an atomic step-stamped subdirectory
    (``step_000000000480/``) and only the newest ``N`` entries survive.
    The returned :class:`CheckpointInfo` then points at the step
    directory; :func:`load_checkpoint` accepts either form.

    ``format="delta"`` (requires ``keep_last``) writes a version-3 entry
    whose shard states live in the root's shared content-addressed
    ``blocks/`` store; shards whose state stamp is unchanged since this
    monitor's previous save re-reference their existing block without
    being serialised.  ``mode="async"`` (requires ``keep_last``) captures
    a decoupled snapshot synchronously and commits on the monitor's
    background writer (or the explicitly passed ``writer``); deferred
    write errors surface at the next ``monitor.flush_checkpoints()`` /
    ``close()`` barrier.  Restores are bit-for-bit identical across all
    four format/mode combinations.
    """
    if format not in ("full", "delta"):
        raise ValueError(f"format must be 'full' or 'delta', got {format!r}")
    if mode not in ("sync", "async"):
        raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
    if keep_last is None:
        if format == "delta" or mode == "async":
            raise ValueError(
                "format='delta' and mode='async' need a rotation root: pass "
                "keep_last=N (atomic entry renames are what keep torn or "
                "deferred writes from corrupting the newest entry)"
            )
        return _write_checkpoint(directory, monitor)

    start = time.perf_counter()
    with OBS.span("checkpoint.save", format=format, mode=mode):
        if mode == "sync" and format == "full":
            final = rotate_into(
                directory,
                monitor.step,
                keep_last,
                lambda tmp: _write_checkpoint(tmp, monitor),
            )
            manifest = read_manifest(final)
            files = [os.path.join(final, name) for name in manifest["shard_files"]]
            files.append(os.path.join(final, MANIFEST_NAME))
            stall = time.perf_counter() - start
            _record_save(format, mode, stall)
            return CheckpointInfo(
                directory=final,
                step=monitor.step,
                n_shards=monitor.n_shards,
                files=tuple(files),
                format=format,
                mode=mode,
                stall_seconds=stall,
            )

        blocks_dir = None
        if format == "delta":
            blocks_dir = os.path.join(directory, BLOCKS_DIRNAME)
            base, blocks, reused = _capture_delta(
                monitor, blocks_dir, snapshot=(mode == "async")
            )
        else:
            base, blocks = _capture_full(monitor, snapshot=True)
            reused = 0
        step = monitor.step
        n_shards = monitor.n_shards

        if mode == "sync":
            info = _commit_rotation(
                directory, step, keep_last, base, blocks, blocks_dir
            )
            stall = time.perf_counter() - start
            _record_save(format, mode, stall)
            return CheckpointInfo(
                directory=info.directory,
                step=step,
                n_shards=n_shards,
                files=info.files,
                format=format,
                mode=mode,
                shards_reused=reused,
                bytes_written=info.bytes_written,
                bytes_referenced=info.bytes_referenced,
                stall_seconds=stall,
            )

        if writer is None:
            writer = monitor._ensure_checkpoint_writer()
        writer.submit(
            lambda: _commit_rotation(
                directory, step, keep_last, base, blocks, blocks_dir
            ),
            label=f"{format} step {step}",
        )
        stall = time.perf_counter() - start
        _record_save(format, mode, stall)
        return CheckpointInfo(
            directory=os.path.join(directory, f"{STEP_DIR_PREFIX}{step:012d}"),
            step=step,
            n_shards=n_shards,
            files=(),
            format=format,
            mode=mode,
            shards_reused=reused,
            stall_seconds=stall,
        )


def _record_save(format: str, mode: str, stall: float) -> None:
    if OBS.enabled:
        OBS.inc("checkpoint.saves", format=format, mode=mode)
        OBS.observe("checkpoint.stall_seconds", stall)


def _state_is_topology_bearing(state: dict) -> bool:
    """Whether a pipeline state dict needs an elastic-aware loader."""
    model = state.get("model")
    if not model:
        return False
    if int(model.get("sub_offset") or 0) > 0:
        return True
    topology = model.get("topology")
    return topology is not None and len(topology) > 0


def _capture_manifest(monitor: FleetMonitor) -> dict:
    """Every manifest field except the version and the shard payload list.

    Deep-copied plain containers, so an asynchronous commit is decoupled
    from alert-engine / quarantine state the live monitor keeps mutating.
    """
    return {
        "step": monitor.step,
        "dt": monitor.dt,
        "config": monitor.config.to_dict(),
        "shards": [spec.to_dict() for spec in monitor.shards],
        # Row-policing modes are behaviour, not derivable from state: a
        # restored monitor watching registered-but-not-yet-reporting
        # sensors must keep padding their rows, not crash on the next
        # short chunk.
        "extra_rows": monitor.extra_rows,
        "missing_rows": monitor.missing_rows,
        "alert_engine": (
            None
            if monitor.alert_engine is None
            else copy.deepcopy(monitor.alert_engine.state_dict())
        ),
        # Degradation is state: a restarted supervisor must keep excluding
        # the shards its predecessor quarantined (and keep annotating its
        # snapshots/alerts) rather than silently resurrecting stale rows.
        "quarantined": copy.deepcopy(monitor.quarantine_info),
        "chunks_ingested": monitor._chunk_index,
    }


def _write_checkpoint(directory: str, monitor: FleetMonitor) -> CheckpointInfo:
    os.makedirs(directory, exist_ok=True)
    files = []
    elastic = any(spec.start_step > 0 for spec in monitor.shards)
    # One shard at a time: fetch, write, drop — peak memory stays at a
    # single shard's state even for fleets retaining raw data.
    for index, spec in enumerate(monitor.shards):
        path = os.path.join(directory, _shard_filename(index))
        state = monitor.shard_state_dict(spec.shard_id)
        elastic = elastic or _state_is_topology_bearing(state)
        save_state(path, state)
        files.append(path)
    manifest = {
        "version": ELASTIC_CHECKPOINT_VERSION if elastic else CHECKPOINT_VERSION,
        **_capture_manifest(monitor),
        "shard_files": [os.path.basename(path) for path in files],
    }
    manifest_path = os.path.join(directory, MANIFEST_NAME)
    with open(manifest_path, "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    files.append(manifest_path)
    return CheckpointInfo(
        directory=directory,
        step=monitor.step,
        n_shards=monitor.n_shards,
        files=tuple(files),
    )


class _DigestCell:
    """A digest slot filled when the (possibly deferred) commit runs.

    The coordinator records ``(stamp, cell)`` in the monitor's stamp
    memory at capture time; the writer thread assigns ``digest`` after
    the block lands.  Attribute assignment is atomic under the GIL and
    the value is an immutable string, so the cross-thread handoff needs
    no lock — a reader either sees ``None`` (commit pending, shard is
    re-captured) or the durable digest.
    """

    __slots__ = ("digest",)

    def __init__(self, digest: str | None = None) -> None:
        self.digest = digest


def _memory_digest(entry) -> str | None:
    """The digest recorded in a stamp-memory entry (None while pending)."""
    recorded = entry[1]
    return recorded.digest if isinstance(recorded, _DigestCell) else recorded


@dataclass
class _ShardBlock:
    """One shard's contribution to a captured checkpoint.

    ``state is None`` means the shard was unchanged and its existing
    block (``digest``) is re-referenced without serialisation.  A dirty
    shard may carry ``digest=None``: the commit computes it while
    storing the block (off the critical path for asynchronous saves)
    and publishes it through ``cell``.
    """

    shard_id: str
    digest: str | None
    state: dict | None
    cell: _DigestCell | None = None


def _capture_full(
    monitor: FleetMonitor, *, snapshot: bool
) -> tuple[dict, list[_ShardBlock]]:
    """Pull every shard's state (for an asynchronous full commit)."""
    base = _capture_manifest(monitor)
    blocks = []
    for spec in monitor.shards:
        state = monitor.shard_state_dict(spec.shard_id)
        if snapshot and not monitor._resident_remote:
            # Serial/thread backends hand back state sharing arrays with
            # the live pipeline; a deferred write needs its own copy.
            # Process backends already returned a pickled-home copy.
            state = copy_state(state)
        blocks.append(_ShardBlock(spec.shard_id, None, state))
    return base, blocks


def _capture_delta(
    monitor: FleetMonitor,
    blocks_dir: str,
    *,
    snapshot: bool,
    defer_digest: bool = True,
) -> tuple[dict, list[_ShardBlock], int]:
    """Pull only dirty shards; unchanged ones re-reference their block.

    A shard is *clean* when its state stamp equals the one recorded at
    this monitor's previous save against the same block store **and**
    that block still exists on disk (self-healing against swept blocks,
    rollback-then-resave, or a failed deferred write).  The stamp is
    recorded synchronously here; by default the digest is computed by
    the commit while storing the block, keeping the capture's cost to
    the state pull plus an array copy.  ``defer_digest=False`` computes
    digests inline instead — for captures whose commit runs in another
    process, where a deferred cell could never propagate back.
    """
    base = _capture_manifest(monitor)
    store = BlockStore(blocks_dir)
    memory = monitor._delta_stamp_memory(blocks_dir)
    stamps = monitor.shard_state_stamps()
    blocks = []
    reused = 0
    for spec in monitor.shards:
        shard_id = spec.shard_id
        stamp = stamps[shard_id]
        previous = memory.get(shard_id)
        if previous is not None and previous[0] == stamp:
            digest = _memory_digest(previous)
            if digest is not None and store.has(digest):
                blocks.append(_ShardBlock(shard_id, digest, None))
                reused += 1
                continue
        state = monitor.shard_state_dict(shard_id)
        if snapshot and not monitor._resident_remote:
            state = copy_state(state)
        if defer_digest:
            cell = _DigestCell()
            memory[shard_id] = (stamp, cell)
            blocks.append(_ShardBlock(shard_id, None, state, cell))
        else:
            digest = state_digest(state)
            memory[shard_id] = (stamp, digest)
            blocks.append(_ShardBlock(shard_id, digest, state))
    if OBS.enabled and reused:
        OBS.inc("checkpoint.shards_reused", reused)
    return base, blocks, reused


def _commit_entry(
    entry_dir: str, base: dict, blocks: list[_ShardBlock], blocks_dir: str | None
) -> tuple[int, int]:
    """Write one checkpoint entry from captured state.

    Returns ``(bytes_written, bytes_referenced)``.  With ``blocks_dir``
    the entry is a v3 delta manifest over the shared block store (blocks
    land *before* the manifest, and the caller renames the entry into
    place after — so a crash at any point leaves at worst orphan blocks,
    never a manifest naming absent state); without it, a classic v1/v2
    full entry.
    """
    os.makedirs(entry_dir, exist_ok=True)
    written = referenced = 0
    if blocks_dir is None:
        elastic = any(
            int(spec.get("start_step") or 0) > 0 for spec in base["shards"]
        )
        shard_files = []
        for index, block in enumerate(blocks):
            name = _shard_filename(index)
            elastic = elastic or _state_is_topology_bearing(block.state)
            save_state(os.path.join(entry_dir, name), block.state)
            written += os.path.getsize(os.path.join(entry_dir, name))
            shard_files.append(name)
        manifest = {
            "version": ELASTIC_CHECKPOINT_VERSION if elastic else CHECKPOINT_VERSION,
            **base,
            "shard_files": shard_files,
        }
    else:
        store = BlockStore(blocks_dir)
        shard_blocks = []
        blocks_written = blocks_reused = 0
        for block in blocks:
            if block.state is not None:
                digest, created, nbytes = store.put(block.state, block.digest)
                block.digest = digest
                if block.cell is not None:
                    # Deferred digest: publish it to the stamp memory now
                    # the block is durable, so the next capture can reuse.
                    block.cell.digest = digest
                if created:
                    written += nbytes
                    blocks_written += 1
                else:
                    # Stamp changed but content did not (e.g. a restored
                    # monitor with fresh counters): dedup caught it.
                    referenced += nbytes
                    blocks_reused += 1
            else:
                try:
                    referenced += os.path.getsize(store.path(block.digest))
                except OSError:
                    pass
                blocks_reused += 1
            shard_blocks.append(block.digest)
        manifest = {
            "version": DELTA_CHECKPOINT_VERSION,
            "format": "delta",
            **base,
            "shard_blocks": shard_blocks,
            "blocks_dir": os.path.relpath(blocks_dir, entry_dir),
        }
        if OBS.enabled:
            OBS.inc("checkpoint.blocks_written", blocks_written)
            OBS.inc("checkpoint.blocks_referenced", blocks_reused)
    with open(os.path.join(entry_dir, MANIFEST_NAME), "w", encoding="utf-8") as handle:
        json.dump(manifest, handle, indent=2)
    if OBS.enabled:
        OBS.inc("checkpoint.bytes_written", written)
        OBS.inc("checkpoint.bytes_referenced", referenced)
    return written, referenced


def _commit_rotation(
    root: str,
    step: int,
    keep_last: int,
    base: dict,
    blocks: list[_ShardBlock],
    blocks_dir: str | None,
) -> CheckpointInfo:
    """Rotate a captured entry into ``root`` and sweep dead blocks."""
    stats = {"written": 0, "referenced": 0}

    def write(tmp: str) -> None:
        stats["written"], stats["referenced"] = _commit_entry(
            tmp, base, blocks, blocks_dir
        )

    final = rotate_into(root, step, keep_last, write)
    if blocks_dir is not None:
        _sweep_blocks(root, blocks_dir)
        files = [os.path.join(final, MANIFEST_NAME)]
        store = BlockStore(blocks_dir)
        files.extend(store.path(block.digest) for block in blocks)
        fmt = "delta"
    else:
        files = [
            os.path.join(final, _shard_filename(index))
            for index in range(len(blocks))
        ]
        files.append(os.path.join(final, MANIFEST_NAME))
        fmt = "full"
    return CheckpointInfo(
        directory=final,
        step=step,
        n_shards=len(blocks),
        files=tuple(files),
        format=fmt,
        bytes_written=stats["written"],
        bytes_referenced=stats["referenced"],
    )


def _collect_live_digests(root: str) -> set[str]:
    """Digests referenced by any retained entry under a rotation root.

    Walks each entry recursively: a federated entry nests one manifest
    per machine under ``machines/``, and those references pin blocks in
    the root's shared store exactly like top-level ones.
    """
    live: set[str] = set()
    for entry in list_checkpoints(root):
        for dirpath, _dirs, files in os.walk(entry.path):
            if MANIFEST_NAME not in files:
                continue
            try:
                with open(
                    os.path.join(dirpath, MANIFEST_NAME), "r", encoding="utf-8"
                ) as handle:
                    manifest = json.load(handle)
            except (OSError, ValueError):
                continue
            if isinstance(manifest, dict):
                live.update(
                    str(digest) for digest in manifest.get("shard_blocks") or ()
                )
    return live


def _sweep_blocks(root: str, blocks_dir: str) -> tuple[int, int]:
    """Reference-count GC: drop blocks no retained entry references."""
    removed, freed = BlockStore(blocks_dir).sweep(_collect_live_digests(root))
    if OBS.enabled and removed:
        OBS.inc("checkpoint.blocks_swept", removed)
        OBS.inc("checkpoint.bytes_swept", freed)
    return removed, freed


def read_manifest(directory: str) -> dict:
    """Load and version-check a checkpoint's manifest.

    A missing, unparsable, or non-object manifest raises
    :class:`CheckpointError` naming the file; an unsupported version keeps
    its historical ``ValueError`` message (``CheckpointError`` is a
    subclass, so both spellings catch it).
    """
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as handle:
            manifest = json.load(handle)
    except FileNotFoundError as exc:
        raise CheckpointError(f"no checkpoint manifest at {path!r}") from exc
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"checkpoint manifest {path!r} is not valid JSON "
            f"({type(exc).__name__}: {exc}); the checkpoint is corrupt — "
            f"restore from an older rotation entry"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(
            f"checkpoint manifest {path!r} must hold a JSON object, "
            f"got {type(manifest).__name__}"
        )
    version = manifest.get("version")
    if version not in SUPPORTED_CHECKPOINT_VERSIONS:
        raise CheckpointError(
            f"unsupported checkpoint version {version!r} "
            f"(expected one of {SUPPORTED_CHECKPOINT_VERSIONS})"
        )
    return manifest


def resolve_checkpoint_dir(directory: str) -> str:
    """Map ``directory`` to a concrete checkpoint directory.

    A directory holding a manifest *is* a checkpoint; a rotation root
    resolves to its newest retained entry.  Anything else raises
    ``FileNotFoundError``.
    """
    if os.path.exists(os.path.join(directory, MANIFEST_NAME)):
        return directory
    history = list_checkpoints(directory)
    if history:
        return history[0].path
    raise FileNotFoundError(
        f"no checkpoint under {directory!r}: neither a {MANIFEST_NAME} nor any "
        f"retained {STEP_DIR_PREFIX}* entries"
    )


def _checkpoint_blocks_dir(manifest: dict, directory: str) -> str:
    """Absolute block-store directory a delta manifest references."""
    relative = manifest.get("blocks_dir") or os.path.join(os.pardir, BLOCKS_DIRNAME)
    return os.path.normpath(os.path.join(directory, relative))


def _shard_state_paths(manifest: dict, directory: str, *, n_shards: int) -> list[str]:
    """Per-shard state file paths for either checkpoint format.

    Full manifests name files inside the entry (``shard_files``); delta
    manifests name content digests (``shard_blocks``) resolved against
    the shared block store next to the rotation root.  Either way the
    count must match the shard specs or the manifest is corrupt.
    """
    if manifest.get("format") == "delta":
        digests = _manifest_entry(manifest, "shard_blocks", directory)
        store = BlockStore(_checkpoint_blocks_dir(manifest, directory))
        paths = [store.path(str(digest)) for digest in digests]
        kind = "shard blocks"
    else:
        names = _manifest_entry(manifest, "shard_files", directory)
        paths = [os.path.join(directory, name) for name in names]
        kind = "shard files"
    if len(paths) != n_shards:
        raise CheckpointError(
            f"checkpoint manifest under {directory!r} lists "
            f"{n_shards} shards but {len(paths)} {kind}; "
            f"the manifest is corrupt — restore from an older rotation entry"
        )
    return paths


def compact_checkpoint(directory: str, target: str | None = None) -> str:
    """Rewrite a delta checkpoint as a self-contained full checkpoint.

    ``directory`` may be a concrete entry or a rotation root (newest
    entry).  With ``target`` the full copy is written there and the
    original is untouched — the way to export an archival checkpoint
    that pre-delta code can load.  Without it the entry is rewritten in
    place (atomically, via the rotation protocol's rename-aside) and
    blocks no longer referenced by any retained sibling are swept.
    Already-full checkpoints are returned (or copied) unchanged.
    """
    entry = resolve_checkpoint_dir(directory)
    manifest = read_manifest(entry)
    if manifest.get("format") != "delta":
        if target is None:
            return entry
        shutil.copytree(entry, target)
        return target
    digests = _manifest_entry(manifest, "shard_blocks", entry)
    store = BlockStore(_checkpoint_blocks_dir(manifest, entry))

    def write(dest: str) -> None:
        os.makedirs(dest, exist_ok=True)
        elastic = any(
            int(spec.get("start_step") or 0) > 0
            for spec in manifest.get("shards") or ()
        )
        shard_files = []
        for index, digest in enumerate(digests):
            state = load_shard_state(store.path(str(digest)))
            elastic = elastic or _state_is_topology_bearing(state)
            name = _shard_filename(index)
            save_state(os.path.join(dest, name), state)
            shard_files.append(name)
        full = {
            key: value
            for key, value in manifest.items()
            if key not in ("version", "format", "shard_blocks", "blocks_dir")
        }
        full["version"] = (
            ELASTIC_CHECKPOINT_VERSION if elastic else CHECKPOINT_VERSION
        )
        full["shard_files"] = shard_files
        with open(os.path.join(dest, MANIFEST_NAME), "w", encoding="utf-8") as handle:
            json.dump(full, handle, indent=2)

    if target is not None:
        write(target)
        return target
    tmp = entry + ".compact.tmp"
    if os.path.exists(tmp):
        shutil.rmtree(tmp)
    try:
        write(tmp)
    except BaseException:
        shutil.rmtree(tmp, ignore_errors=True)
        raise
    _discard(entry)
    os.rename(tmp, entry)
    # The rotation root that owns the block store (for a machine dir
    # inside a federated entry, that is the federated root — its other
    # entries and machines keep their references pinned).
    _sweep_blocks(os.path.dirname(os.path.abspath(store.root)), store.root)
    return entry


def load_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    executor=None,
    max_workers: int | None = None,
    resilience=None,
    fault_plan=None,
) -> FleetMonitor:
    """Rebuild a :class:`FleetMonitor` from a checkpoint directory.

    ``rules``/``sinks`` recreate the alert engine (code is not persisted).
    An engine is attached whenever the checkpoint carried engine state *or*
    the caller passes rules/sinks; persisted cooldown bookkeeping, when
    present, is restored so alert deduplication continues seamlessly.
    ``executor``/``max_workers`` configure the restored monitor's shard
    fan-out exactly as the :class:`FleetMonitor` constructor does; the
    executor starts lazily on first use, after the restored pipelines are
    installed.

    ``directory`` may be either a concrete checkpoint or a rotation root
    written with ``save_checkpoint(..., keep_last=N)`` — the latter
    resumes from the newest retained entry.

    ``resilience``/``fault_plan`` re-arm supervision on the restored
    monitor (policies are code, not data); the predecessor's quarantine
    record, when present in the manifest, is restored either way so the
    degradation stays visible across the restart.

    Damaged checkpoints — truncated or garbage shard files, missing
    manifest entries — raise :class:`CheckpointError` naming the file
    rather than leaking low-level numpy/zipfile/KeyError noise; each such
    failure also drops a flight-recorder bundle (a refused restore is
    exactly the moment the operator wants the black box).
    """
    requested = str(directory)
    try:
        return _load_checkpoint(
            directory,
            rules=rules,
            sinks=sinks,
            executor=executor,
            max_workers=max_workers,
            resilience=resilience,
            fault_plan=fault_plan,
        )
    except CheckpointError as exc:
        FLIGHT.record_note(
            "checkpoint_load_failed", path=requested, error=str(exc)
        )
        FLIGHT.dump(
            "checkpoint_load_failed",
            extra={"path": requested, "error": str(exc)},
        )
        raise


def _load_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    executor=None,
    max_workers: int | None = None,
    resilience=None,
    fault_plan=None,
) -> FleetMonitor:
    directory = resolve_checkpoint_dir(directory)
    manifest = read_manifest(directory)
    shards = [
        ShardSpec.from_dict(payload)
        for payload in _manifest_entry(manifest, "shards", directory)
    ]
    shard_paths = _shard_state_paths(manifest, directory, n_shards=len(shards))

    sinks = list(sinks)
    engine = None
    engine_state = _manifest_entry(manifest, "alert_engine", directory)
    if engine_state is not None or rules is not None or sinks:
        engine = AlertEngine(rules=rules, sinks=sinks)
        if engine_state is not None:
            engine.load_state_dict(engine_state)

    monitor = FleetMonitor(
        dt=float(_manifest_entry(manifest, "dt", directory)),
        shards=shards,
        config=PipelineConfig.from_dict(_manifest_entry(manifest, "config", directory)),
        alert_engine=engine,
        executor=executor,
        max_workers=max_workers,
        extra_rows=str(manifest.get("extra_rows", "raise")),
        missing_rows=str(manifest.get("missing_rows", "raise")),
        resilience=resilience,
        fault_plan=fault_plan,
    )
    for index, spec in enumerate(shards):
        monitor._pipelines[spec.shard_id] = OnlineAnalysisPipeline.from_state_dict(
            load_shard_state(shard_paths[index])
        )
        if resilience is not None:
            monitor._pipelines[spec.shard_id].validate_chunks = True
    monitor._step = int(_manifest_entry(manifest, "step", directory))
    monitor._chunk_index = int(manifest.get("chunks_ingested", 0))
    monitor._quarantined = {
        str(shard_id): dict(info)
        for shard_id, info in (manifest.get("quarantined") or {}).items()
    }
    return monitor

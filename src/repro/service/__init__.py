"""Fleet-scale monitoring service: sharded pipelines, checkpointing, alerts.

The service layer turns the single in-process
:class:`~repro.pipeline.online.OnlineAnalysisPipeline` into an operable
monitor for a whole machine:

* :mod:`repro.service.sharding` — pluggable row partitions (by rack, by
  metric group);
* :mod:`repro.service.monitor` — :class:`FleetMonitor`, the sharded
  streaming monitor with fleet-merged products;
* :mod:`repro.service.alerts` — rule-driven alerting with cooldown
  deduplication and pluggable sinks;
* :mod:`repro.service.checkpoint` — durable checkpoint/restore of the
  entire service state (bit-for-bit stream resumption);
* :mod:`repro.service.scenarios` — a catalog of named end-to-end
  workloads plus the runner that drives them.
"""

from .alerts import (
    Alert,
    AlertContext,
    AlertEngine,
    AlertRule,
    AlertSeverity,
    AlertSink,
    DriftRule,
    HardwareCorrelationRule,
    JsonLinesSink,
    RingBufferSink,
    ZScoreRule,
    default_rules,
)
from .checkpoint import (
    CheckpointError,
    CheckpointInfo,
    RotatedCheckpoint,
    compact_checkpoint,
    list_checkpoints,
    load_checkpoint,
    read_manifest,
    resolve_checkpoint_dir,
    save_checkpoint,
)
from .monitor import (
    FleetMonitor,
    FleetSnapshot,
    FleetSpectrum,
    IngestStats,
    TopologyUpdate,
)
from .scenarios import (
    SCENARIOS,
    Scenario,
    ScenarioResult,
    ScenarioRunner,
    get_scenario,
    mid_run_restart,
    noisy_neighbor_job,
    quiet_fleet,
    rack_cooling_failure,
    sensor_dropout,
)
from .sharding import (
    MetricSharding,
    RackSharding,
    ShardSpec,
    ShardingPolicy,
    SingleShard,
    validate_partition,
)

__all__ = [
    "Alert",
    "AlertContext",
    "AlertEngine",
    "AlertRule",
    "AlertSeverity",
    "AlertSink",
    "DriftRule",
    "HardwareCorrelationRule",
    "JsonLinesSink",
    "RingBufferSink",
    "ZScoreRule",
    "default_rules",
    "CheckpointError",
    "CheckpointInfo",
    "compact_checkpoint",
    "RotatedCheckpoint",
    "list_checkpoints",
    "load_checkpoint",
    "read_manifest",
    "resolve_checkpoint_dir",
    "save_checkpoint",
    "FleetMonitor",
    "FleetSnapshot",
    "FleetSpectrum",
    "IngestStats",
    "TopologyUpdate",
    "SCENARIOS",
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "get_scenario",
    "mid_run_restart",
    "noisy_neighbor_job",
    "quiet_fleet",
    "rack_cooling_failure",
    "sensor_dropout",
    "MetricSharding",
    "RackSharding",
    "ShardSpec",
    "ShardingPolicy",
    "SingleShard",
    "validate_partition",
]

"""Partitioning a machine's sensor matrix into monitor shards.

The fleet monitor never hands one giant ``(P, T)`` matrix to a single
decomposition: rows are partitioned into *shards* — by rack/cabinet
(spatially coherent dynamics stay together, matching the paper's rack-view
products) or by metric group (each sensor channel gets its own
decomposition) — and every shard runs its own
:class:`~repro.pipeline.online.OnlineAnalysisPipeline`.  Policies are
pluggable: anything that maps row metadata to a list of
:class:`ShardSpec` works.

A valid partition covers every row exactly once; :func:`validate_partition`
asserts that invariant and the tests rely on it.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..telemetry.generator import TelemetryStream
from ..telemetry.machine import MachineDescription

__all__ = [
    "ShardSpec",
    "ShardingPolicy",
    "RackSharding",
    "MetricSharding",
    "SingleShard",
    "validate_partition",
]


@dataclass(frozen=True)
class ShardSpec:
    """One shard of the fleet: a named subset of matrix rows.

    Attributes
    ----------
    shard_id:
        Stable human-readable identifier (``"rack-3"``, ``"metric-cpu_temp"``).
    row_indices:
        Indices into the *full* sensor matrix selecting this shard's rows.
    node_of_row:
        Populated-node index per selected row (aligned with
        ``row_indices``); feeds per-node products inside the shard.
    sensor_names:
        Channel name per selected row (diagnostics / alert messages).
    start_step:
        Absolute snapshot index at which this shard's stream begins.
        0 for shards present since the monitor started; shards minted by a
        mid-run topology event start at the fleet step of the event, and
        the monitor translates absolute query windows into shard-local
        ones using this offset.
    """

    shard_id: str
    row_indices: np.ndarray
    node_of_row: np.ndarray
    sensor_names: tuple[str, ...] = ()
    start_step: int = 0

    def extended(
        self,
        row_indices: np.ndarray,
        node_of_row: np.ndarray,
        sensor_names: Sequence[str] = (),
    ) -> "ShardSpec":
        """A copy of this spec with new rows appended (elastic growth)."""
        names = self.sensor_names
        if names or sensor_names:
            # Keep per-row name alignment: pad whichever side lacks names.
            names = tuple(names) + ("",) * max(0, self.n_rows - len(names))
            extra = tuple(str(s) for s in sensor_names)
            extra += ("",) * (len(np.atleast_1d(row_indices)) - len(extra))
            names = names + extra
        return ShardSpec(
            shard_id=self.shard_id,
            row_indices=np.concatenate(
                [self.row_indices, np.atleast_1d(np.asarray(row_indices, dtype=int))]
            ),
            node_of_row=np.concatenate(
                [self.node_of_row, np.atleast_1d(np.asarray(node_of_row, dtype=int))]
            ),
            sensor_names=names,
            start_step=self.start_step,
        )

    def __post_init__(self) -> None:
        object.__setattr__(self, "row_indices", np.asarray(self.row_indices, dtype=int))
        object.__setattr__(self, "node_of_row", np.asarray(self.node_of_row, dtype=int))
        if self.row_indices.ndim != 1 or self.row_indices.size == 0:
            raise ValueError(f"shard {self.shard_id!r} must select at least one row")
        if self.node_of_row.shape != self.row_indices.shape:
            raise ValueError(
                f"shard {self.shard_id!r}: node_of_row and row_indices lengths differ"
            )

    @property
    def n_rows(self) -> int:
        return int(self.row_indices.size)

    @property
    def nodes(self) -> np.ndarray:
        """Sorted unique node indices present in the shard."""
        return np.unique(self.node_of_row)

    def take(self, values: np.ndarray) -> np.ndarray:
        """Select this shard's rows from the full ``(P, T)`` matrix."""
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape!r}")
        return values[self.row_indices, :]

    # JSON-safe round trip for the checkpoint manifest. ----------------- #
    def to_dict(self) -> dict:
        return {
            "shard_id": self.shard_id,
            "row_indices": [int(i) for i in self.row_indices],
            "node_of_row": [int(n) for n in self.node_of_row],
            "sensor_names": list(self.sensor_names),
            "start_step": int(self.start_step),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "ShardSpec":
        return cls(
            shard_id=str(payload["shard_id"]),
            row_indices=np.asarray(payload["row_indices"], dtype=int),
            node_of_row=np.asarray(payload["node_of_row"], dtype=int),
            sensor_names=tuple(payload.get("sensor_names", ())),
            start_step=int(payload.get("start_step", 0)),
        )


def validate_partition(specs: Sequence[ShardSpec], n_rows: int) -> None:
    """Raise unless ``specs`` cover ``[0, n_rows)`` exactly once."""
    if not specs:
        raise ValueError("partition must contain at least one shard")
    seen = np.concatenate([spec.row_indices for spec in specs])
    if seen.size != n_rows or not np.array_equal(np.sort(seen), np.arange(n_rows)):
        raise ValueError(
            f"shards must cover all {n_rows} rows exactly once "
            f"(covered {seen.size}, {np.unique(seen).size} distinct)"
        )


class ShardingPolicy(ABC):
    """Maps row metadata onto a list of :class:`ShardSpec`."""

    #: Registry name recorded in checkpoints (informational only).
    name: str = "custom"

    @abstractmethod
    def partition(
        self,
        sensor_names: np.ndarray,
        node_of_row: np.ndarray,
        machine: MachineDescription | None = None,
    ) -> list[ShardSpec]:
        """Partition rows described by ``(sensor_names, node_of_row)``."""

    def partition_stream(self, stream: TelemetryStream) -> list[ShardSpec]:
        """Convenience wrapper taking a :class:`TelemetryStream`."""
        return self.partition(
            np.asarray(stream.sensor_names, dtype=object),
            np.asarray(stream.node_indices, dtype=int),
            stream.machine,
        )

    def repartition(
        self,
        specs: Sequence[ShardSpec],
        sensor_names: np.ndarray,
        node_of_row: np.ndarray,
        machine: MachineDescription | None = None,
        *,
        row_offset: int | None = None,
    ) -> list[ShardSpec]:
        """Map *new* rows onto an existing partition (elastic topology).

        ``sensor_names``/``node_of_row`` describe only the rows being
        added; their absolute matrix rows start at ``row_offset`` (default:
        one past the highest row the existing partition covers).  New rows
        whose policy-assigned shard id matches an existing spec *extend*
        that shard (same id — resident executor state survives); the rest
        mint new shards, appended after the existing ones.  Existing shard
        ids never change, so per-shard products, alert dedup keys and
        checkpoint layouts stay stable across topology events.

        The default implementation partitions the new rows alone and
        merges by shard id, which is exact for id-stable policies
        (:class:`SingleShard`, :class:`MetricSharding`);
        :class:`RackSharding` overrides it to match by rack group instead
        of by label.
        """
        specs = list(specs)
        if row_offset is None:
            row_offset = (
                max(int(spec.row_indices.max()) for spec in specs) + 1
                if specs
                else 0
            )
        new_specs = self.partition(
            np.asarray(sensor_names), np.asarray(node_of_row, dtype=int), machine
        )
        by_id = {spec.shard_id: index for index, spec in enumerate(specs)}
        out = list(specs)
        for spec in new_specs:
            absolute = spec.row_indices + row_offset
            if spec.shard_id in by_id:
                index = by_id[spec.shard_id]
                out[index] = out[index].extended(
                    absolute, spec.node_of_row, spec.sensor_names
                )
            else:
                out.append(
                    ShardSpec(
                        shard_id=spec.shard_id,
                        row_indices=absolute,
                        node_of_row=spec.node_of_row,
                        sensor_names=spec.sensor_names,
                    )
                )
        return out


class SingleShard(ShardingPolicy):
    """Everything in one shard — the pre-service single-pipeline behaviour."""

    name = "single"

    def partition(self, sensor_names, node_of_row, machine=None):
        node_of_row = np.asarray(node_of_row, dtype=int)
        return [
            ShardSpec(
                shard_id="all",
                row_indices=np.arange(node_of_row.size),
                node_of_row=node_of_row,
                sensor_names=tuple(str(s) for s in np.asarray(sensor_names)),
            )
        ]


class RackSharding(ShardingPolicy):
    """One shard per group of ``racks_per_shard`` racks.

    Requires a machine description (to map nodes to racks).  Rack-coherent
    dynamics (cooling loops, rack-level anomalies) stay within a shard, so
    per-shard spectra remain physically interpretable.
    """

    name = "rack"

    def __init__(self, racks_per_shard: int = 1) -> None:
        if racks_per_shard < 1:
            raise ValueError("racks_per_shard must be >= 1")
        self.racks_per_shard = int(racks_per_shard)

    def partition(self, sensor_names, node_of_row, machine=None):
        if machine is None:
            raise ValueError("RackSharding requires a machine description")
        sensor_names = np.asarray(sensor_names)
        node_of_row = np.asarray(node_of_row, dtype=int)
        rack_of_row = np.array(
            [machine.rack_of_node(int(n)) for n in node_of_row], dtype=int
        )
        group_of_row = rack_of_row // self.racks_per_shard
        specs = []
        for group in np.unique(group_of_row):
            rows = np.flatnonzero(group_of_row == group)
            racks = np.unique(rack_of_row[rows])
            label = f"rack-{racks[0]}" if racks.size == 1 else f"racks-{racks[0]}-{racks[-1]}"
            specs.append(
                ShardSpec(
                    shard_id=label,
                    row_indices=rows,
                    node_of_row=node_of_row[rows],
                    sensor_names=tuple(str(s) for s in sensor_names[rows]),
                )
            )
        return specs

    def repartition(
        self,
        specs: Sequence[ShardSpec],
        sensor_names: np.ndarray,
        node_of_row: np.ndarray,
        machine: MachineDescription | None = None,
        *,
        row_offset: int | None = None,
    ) -> list[ShardSpec]:
        """Match new rows to existing shards by *rack group*, not label.

        A shard's label records the racks it held when it was minted
        (``rack-2`` may later also hold rows from rack 3 when
        ``racks_per_shard > 1``), so group membership — recomputed from
        each spec's nodes — is the stable join key.  Ids never change.
        """
        if machine is None:
            raise ValueError("RackSharding requires a machine description")
        specs = list(specs)
        if row_offset is None:
            row_offset = (
                max(int(spec.row_indices.max()) for spec in specs) + 1
                if specs
                else 0
            )
        sensor_names = np.asarray(sensor_names)
        node_of_row = np.asarray(node_of_row, dtype=int)
        rack_of_row = np.array(
            [machine.rack_of_node(int(n)) for n in node_of_row], dtype=int
        )
        group_of_row = rack_of_row // self.racks_per_shard
        group_of_spec = {
            machine.rack_of_node(int(spec.node_of_row[0])) // self.racks_per_shard: i
            for i, spec in enumerate(specs)
        }
        out = list(specs)
        for group in np.unique(group_of_row):
            rows = np.flatnonzero(group_of_row == group)
            names = tuple(str(s) for s in sensor_names[rows])
            if int(group) in group_of_spec:
                index = group_of_spec[int(group)]
                out[index] = out[index].extended(
                    rows + row_offset, node_of_row[rows], names
                )
            else:
                racks = np.unique(rack_of_row[rows])
                label = (
                    f"rack-{racks[0]}"
                    if racks.size == 1
                    else f"racks-{racks[0]}-{racks[-1]}"
                )
                out.append(
                    ShardSpec(
                        shard_id=label,
                        row_indices=rows + row_offset,
                        node_of_row=node_of_row[rows],
                        sensor_names=names,
                    )
                )
        return out


class MetricSharding(ShardingPolicy):
    """One shard per sensor channel (metric group).

    Useful when channels have very different dynamics (temperatures vs
    power draw): each gets its own decomposition, baseline and spectrum.
    A node then appears in several shards; the fleet merge aggregates its
    per-shard z-scores.
    """

    name = "metric"

    def partition(self, sensor_names, node_of_row, machine=None):
        sensor_names = np.asarray(sensor_names)
        node_of_row = np.asarray(node_of_row, dtype=int)
        specs = []
        # dict preserves first-appearance order (rows are grouped by channel).
        for channel in dict.fromkeys(str(s) for s in sensor_names):
            rows = np.flatnonzero(sensor_names.astype(str) == channel)
            specs.append(
                ShardSpec(
                    shard_id=f"metric-{channel}",
                    row_indices=rows,
                    node_of_row=node_of_row[rows],
                    sensor_names=(channel,) * rows.size,
                )
            )
        return specs

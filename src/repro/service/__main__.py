"""Command-line entry point for the fleet-monitoring service.

Runs any scenario from the catalog straight from the shell::

    python -m repro.service --list
    python -m repro.service rack-cooling-failure
    python -m repro.service mid-run-restart --executor process --workers 4
    python -m repro.service noisy-neighbor-job --alerts-jsonl alerts.jsonl
    python -m repro.service federated_fleet --executor thread

The runner drives a :class:`~repro.service.monitor.FleetMonitor` (or, for
federated scenarios, a
:class:`~repro.federation.monitor.FederatedMonitor` over a machine
registry) through the scenario's stream on persistent executors,
evaluating alerts after every chunk, and prints an operator-style summary
(alert trail, alerted racks/machines, the hottest rack-view values over
the recent window).  Scenario names accept ``-`` and ``_``
interchangeably; an unknown name prints the catalog and exits non-zero.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile

from .. import obs
from ..federation.scenario import (
    FEDERATED_SCENARIOS,
    FederatedScenarioRunner,
    get_federated_scenario,
)
from .alerts import AlertSeverity, JsonLinesSink, RingBufferSink
from .scenarios import SCENARIOS, get_scenario
from .scenarios import ScenarioRunner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a fleet-monitoring scenario from the catalog.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help="catalog name (see --list; '-' and '_' are interchangeable)",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the scenario catalog and exit"
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="fan-out backend: shards for single-machine scenarios, machines "
        "for federated ones (persistent across chunks; default serial)",
    )
    parser.add_argument(
        "--machine-executor",
        choices=("serial", "thread"),
        default="serial",
        help="per-machine shard fan-out inside a federated scenario "
        "(default serial; process is reserved for the machine level)",
    )
    parser.add_argument(
        "--deep-levels",
        choices=("inline", "deferred"),
        default=None,
        help="override the scenario's deep-level mode: 'deferred' queues "
        "levels-2..L work and refreshes it asynchronously between chunks "
        "(default: whatever the scenario config says, normally inline)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for thread/process executors (default: one per "
        "shard/machine)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="where (restart / federated) scenarios persist checkpoints "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="single-machine scenarios: save a rotated checkpoint every N "
        "streaming chunks (uses --checkpoint-dir, or a temporary directory)",
    )
    parser.add_argument(
        "--checkpoint-mode",
        choices=("sync", "async"),
        default="sync",
        help="periodic/rotating checkpoint mode: 'async' moves "
        "serialisation onto a background writer off the chunk loop "
        "(default sync)",
    )
    parser.add_argument(
        "--checkpoint-format",
        choices=("full", "delta"),
        default="full",
        help="periodic/rotating checkpoint format: 'delta' writes only "
        "shards whose state changed, sharing unchanged blocks with the "
        "previous rotation entry (default full)",
    )
    parser.add_argument(
        "--checkpoint-keep-last",
        type=int,
        default=3,
        metavar="K",
        help="rotation depth for --checkpoint-every entries (default 3)",
    )
    parser.add_argument(
        "--alerts-jsonl",
        default=None,
        metavar="PATH",
        help="also append every alert to a JSON-lines audit file",
    )
    parser.add_argument(
        "--metrics-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs and write the session's metrics registry "
        "(plus derived span/throughput/alert summaries) as JSON",
    )
    parser.add_argument(
        "--trace-out",
        default=None,
        metavar="PATH",
        help="enable repro.obs and stream span events to a JSON-lines "
        "trace file (implies metrics collection)",
    )
    parser.add_argument(
        "--trace-format",
        choices=("jsonl", "chrome"),
        default="jsonl",
        help="--trace-out format: native JSON-lines span events (default) "
        "or Chrome trace-event JSON loadable in Perfetto / chrome://tracing",
    )
    parser.add_argument(
        "--metrics-format",
        choices=("json", "openmetrics"),
        default="json",
        help="--metrics-out format: schema-versioned JSON registry dump "
        "(default) or OpenMetrics/Prometheus text exposition",
    )
    parser.add_argument(
        "--flight-dir",
        default=None,
        metavar="DIR",
        help="where flight-recorder post-mortem bundles land (quarantines, "
        "worker losses, refused checkpoint loads); the black box itself is "
        "always on",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=100,
        metavar="T",
        help="trailing window (snapshots) for the final rack-view summary",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=8,
        metavar="K",
        help="how many of the hottest nodes to print (default 8)",
    )
    return parser


def _catalog_lines() -> list[str]:
    lines = []
    for name in sorted(SCENARIOS):
        lines.append(f"{name:24s} {SCENARIOS[name]().description}")
    for name in sorted(FEDERATED_SCENARIOS):
        lines.append(f"{name:24s} [federated] {FEDERATED_SCENARIOS[name]().description}")
    return lines


def _print_alert_trail(alerts, top: int) -> None:
    for severity in reversed(AlertSeverity):
        count = sum(1 for alert in alerts if alert.severity is severity)
        if count:
            print(f"  {severity.name:8s} {count}")
    for alert in alerts[:top]:
        origin = f" [{alert.machine}]" if alert.machine else ""
        print(f"  [{alert.severity.name:8s}]{origin} step {alert.step}: {alert.message}")
    if len(alerts) > top:
        print(f"  ... and {len(alerts) - top} more")


def _print_health(health: dict | None) -> None:
    """One line per scored entity from the final round's health dict."""
    if not health:
        return
    print("fleet health:")
    for entity in sorted(health):
        score = health[entity]
        print(f"  {entity:16s} {score.score:.2f} ({score.status})")


def _run(args: argparse.Namespace, name: str) -> int:
    scenario = get_scenario(name)
    machine = scenario.machine
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(
        f"machine:  {machine.n_nodes} nodes in {machine.n_racks} racks, "
        f"dt={machine.dt_seconds:.0f}s"
    )
    print(
        f"stream:   {scenario.total_steps} snapshots (initial "
        f"{scenario.initial_size}, {scenario.n_chunks} chunks of "
        f"{scenario.chunk_size}); executor={args.executor}"
    )
    if args.checkpoint_every is not None:
        print(
            f"periodic checkpoints: every {args.checkpoint_every} chunk(s), "
            f"format={args.checkpoint_format}, mode={args.checkpoint_mode}, "
            f"keep_last={args.checkpoint_keep_last}"
        )

    sinks = [RingBufferSink()]
    if args.alerts_jsonl:
        sinks.append(JsonLinesSink(args.alerts_jsonl))

    def run_with(checkpoint_dir: str | None):
        return ScenarioRunner(
            scenario,
            sinks=sinks,
            checkpoint_dir=checkpoint_dir,
            executor=args.executor,
            max_workers=args.workers,
            deep_levels=args.deep_levels,
            checkpoint_every=args.checkpoint_every,
            checkpoint_mode=args.checkpoint_mode,
            checkpoint_format=args.checkpoint_format,
            checkpoint_keep_last=args.checkpoint_keep_last,
        ).run()

    needs_dir = (
        scenario.restart_after_chunk is not None
        or args.checkpoint_every is not None
    )
    if needs_dir and args.checkpoint_dir is None:
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            result = run_with(checkpoint_dir)
    else:
        result = run_with(args.checkpoint_dir)

    print(
        f"\n{len(result.alerts)} alert(s) over {result.n_chunks} chunks"
        + (" (service restarted mid-run)" if result.restarted else "")
    )
    _print_alert_trail(result.alerts, args.top)

    alerted_racks = sorted(
        {machine.rack_of_node(node) for node in result.alerted_nodes()}
    )
    print(f"alerted racks: {alerted_racks or 'none'}")

    quarantined = result.monitor.quarantined_shards
    if quarantined:
        print(f"quarantined shards ({len(quarantined)}):")
        for shard_id in quarantined:
            info = result.monitor.quarantine_info[shard_id]
            print(
                f"  {shard_id}: step {info['step']}, "
                f"{info['attempts']} attempt(s) — {info['reason']}"
            )
    _print_health(result.monitor.health)

    # Recent-window rack view: the monitor is closed (state landed
    # in-process), and the windowed query only expands the window's modes.
    monitor = result.monitor
    lo = max(0, monitor.step - args.window)
    recent = monitor.rack_values(time_range=(lo, monitor.step))
    hottest = sorted(recent.items(), key=lambda item: item[1], reverse=True)
    print(f"hottest nodes over the last {monitor.step - lo} snapshots:")
    for node, z in hottest[: args.top]:
        print(f"  node {node:3d} (rack {machine.rack_of_node(node)}): z = {z:+.2f}")
    if args.alerts_jsonl:
        print(f"alert audit trail appended to {args.alerts_jsonl}")
    return 0


def _run_federated(args: argparse.Namespace, name: str) -> int:
    scenario = get_federated_scenario(name)
    print(f"scenario: {scenario.name} — {scenario.description}")
    for machine_name, sc in scenario.machines:
        print(
            f"machine {machine_name:8s} {sc.machine.n_nodes} nodes in "
            f"{sc.machine.n_racks} racks — {sc.name}"
        )
    print(
        f"stream:   {scenario.machines[0][1].total_steps} snapshots per machine, "
        f"{scenario.n_chunks} chunks; fan-out executor={args.executor}, "
        f"machine executor={args.machine_executor}; rotating checkpoints "
        f"keep_last={scenario.keep_last}"
    )

    sinks = [RingBufferSink()]
    if args.alerts_jsonl:
        sinks.append(JsonLinesSink(args.alerts_jsonl))

    def run_with(checkpoint_dir: str | None):
        return FederatedScenarioRunner(
            scenario,
            sinks=sinks,
            checkpoint_dir=checkpoint_dir,
            executor=args.executor,
            machine_executor=args.machine_executor,
            max_workers=args.workers,
            deep_levels=args.deep_levels,
            checkpoint_mode=args.checkpoint_mode,
            checkpoint_format=args.checkpoint_format,
        ).run()

    if args.checkpoint_dir is None:
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            result = run_with(checkpoint_dir)
    else:
        result = run_with(args.checkpoint_dir)

    print(
        f"\n{len(result.alerts)} alert(s) over {result.n_chunks} chunks"
        + (" (federation restarted mid-run)" if result.restarted else "")
    )
    _print_alert_trail(result.alerts, args.top)
    print(f"alerted machines: {sorted(result.alerted_machines()) or 'none'}")
    _print_health(result.federated.health)
    for machine_name, update in result.topology_updates.items():
        grown = ", ".join(sorted(update.extended)) or "none"
        minted = ", ".join(update.minted) or "none"
        print(
            f"topology: {machine_name} +{update.n_new_rows} sensors at step "
            f"{update.step} (extended shards: {grown}; minted: {minted})"
        )
    if result.joined:
        print(f"machines joined mid-run: {list(result.joined)}")
    if result.stale_restored:
        print(
            f"stale restore: {result.scenario.stale_restore_machine} rebuilt "
            f"one rotation entry behind, {result.chunks_replayed} chunk(s) "
            f"replayed from the shared log"
        )
    fleet_wide = result.alerts_for_rule("fleet-wide-drift")
    if fleet_wide:
        print(f"fleet-wide drift alerts: {len(fleet_wide)}")
    if result.checkpoints:
        steps = [entry.step for entry in result.checkpoints]
        print(
            f"retained checkpoints (newest first): steps {steps} "
            f"(keep_last={scenario.keep_last})"
        )

    federated = result.federated
    lo = max(0, federated.step - args.window)
    zmap = federated.zscore_map(time_range=(lo, federated.step))
    hottest = sorted(zmap.items(), key=lambda item: item[1], reverse=True)
    print(f"hottest machine/node over the last {federated.step - lo} snapshots:")
    for key, z in hottest[: args.top]:
        print(f"  {key:16s} z = {z:+.2f}")
    if args.alerts_jsonl:
        print(f"alert audit trail appended to {args.alerts_jsonl}")
    return 0


def _finish_observability(
    args: argparse.Namespace, trace_jsonl: str | None
) -> None:
    """Write ``--metrics-out`` / ``--trace-out`` and print the digest."""
    registry = obs.OBS.metrics
    if args.metrics_out:
        if args.metrics_format == "openmetrics":
            obs.export.write_openmetrics(registry, args.metrics_out)
        else:
            with open(args.metrics_out, "w", encoding="utf-8") as handle:
                json.dump(obs.report.metrics_json(registry), handle, indent=2)
                handle.write("\n")
    if args.trace_out and args.trace_format == "chrome":
        # The span sink streamed JSON-lines to a sidecar file (the chrome
        # format is one JSON object, not appendable); fold it into a
        # Perfetto / chrome://tracing loadable trace now the run is over.
        header, events = obs.export.read_trace(trace_jsonl)
        obs.export.write_chrome_trace(
            events, args.trace_out, trace_id=header.get("trace_id")
        )
    print()
    print(obs.report.render_text(registry))
    if args.metrics_out:
        print(f"metrics written to {args.metrics_out} ({args.metrics_format})")
    if args.trace_out:
        print(f"span trace written to {args.trace_out} ({args.trace_format})")


def _finish_flight(args: argparse.Namespace) -> None:
    """Name the post-mortem bundles the run dropped (if any)."""
    written = [
        bundle["path"]
        for bundle in obs.flight.FLIGHT.bundles
        if bundle.get("path")
    ]
    print(
        f"flight recorder: {len(written)} post-mortem bundle(s) "
        f"under {args.flight_dir}"
    )
    for path in written:
        print(f"  {path}")


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for line in _catalog_lines():
            print(line)
        return 0
    if args.scenario is None:
        parser.error("a scenario name (or --list) is required")
    name = args.scenario.replace("_", "-")
    observe = bool(args.metrics_out or args.trace_out)
    if args.flight_dir:
        obs.flight.configure(dump_dir=args.flight_dir)
    trace_jsonl = args.trace_out
    sidecar = None
    if observe:
        if args.trace_out and args.trace_format == "chrome":
            fd, sidecar = tempfile.mkstemp(suffix=".trace.jsonl")
            os.close(fd)
            trace_jsonl = sidecar
        obs.enable(trace_path=trace_jsonl)
    try:
        if name in FEDERATED_SCENARIOS:
            code = _run_federated(args, name)
        elif name in SCENARIOS:
            code = _run(args, name)
        else:
            # Unknown name: show the catalog instead of a traceback.
            print(
                f"unknown scenario {args.scenario!r}; available:",
                file=sys.stderr,
            )
            for line in _catalog_lines():
                print(f"  {line}", file=sys.stderr)
            return 2
        if observe:
            _finish_observability(args, trace_jsonl)
        if args.flight_dir:
            _finish_flight(args)
        return code
    finally:
        if observe:
            # Leave the module-level provider pristine for embedders (and
            # repeated ``main()`` calls in tests).
            obs.OBS.reset()
        # Same discipline for the always-on black box.
        obs.flight.FLIGHT.reset()
        if sidecar is not None:
            try:
                os.remove(sidecar)
            except OSError:
                pass


if __name__ == "__main__":
    sys.exit(main())

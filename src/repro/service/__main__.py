"""Command-line entry point for the fleet-monitoring service.

Runs any scenario from the catalog straight from the shell::

    python -m repro.service --list
    python -m repro.service rack-cooling-failure
    python -m repro.service mid-run-restart --executor process --workers 4
    python -m repro.service noisy-neighbor-job --alerts-jsonl alerts.jsonl

The runner drives a :class:`~repro.service.monitor.FleetMonitor` through
the scenario's stream on a persistent shard executor, evaluating alerts
after every chunk, and prints an operator-style summary (alert trail,
alerted racks, the hottest rack-view values over the recent window).
"""

from __future__ import annotations

import argparse
import sys
import tempfile

from .alerts import AlertSeverity, JsonLinesSink, RingBufferSink
from .scenarios import SCENARIOS, get_scenario
from .scenarios import ScenarioRunner


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Run a fleet-monitoring scenario from the catalog.",
    )
    parser.add_argument(
        "scenario",
        nargs="?",
        help=f"catalog name (one of: {', '.join(sorted(SCENARIOS))})",
    )
    parser.add_argument(
        "--list", action="store_true", help="list the scenario catalog and exit"
    )
    parser.add_argument(
        "--executor",
        choices=("serial", "thread", "process"),
        default="serial",
        help="shard fan-out backend (persistent across chunks; default serial)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="worker count for thread/process executors (default: one per shard)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="where restart scenarios persist their checkpoint "
        "(default: a temporary directory)",
    )
    parser.add_argument(
        "--alerts-jsonl",
        default=None,
        metavar="PATH",
        help="also append every alert to a JSON-lines audit file",
    )
    parser.add_argument(
        "--window",
        type=int,
        default=100,
        metavar="T",
        help="trailing window (snapshots) for the final rack-view summary",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=8,
        metavar="K",
        help="how many of the hottest nodes to print (default 8)",
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    scenario = get_scenario(args.scenario)
    machine = scenario.machine
    print(f"scenario: {scenario.name} — {scenario.description}")
    print(
        f"machine:  {machine.n_nodes} nodes in {machine.n_racks} racks, "
        f"dt={machine.dt_seconds:.0f}s"
    )
    print(
        f"stream:   {scenario.total_steps} snapshots (initial "
        f"{scenario.initial_size}, {scenario.n_chunks} chunks of "
        f"{scenario.chunk_size}); executor={args.executor}"
    )

    sinks = [RingBufferSink()]
    if args.alerts_jsonl:
        sinks.append(JsonLinesSink(args.alerts_jsonl))

    def run_with(checkpoint_dir: str | None):
        return ScenarioRunner(
            scenario,
            sinks=sinks,
            checkpoint_dir=checkpoint_dir,
            executor=args.executor,
            max_workers=args.workers,
        ).run()

    if scenario.restart_after_chunk is not None and args.checkpoint_dir is None:
        with tempfile.TemporaryDirectory() as checkpoint_dir:
            result = run_with(checkpoint_dir)
    else:
        result = run_with(args.checkpoint_dir)

    print(
        f"\n{len(result.alerts)} alert(s) over {result.n_chunks} chunks"
        + (" (service restarted mid-run)" if result.restarted else "")
    )
    for severity in reversed(AlertSeverity):
        count = sum(1 for alert in result.alerts if alert.severity is severity)
        if count:
            print(f"  {severity.name:8s} {count}")
    for alert in result.alerts[: args.top]:
        print(f"  [{alert.severity.name:8s}] step {alert.step}: {alert.message}")
    if len(result.alerts) > args.top:
        print(f"  ... and {len(result.alerts) - args.top} more")

    alerted_racks = sorted(
        {machine.rack_of_node(node) for node in result.alerted_nodes()}
    )
    print(f"alerted racks: {alerted_racks or 'none'}")

    # Recent-window rack view: the monitor is closed (state landed
    # in-process), and the windowed query only expands the window's modes.
    monitor = result.monitor
    lo = max(0, monitor.step - args.window)
    recent = monitor.rack_values(time_range=(lo, monitor.step))
    hottest = sorted(recent.items(), key=lambda item: item[1], reverse=True)
    print(f"hottest nodes over the last {monitor.step - lo} snapshots:")
    for node, z in hottest[: args.top]:
        print(f"  node {node:3d} (rack {machine.rack_of_node(node)}): z = {z:+.2f}")
    if args.alerts_jsonl:
        print(f"alert audit trail appended to {args.alerts_jsonl}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    if args.list:
        for name in sorted(SCENARIOS):
            print(f"{name:24s} {SCENARIOS[name]().description}")
        return 0
    if args.scenario is None:
        parser.error("a scenario name (or --list) is required")
    if args.scenario not in SCENARIOS:
        parser.error(
            f"unknown scenario {args.scenario!r}; available: {sorted(SCENARIOS)}"
        )
    return _run(args)


if __name__ == "__main__":
    sys.exit(main())

"""Rule-driven alerting over the fleet monitor's analysis products.

The paper stops at *views* (rack layouts, spectra) an operator reads; a
long-running service also needs *push* notifications.  This module turns
the per-update products — merged node z-scores, per-shard drift records,
the hardware log — into typed :class:`Alert` events:

* :class:`ZScoreRule` — nodes whose aggregated z-score leaves the baseline
  band (``> extreme``: overheating risk; ``< -extreme``: idle/stalled);
* :class:`DriftRule` — a shard's level-1 slow-mode drift exceeded its
  threshold (the paper's "recompute levels 2..L" trigger);
* :class:`HardwareCorrelationRule` — a z-score-flagged node *also* reported
  hardware events in the recent window (the Q3 alignment, as an alert).

The engine deduplicates per (rule, shard, node) with a cooldown so a
persistently hot node raises one alert per cooldown period instead of one
per chunk, and fans alerts out to pluggable sinks (in-memory ring buffer,
JSON-lines file).  Engine dedup state is serialisable so a restored
service does not re-fire alerts it already delivered.
"""

from __future__ import annotations

import json
import os
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterable, Sequence

from ..align.zscore_map import NodeZScores
from ..core.baseline import ZScoreCategory
from ..core.imrdmd import UpdateRecord
from ..hwlog.events import HardwareLog
from ..obs import OBS
from ..util.growbuf import RingBuffer

__all__ = [
    "AlertSeverity",
    "Alert",
    "AlertContext",
    "AlertRule",
    "ZScoreRule",
    "DriftRule",
    "HardwareCorrelationRule",
    "AlertSink",
    "RingBufferSink",
    "JsonLinesSink",
    "AlertEngine",
    "default_rules",
]


class AlertSeverity(IntEnum):
    """Operator-facing urgency (ordered: comparisons work)."""

    INFO = 0
    WARNING = 1
    CRITICAL = 2


@dataclass(frozen=True)
class Alert:
    """One alert occurrence.

    Attributes
    ----------
    rule:
        Name of the rule that fired.
    severity:
        :class:`AlertSeverity`.
    step:
        Absolute snapshot index at which the condition was observed.
    message:
        Human-readable description.
    node:
        Populated-node index, when the alert is node-scoped.
    shard_id:
        Shard the evidence came from, when shard-scoped.
    value:
        The triggering measurement (z-score, drift norm, event count).
    machine:
        Origin machine in a federated deployment (stamped by
        :class:`repro.federation.AlertRouter`); ``None`` for single-machine
        monitors and for fleet-wide alerts that span machines.
    """

    rule: str
    severity: AlertSeverity
    step: int
    message: str
    node: int | None = None
    shard_id: str | None = None
    value: float | None = None
    machine: str | None = None

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity.name,
            "step": self.step,
            "message": self.message,
            "node": self.node,
            "shard_id": self.shard_id,
            "value": self.value,
            "machine": self.machine,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "Alert":
        """Rebuild an alert from :meth:`to_dict` output.

        Forward/backward compatible by construction: only the known keys
        are read, so payloads written by newer versions (extra keys) and
        older ones (missing optional keys, e.g. pre-federation alerts
        without ``machine``) both load cleanly.
        """
        machine = payload.get("machine")
        return cls(
            rule=str(payload["rule"]),
            severity=AlertSeverity[str(payload["severity"])],
            step=int(payload["step"]),
            message=str(payload["message"]),
            node=None if payload.get("node") is None else int(payload["node"]),
            shard_id=payload.get("shard_id"),
            value=None if payload.get("value") is None else float(payload["value"]),
            machine=None if machine is None else str(machine),
        )


@dataclass
class AlertContext:
    """Everything rules may inspect after one ingest step.

    Attributes
    ----------
    step:
        Absolute snapshot index of the end of the ingested timeline.
    node_zscores:
        Fleet-merged per-node z-scores (may be ``None`` before a baseline
        exists).
    updates:
        Latest :class:`~repro.core.imrdmd.UpdateRecord` per shard
        (``None`` for shards still in their initial fit).
    hwlog:
        Hardware-event log covering the monitored window, when available.
    window:
        Number of trailing snapshots rules should consider "recent".
    deep_stale:
        Per-shard deep-level staleness ages (snapshots ingested since the
        shard's oldest un-refreshed chunk), for fleets running
        ``deep_levels="deferred"``.  Shards absent from the mapping are
        fully refreshed; always empty under ``deep_levels="inline"``.
    degraded_shards:
        Shards currently quarantined by the supervisor's retry policy
        (see :class:`repro.resilience.ResiliencePolicy`): their pipelines
        are excluded from ingest and fleet merges, and the engine
        synthesises a ``shard_quarantined`` alert per entry so the
        degradation is visible through the ordinary alert channel.
    """

    step: int
    node_zscores: NodeZScores | None = None
    updates: dict[str, UpdateRecord | None] = field(default_factory=dict)
    hwlog: HardwareLog | None = None
    window: int = 200
    deep_stale: dict[str, int] = field(default_factory=dict)
    degraded_shards: tuple[str, ...] = ()


class AlertRule(ABC):
    """One alert condition; stateless — dedup lives in the engine."""

    name: str = "rule"

    @abstractmethod
    def evaluate(self, context: AlertContext) -> list[Alert]:
        """Return every alert the context justifies (pre-dedup)."""


class ZScoreRule(AlertRule):
    """Nodes outside the z-score baseline band.

    ``VERY_HIGH`` nodes (overheating risk) raise CRITICAL alerts;
    ``VERY_LOW`` nodes (idle / stalled jobs) raise WARNINGs, mirroring the
    paper's reading of the two tails.
    """

    name = "zscore"

    def evaluate(self, context: AlertContext) -> list[Alert]:
        scores = context.node_zscores
        if scores is None:
            return []
        alerts = []
        by_node = {int(n): float(z) for n, z in zip(scores.node_indices, scores.zscores)}
        for node in scores.nodes_in_category(ZScoreCategory.VERY_HIGH):
            z = float(by_node[int(node)])
            alerts.append(Alert(
                rule=self.name,
                severity=AlertSeverity.CRITICAL,
                step=context.step,
                node=int(node),
                value=z,
                message=f"node {int(node)} z-score {z:+.2f} above extreme threshold (overheating risk)",
            ))
        for node in scores.nodes_in_category(ZScoreCategory.VERY_LOW):
            z = float(by_node[int(node)])
            alerts.append(Alert(
                rule=self.name,
                severity=AlertSeverity.WARNING,
                step=context.step,
                node=int(node),
                value=z,
                message=f"node {int(node)} z-score {z:+.2f} below -extreme threshold (idle / stalled)",
            ))
        return alerts


class DriftRule(AlertRule):
    """Level-1 slow-mode drift crossed a threshold in some shard.

    Fires when a shard's latest update is flagged ``stale`` (its model's
    own ``drift_threshold`` was exceeded) or, when ``threshold`` is given,
    whenever the drift norm itself crosses it — the service-side hook for
    scheduling the paper's asynchronous deep-level refresh.
    """

    name = "drift"

    def __init__(self, threshold: float | None = None) -> None:
        if threshold is not None and threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.threshold = threshold

    def evaluate(self, context: AlertContext) -> list[Alert]:
        alerts = []
        for shard_id, record in context.updates.items():
            if record is None:
                continue
            crossed = record.stale or (
                self.threshold is not None and record.drift > self.threshold
            )
            if not crossed:
                continue
            stale_age = int(context.deep_stale.get(shard_id, 0))
            suffix = (
                f" ({stale_age} snapshots of deep-level work queued for "
                f"background refresh)"
                if stale_age
                else ""
            )
            alerts.append(Alert(
                rule=self.name,
                severity=AlertSeverity.WARNING,
                step=context.step,
                shard_id=shard_id,
                value=float(record.drift),
                message=(
                    f"shard {shard_id}: level-1 mode drift {record.drift:.3g} "
                    f"exceeded threshold — deep levels stale, refresh "
                    f"recommended{suffix}"
                ),
            ))
        return alerts


class HardwareCorrelationRule(AlertRule):
    """Thermally-flagged nodes that also report hardware events.

    The strongest signal the paper's Q3 alignment produces: a node the
    z-scores flag as anomalous *and* the hardware log implicates within
    the recent window is very likely genuinely unhealthy.
    """

    name = "hardware-correlation"

    def __init__(self, min_events: int = 1) -> None:
        if min_events < 1:
            raise ValueError("min_events must be >= 1")
        self.min_events = int(min_events)

    def evaluate(self, context: AlertContext) -> list[Alert]:
        scores = context.node_zscores
        if scores is None or context.hwlog is None:
            return []
        flagged = set(int(n) for n in scores.hot_nodes()) | set(
            int(n) for n in scores.cold_nodes()
        )
        if not flagged:
            return []
        lo = max(0, context.step - context.window)
        recent = context.hwlog.events_in_window(lo, context.step)
        counts: dict[int, int] = {}
        for event in recent:
            if event.node in flagged:
                counts[event.node] = counts.get(event.node, 0) + 1
        alerts = []
        for node, count in sorted(counts.items()):
            if count < self.min_events:
                continue
            alerts.append(Alert(
                rule=self.name,
                severity=AlertSeverity.CRITICAL,
                step=context.step,
                node=node,
                value=float(count),
                message=(
                    f"node {node} is z-score-flagged and reported {count} hardware "
                    f"event(s) in the last {context.step - lo} snapshots"
                ),
            ))
        return alerts


def default_rules() -> list[AlertRule]:
    """The rule set the scenario runner and examples install."""
    return [ZScoreRule(), DriftRule(), HardwareCorrelationRule()]


# --------------------------------------------------------------------------- #
# Sinks
# --------------------------------------------------------------------------- #
class AlertSink(ABC):
    """Receives every deduplicated alert the engine emits."""

    @abstractmethod
    def emit(self, alert: Alert) -> None:
        """Deliver one alert."""


class RingBufferSink(AlertSink):
    """Keeps the most recent ``capacity`` alerts in memory.

    Backed by the shared :class:`repro.util.growbuf.RingBuffer` (O(1)
    append, slots allocated once up front).
    """

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self._buffer: RingBuffer = RingBuffer(capacity)

    def emit(self, alert: Alert) -> None:
        self._buffer.append(alert)

    @property
    def alerts(self) -> list[Alert]:
        """Buffered alerts, oldest first."""
        return list(self._buffer)

    def by_severity(self, severity: AlertSeverity) -> list[Alert]:
        return [a for a in self._buffer if a.severity is severity]

    def __len__(self) -> int:
        return len(self._buffer)


class JsonLinesSink(AlertSink):
    """Appends one JSON object per alert to a file (audit trail)."""

    def __init__(self, path: str) -> None:
        self.path = path
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    def emit(self, alert: Alert) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(alert.to_dict()) + "\n")

    def read(self) -> list[Alert]:
        """Load every alert written so far."""
        alerts = []
        with open(self.path, "r", encoding="utf-8") as handle:
            for line in handle:
                line = line.strip()
                if line:
                    alerts.append(Alert.from_dict(json.loads(line)))
        return alerts


# --------------------------------------------------------------------------- #
# Engine
# --------------------------------------------------------------------------- #
class AlertEngine:
    """Evaluates rules, deduplicates with a cooldown, routes to sinks.

    Parameters
    ----------
    rules:
        The rule set (default: :func:`default_rules`).
    sinks:
        Zero or more :class:`AlertSink` targets.
    cooldown:
        Minimum number of snapshots between two alerts with the same
        (rule, shard, node) key.  A node that stays hot for hours raises
        one alert per cooldown period, not one per ingest.
    """

    def __init__(
        self,
        rules: Sequence[AlertRule] | None = None,
        sinks: Iterable[AlertSink] = (),
        *,
        cooldown: int = 120,
    ) -> None:
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.rules = list(rules) if rules is not None else default_rules()
        self.sinks = list(sinks)
        self.cooldown = int(cooldown)
        self._last_fired: dict[tuple[str, str, str], int] = {}
        self._n_evaluations = 0
        self._n_fired = 0
        self._n_suppressed = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(alert: Alert) -> tuple[str, str, str]:
        return (alert.rule, str(alert.shard_id), str(alert.node))

    def evaluate(self, context: AlertContext) -> list[Alert]:
        """Run every rule, dedup, emit to sinks; returns fired alerts."""
        self._n_evaluations += 1
        OBS.inc("alerts.evaluations")
        fired: list[Alert] = []
        for rule in self.rules:
            for alert in rule.evaluate(context):
                self._dispatch(alert, context, fired)
        # Quarantine visibility is engine-level, not a rule: every engine
        # reports a degraded fleet regardless of the configured rule set,
        # through the same cooldown/dedup/sink machinery as rule alerts.
        for shard_id in context.degraded_shards:
            self._dispatch(
                Alert(
                    rule="shard_quarantined",
                    severity=AlertSeverity.WARNING,
                    step=context.step,
                    shard_id=shard_id,
                    message=(
                        f"shard {shard_id!r} is quarantined: repeated task "
                        f"failures exhausted its retry budget; its rows are "
                        f"excluded from ingest and fleet merges until "
                        f"reinstated"
                    ),
                ),
                context,
                fired,
            )
        self._n_fired += len(fired)
        return fired

    def _dispatch(
        self, alert: Alert, context: AlertContext, fired: list[Alert]
    ) -> None:
        """Dedup one candidate alert and deliver it to sinks if it fires."""
        key = self._key(alert)
        last = self._last_fired.get(key)
        if last is not None and context.step - last < self.cooldown:
            self._n_suppressed += 1
            OBS.inc("alerts.suppressed", rule=alert.rule)
            return
        self._last_fired[key] = context.step
        fired.append(alert)
        OBS.inc("alerts.fired", rule=alert.rule)
        for sink in self.sinks:
            sink.emit(alert)

    @property
    def stats(self) -> dict[str, int]:
        """Evaluation / fire / suppression counters."""
        return {
            "evaluations": self._n_evaluations,
            "fired": self._n_fired,
            "suppressed": self._n_suppressed,
        }

    # ------------------------------------------------------------------ #
    # Serialisation (dedup state only — rules and sinks are code)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "cooldown": self.cooldown,
            "last_fired": [
                {"rule": k[0], "shard": k[1], "node": k[2], "step": v}
                for k, v in sorted(self._last_fired.items())
            ],
            "n_evaluations": self._n_evaluations,
            "n_fired": self._n_fired,
            "n_suppressed": self._n_suppressed,
        }

    def load_state_dict(self, state: dict) -> None:
        self.cooldown = int(state["cooldown"])
        self._last_fired = {
            (entry["rule"], entry["shard"], entry["node"]): int(entry["step"])
            for entry in state["last_fired"]
        }
        self._n_evaluations = int(state.get("n_evaluations", 0))
        self._n_fired = int(state.get("n_fired", 0))
        self._n_suppressed = int(state.get("n_suppressed", 0))

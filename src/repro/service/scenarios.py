"""Named end-to-end workloads for the fleet monitor.

A scenario composes the synthetic substrates — telemetry generator
(:mod:`repro.telemetry`), hardware-error model (:mod:`repro.hwlog`) and
anomaly injections — into a reproducible fleet workload: machine, seed,
stream length, chunking, sharding policy and pipeline config.  The runner
then drives a :class:`~repro.service.monitor.FleetMonitor` through the
stream chunk by chunk, evaluating alerts after every ingest and (for the
restart scenario) checkpointing and restoring mid-run.

Catalog (``SCENARIOS``):

* ``quiet-fleet`` — nominal operation; the alert stream should be near
  silent;
* ``rack-cooling-failure`` — slow temperature creep on one rack
  (:class:`~repro.telemetry.anomalies.CoolingDegradation`), the paper's
  case-study-1 shape;
* ``noisy-neighbor-job`` — a block of nodes run hot by a heavy job
  (:class:`HotNodes`), with correlated hardware events for the Q3-style
  correlation rule;
* ``sensor-dropout`` — a faulty sensor spews spikes
  (:class:`SensorFault`); the mrDMD reconstruction should largely filter
  it and the alert stream should stay calmer than the raw data suggests;
* ``mid-run-restart`` — the cooling failure workload with a
  checkpoint/restore in the middle; the acceptance check is that the
  resumed monitor's next-window rack values match an uninterrupted run
  exactly.
* ``chaos-fleet`` — the quiet workload under a deterministic
  :class:`~repro.resilience.FaultPlan`: a worker crash, a hang, a
  transient exception, a slow task and a NaN-poisoned chunk, supervised
  by a :class:`~repro.resilience.ResiliencePolicy`.  Recovered shards
  must converge bit-for-bit with a fault-free run; the poisoned shard
  must end the run quarantined with the fleet still answering.

Every scenario is laptop-scale (a few hundred snapshots over tens of
nodes) so tests, examples and benchmarks can run it in seconds.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from ..core.mrdmd import MrDMDConfig
from ..hwlog.generator import HardwareErrorModel
from ..hwlog.events import HardwareLog
from ..pipeline.config import PipelineConfig
from ..resilience import FaultKind, FaultPlan, FaultSpec, ResiliencePolicy
from ..telemetry.anomalies import (
    Anomaly,
    CoolingDegradation,
    HotNodes,
    SensorFault,
)
from ..telemetry.generator import TelemetryGenerator, TelemetryStream
from ..telemetry.machine import MachineDescription
from ..telemetry.sensors import xc40_sensor_suite
from ..telemetry.streaming import StreamingReplay
from .alerts import Alert, AlertEngine, AlertSink, default_rules
from .checkpoint import load_checkpoint, save_checkpoint
from .monitor import FleetMonitor
from .sharding import MetricSharding, RackSharding, ShardingPolicy

__all__ = [
    "Scenario",
    "ScenarioResult",
    "ScenarioRunner",
    "SCENARIOS",
    "get_scenario",
    "quiet_fleet",
    "rack_cooling_failure",
    "noisy_neighbor_job",
    "sensor_dropout",
    "mid_run_restart",
    "mid_run_add_sensors",
    "chaos_fleet",
]


def _default_machine() -> MachineDescription:
    """A 64-node, 4-rack Theta-like machine (16 nodes per rack).

    ``theta_machine`` packages 192 node positions per rack, so a 64-node
    laptop-scale limit would land entirely in rack 0 and rack sharding
    would degenerate to one shard; this layout spreads the populated
    nodes over four real racks instead.
    """
    return MachineDescription(
        name="xc40",
        n_rows=1,
        racks_per_row=4,
        cabinets_per_rack=1,
        slots_per_cabinet=4,
        blades_per_slot=1,
        nodes_per_blade=4,
        sensors=xc40_sensor_suite(),
        dt_seconds=15.0,
    )


def _default_config() -> PipelineConfig:
    # The baseline band brackets the generator's quiet operating point
    # (~66 degC at 0.3 utilisation) so anomalies land outside it.
    return PipelineConfig(
        mrdmd=MrDMDConfig(max_levels=4),
        baseline_range=(40.0, 75.0),
        power_quantile=0.0,
    )


@dataclass(frozen=True)
class Scenario:
    """A named, fully reproducible fleet workload.

    Attributes
    ----------
    name / description:
        Catalog identity.
    machine:
        Topology the telemetry is generated for.
    seed:
        Seed shared by the telemetry and hardware-log generators.
    sensors:
        Channels to generate (default: ``cpu_temp`` only).
    anomalies:
        Telemetry anomaly injections.
    hot_nodes:
        Nodes whose hardware-event rates are thermally elevated (ground
        truth for the correlation rule).
    total_steps / initial_size / chunk_size:
        Stream length and the initial-fit / streaming-chunk protocol.
    config:
        Pipeline configuration shared by every shard.
    policy:
        Sharding policy (default: one shard per rack).
    restart_after_chunk:
        When set, the runner checkpoints after this many streaming chunks,
        discards the monitor, restores from disk and continues.
    initial_sensors:
        The channels present when the monitor starts.  ``None`` (default)
        means all of ``sensors``; otherwise it must be a *prefix* of
        ``sensors`` (generated matrices group rows by channel in listing
        order, so a prefix of channels is a prefix of matrix rows).
    grow_after_chunk:
        When set (requires ``initial_sensors``), the runner streams only
        the initial channels' rows up to and including this chunk, then
        onboards the remaining channels mid-run via
        :meth:`FleetMonitor.add_sensors` — no restart, no refit of the
        existing shards — and continues with full-matrix chunks.
    resilience:
        When set, the monitor runs supervised: per-task deadlines,
        retry with deterministic backoff, worker respawn with state
        rehydration, and quarantine after the retry budget is spent.
    fault_plan:
        Deterministic fault injections (requires ``resilience``);
        faults are addressed by shard id and 1-based ingest round.
    alert_cooldown:
        Engine cooldown in snapshots.
    hw_background_scale / hw_hot_multiplier:
        Hardware-event rate knobs.  Real background rates (~2 events per
        node per 10k snapshots) are too sparse for a few-hundred-snapshot
        scenario, so workloads that exercise the correlation rule scale
        them up.
    """

    name: str
    description: str
    machine: MachineDescription = field(default_factory=_default_machine)
    seed: int = 11
    sensors: tuple[str, ...] = ("cpu_temp",)
    anomalies: tuple[Anomaly, ...] = ()
    hot_nodes: tuple[int, ...] = ()
    total_steps: int = 560
    initial_size: int = 240
    chunk_size: int = 80
    config: PipelineConfig = field(default_factory=_default_config)
    policy: ShardingPolicy = field(default_factory=RackSharding)
    restart_after_chunk: int | None = None
    resilience: ResiliencePolicy | None = None
    fault_plan: FaultPlan | None = None
    initial_sensors: tuple[str, ...] | None = None
    grow_after_chunk: int | None = None
    alert_cooldown: int = 120
    hw_background_scale: float = 1.0
    hw_hot_multiplier: float = 8.0

    def __post_init__(self) -> None:
        if self.fault_plan is not None and self.resilience is None:
            raise ValueError(
                "fault_plan requires resilience (injected faults only make "
                "sense under a supervised monitor)"
            )
        if self.grow_after_chunk is not None and self.initial_sensors is None:
            raise ValueError("grow_after_chunk requires initial_sensors")
        if self.initial_sensors is not None:
            prefix = self.sensors[: len(self.initial_sensors)]
            if tuple(self.initial_sensors) != prefix or not self.initial_sensors:
                raise ValueError(
                    f"initial_sensors must be a non-empty prefix of sensors "
                    f"{self.sensors}, got {self.initial_sensors}"
                )
        if self.grow_after_chunk is not None and len(self.initial_sensors) >= len(
            self.sensors
        ):
            # All channels present from the start: there is nothing to
            # grow, and the event would silently never fire.
            raise ValueError(
                "grow_after_chunk requires initial_sensors to be a *strict* "
                "prefix of sensors (some channel must be left to onboard)"
            )

    @property
    def n_chunks(self) -> int:
        """Number of streaming chunks after the initial fit."""
        remaining = self.total_steps - self.initial_size
        return int(np.ceil(max(remaining, 0) / self.chunk_size))

    @property
    def grows_mid_run(self) -> bool:
        return (
            self.grow_after_chunk is not None
            and self.initial_sensors is not None
            and len(self.initial_sensors) < len(self.sensors)
        )

    def build_stream(self) -> TelemetryStream:
        """Generate the scenario's full telemetry block (deterministic)."""
        generator = TelemetryGenerator(
            self.machine, seed=self.seed, utilization_target=0.3
        )
        return generator.generate(
            self.total_steps,
            sensors=list(self.sensors),
            anomalies=list(self.anomalies),
        )

    def build_hwlog(self) -> HardwareLog:
        """Generate the scenario's hardware-event log (deterministic)."""
        model = HardwareErrorModel(n_nodes=self.machine.n_nodes, seed=self.seed + 1)
        if self.hw_background_scale != 1.0:
            model.background_rates = {
                etype: rate * self.hw_background_scale
                for etype, rate in model.background_rates.items()
            }
        model.hot_node_multiplier = self.hw_hot_multiplier
        return model.generate(self.total_steps, hot_nodes=list(self.hot_nodes))


def _row_prefix_stream(stream: TelemetryStream, n_rows: int) -> TelemetryStream:
    """The stream restricted to its first ``n_rows`` rows (a view)."""
    return TelemetryStream(
        values=stream.values[:n_rows],
        dt=stream.dt,
        sensor_names=stream.sensor_names[:n_rows],
        node_indices=stream.node_indices[:n_rows],
        machine=stream.machine,
        utilization=stream.utilization,
        start_step=stream.start_step,
    )


def _initial_live_rows(scenario: Scenario, stream: TelemetryStream) -> int:
    """Matrix rows present before a scenario's growth event (the prefix).

    Shared by the single-machine and federated runners: counts the rows
    belonging to ``initial_sensors`` and validates they form a row prefix
    (generated matrices group rows by channel in listing order, so a
    channel prefix is a row prefix — anything else cannot be streamed by
    slicing).
    """
    if not scenario.grows_mid_run:
        return stream.n_rows
    mask = np.isin(
        np.asarray(stream.sensor_names).astype(str),
        list(scenario.initial_sensors),
    )
    n_rows = int(np.count_nonzero(mask))
    if not np.all(mask[:n_rows]):
        raise ValueError("initial_sensors rows must form a prefix of the matrix")
    return n_rows


@dataclass
class ScenarioResult:
    """Everything a scenario run produced."""

    scenario: Scenario
    monitor: FleetMonitor
    alerts: list[Alert]
    rack_values: dict[int, float]
    hwlog: HardwareLog
    n_chunks: int
    restarted: bool

    def alerts_for_rule(self, rule: str) -> list[Alert]:
        return [a for a in self.alerts if a.rule == rule]

    def alerted_nodes(self) -> set[int]:
        return {a.node for a in self.alerts if a.node is not None}


class ScenarioRunner:
    """Drives a scenario end to end: stream -> alerts -> (restart) -> products.

    Parameters
    ----------
    scenario:
        The workload description.
    sinks:
        Alert sinks attached to the engine (and re-attached after a
        restart).
    checkpoint_dir:
        Where the restart scenario persists its checkpoint; required when
        ``scenario.restart_after_chunk`` is set.
    executor / max_workers:
        Shard fan-out backend for the monitor (``None``/``"serial"``,
        ``"thread"``, ``"process"``), held open across the whole run and
        closed before returning; every backend produces identical
        products.
    processes:
        Deprecated one-shot-pool fan-out forwarded to
        :meth:`FleetMonitor.ingest`; kept for comparison benchmarks.
        Mutually exclusive with a non-serial ``executor``.
    deep_levels:
        When set (``"inline"``/``"deferred"``), overrides the scenario
        config's deep-level mode — the CLI's ``--deep-levels`` switch for
        trying the asynchronous levels-2..L refresh on any catalog
        workload without editing it.
    checkpoint_every:
        When set, the runner additionally saves a rotated checkpoint
        after every N streaming chunks (requires ``checkpoint_dir``).
        For scenarios that also restart mid-run, periodic entries live
        under ``<checkpoint_dir>/periodic`` so they never collide with
        the restart checkpoint at the root.
    checkpoint_mode / checkpoint_format / checkpoint_keep_last:
        Forwarded to :func:`save_checkpoint` for the periodic saves:
        ``"async"`` moves serialisation off the chunk loop onto the
        monitor's background writer (flushed at close), ``"delta"``
        writes only shards whose revision stamp moved, and
        ``checkpoint_keep_last`` bounds the rotation depth.
    """

    def __init__(
        self,
        scenario: Scenario,
        *,
        sinks: Sequence[AlertSink] = (),
        checkpoint_dir: str | None = None,
        executor: str | None = None,
        max_workers: int | None = None,
        processes: int | None = None,
        deep_levels: str | None = None,
        checkpoint_every: int | None = None,
        checkpoint_mode: str = "sync",
        checkpoint_format: str = "full",
        checkpoint_keep_last: int = 3,
    ) -> None:
        if scenario.restart_after_chunk is not None:
            if checkpoint_dir is None:
                raise ValueError(
                    f"scenario {scenario.name!r} restarts mid-run: pass checkpoint_dir"
                )
            if not 1 <= scenario.restart_after_chunk <= scenario.n_chunks:
                raise ValueError(
                    f"restart_after_chunk must be in [1, {scenario.n_chunks}]"
                )
        if scenario.grows_mid_run and not (
            1 <= scenario.grow_after_chunk <= scenario.n_chunks
        ):
            raise ValueError(
                f"grow_after_chunk must be in [1, {scenario.n_chunks}]"
            )
        if processes is not None and executor not in (None, "serial"):
            raise ValueError("pass either executor or processes, not both")
        if checkpoint_every is not None:
            if checkpoint_every < 1:
                raise ValueError(
                    f"checkpoint_every must be >= 1, got {checkpoint_every!r}"
                )
            if checkpoint_dir is None:
                raise ValueError("checkpoint_every requires checkpoint_dir")
        if checkpoint_mode not in ("sync", "async"):
            raise ValueError(f"unknown checkpoint mode {checkpoint_mode!r}")
        if checkpoint_format not in ("full", "delta"):
            raise ValueError(f"unknown checkpoint format {checkpoint_format!r}")
        if checkpoint_keep_last < 1:
            raise ValueError(
                f"checkpoint_keep_last must be >= 1, got {checkpoint_keep_last!r}"
            )
        if deep_levels is not None and scenario.config.deep_levels != deep_levels:
            scenario = replace(
                scenario, config=replace(scenario.config, deep_levels=deep_levels)
            )
        self.scenario = scenario
        self.sinks = list(sinks)
        self.checkpoint_dir = checkpoint_dir
        self.executor = executor
        self.max_workers = max_workers
        self.processes = processes
        self.checkpoint_every = checkpoint_every
        self.checkpoint_mode = checkpoint_mode
        self.checkpoint_format = checkpoint_format
        self.checkpoint_keep_last = checkpoint_keep_last

    def _periodic_dir(self) -> str | None:
        """Root for periodic rotated entries (None when not configured).

        Kept apart from the restart checkpoint: the restart scenario
        writes a legacy in-place manifest at ``checkpoint_dir``'s root,
        which must not be shadowed by rotation entries.
        """
        if self.checkpoint_every is None:
            return None
        if self.scenario.restart_after_chunk is not None:
            return os.path.join(self.checkpoint_dir, "periodic")
        return self.checkpoint_dir

    def _build_monitor(self, stream: TelemetryStream) -> FleetMonitor:
        engine = AlertEngine(
            rules=default_rules(),
            sinks=self.sinks,
            cooldown=self.scenario.alert_cooldown,
        )
        return FleetMonitor.from_stream(
            stream,
            policy=self.scenario.policy,
            config=self.scenario.config,
            alert_engine=engine,
            executor=self.executor,
            max_workers=self.max_workers,
            resilience=self.scenario.resilience,
            fault_plan=self.scenario.fault_plan,
        )

    def run(self) -> ScenarioResult:
        """Execute the scenario; returns the final monitor and alert trail.

        The monitor's executor is held open across every chunk (and
        re-opened with the same backend after the restart scenario's
        restore); the returned monitor is closed, with all shard state
        landed in-process, so post-run queries keep working.
        """
        scenario = self.scenario
        stream = scenario.build_stream()
        hwlog = scenario.build_hwlog()
        replay = StreamingReplay(
            stream=stream,
            initial_size=scenario.initial_size,
            chunk_size=scenario.chunk_size,
        )

        # With a mid-run growth event the monitor starts on the initial
        # channels' rows only (a prefix of the full matrix — validated by
        # _initial_live_rows) and absorbs the rest at the event.
        n_live_rows = _initial_live_rows(scenario, stream)
        if scenario.grows_mid_run:
            monitor = self._build_monitor(_row_prefix_stream(stream, n_live_rows))
        else:
            monitor = self._build_monitor(stream)
        alerts: list[Alert] = []
        restarted = False
        # try/finally: a mid-run failure must not leak the persistent
        # executor's workers (the restart path rebinds `monitor`, so the
        # finally closes whichever one is current).
        try:
            monitor.ingest(
                replay.initial()[:n_live_rows], processes=self.processes
            )
            for index, chunk in enumerate(replay.chunks(), start=1):
                if self.processes is not None:
                    monitor.ingest(chunk[:n_live_rows], processes=self.processes)
                    alerts.extend(monitor.evaluate_alerts(hwlog=hwlog))
                else:
                    _, fired = monitor.ingest_and_alert(
                        chunk[:n_live_rows], hwlog=hwlog
                    )
                    alerts.extend(fired)
                if scenario.grows_mid_run and scenario.grow_after_chunk == index:
                    monitor.add_sensors(
                        np.asarray(stream.sensor_names)[n_live_rows:],
                        np.asarray(stream.node_indices)[n_live_rows:],
                        policy=scenario.policy,
                        machine=scenario.machine,
                    )
                    n_live_rows = stream.n_rows
                periodic_dir = self._periodic_dir()
                if (
                    periodic_dir is not None
                    and index % self.checkpoint_every == 0
                ):
                    save_checkpoint(
                        periodic_dir,
                        monitor,
                        keep_last=self.checkpoint_keep_last,
                        format=self.checkpoint_format,
                        mode=self.checkpoint_mode,
                    )
                if scenario.restart_after_chunk == index:
                    # Persist, tear down, restore: the restored monitor must
                    # continue exactly where this one stopped.
                    save_checkpoint(self.checkpoint_dir, monitor)
                    monitor.close()
                    monitor = load_checkpoint(
                        self.checkpoint_dir,
                        rules=default_rules(),
                        sinks=self.sinks,
                        executor=self.executor,
                        max_workers=self.max_workers,
                    )
                    restarted = True

            # Deferred deep levels: catch the backlog up before the final
            # products, so the returned monitor answers exactly like an
            # inline run (mid-run staleness was the trade, not the result).
            monitor.refresh_deep_levels()
            rack_values = monitor.rack_values()
        finally:
            monitor.close()
        return ScenarioResult(
            scenario=scenario,
            monitor=monitor,
            alerts=alerts,
            rack_values=rack_values,
            hwlog=hwlog,
            n_chunks=replay.n_chunks,
            restarted=restarted,
        )


# --------------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------------- #
def quiet_fleet() -> Scenario:
    """Nominal operation: no injected anomalies, background hw events only."""
    return Scenario(
        name="quiet-fleet",
        description="Nominal fleet; alert stream should be near silent.",
    )


def rack_cooling_failure() -> Scenario:
    """Cooling degradation on every node of rack 1 starting mid-stream."""
    machine = _default_machine()
    rack1_nodes = tuple(
        n for n in range(machine.n_nodes) if machine.rack_of_node(n) == 1
    )
    return Scenario(
        name="rack-cooling-failure",
        description="Rack 1 loses cooling margin; temperatures creep up rack-wide.",
        machine=machine,
        anomalies=(
            CoolingDegradation(
                node_indices=rack1_nodes,
                start=200,
                rate_per_hour=18.0,
                dt_seconds=machine.dt_seconds,
                label="rack-1 cooling failure",
            ),
        ),
        hot_nodes=rack1_nodes[:4],
    )


def noisy_neighbor_job() -> Scenario:
    """A heavy job drives four nodes hot; hardware events follow."""
    job_nodes = (10, 11, 12, 13)
    return Scenario(
        name="noisy-neighbor-job",
        description="A co-scheduled job overheats its nodes; neighbors stay nominal.",
        anomalies=(
            HotNodes(node_indices=job_nodes, start=260, delta=16.0, label="noisy job"),
        ),
        hot_nodes=job_nodes,
        hw_background_scale=4.0,
        hw_hot_multiplier=60.0,
    )


def sensor_dropout() -> Scenario:
    """A faulty cpu_temp sensor on three nodes emits wild spikes."""
    return Scenario(
        name="sensor-dropout",
        description="Faulty sensors spike; denoised analysis should stay calm.",
        anomalies=(
            SensorFault(
                node_indices=(3, 17, 40),
                start=120,
                spike_probability=0.06,
                spike_std=20.0,
                label="flaky sensors",
            ),
        ),
    )


def mid_run_add_sensors() -> Scenario:
    """The node_power channel comes online two chunks into the stream.

    The monitor starts on ``cpu_temp`` rows only (one metric shard);
    after chunk 2 the ``node_power`` rows are onboarded through
    :meth:`FleetMonitor.add_sensors`, which mints a brand-new
    ``metric-node_power`` shard into the running executor pool — no
    restart, no refit of the cpu_temp decomposition — and subsequent
    chunks carry the full matrix.  The noisy-job anomaly keeps the alert
    path exercised across the event.
    """
    job_nodes = (10, 11, 12, 13)
    return Scenario(
        name="mid-run-add-sensors",
        description=(
            "node_power sensors stream in after chunk 2, minting a new "
            "metric shard into the live pool without a restart or refit."
        ),
        sensors=("cpu_temp", "node_power"),
        initial_sensors=("cpu_temp",),
        grow_after_chunk=2,
        policy=MetricSharding(),
        anomalies=(
            HotNodes(node_indices=job_nodes, start=260, delta=16.0, label="noisy job"),
        ),
        hot_nodes=job_nodes,
        hw_background_scale=4.0,
        hw_hot_multiplier=60.0,
    )


def mid_run_restart() -> Scenario:
    """Cooling failure plus a service restart halfway through the stream."""
    base = rack_cooling_failure()
    return replace(
        base,
        name="mid-run-restart",
        description=(
            "Rack cooling failure with a checkpoint/restore after chunk 2; "
            "resumed products must match an uninterrupted run exactly."
        ),
        restart_after_chunk=2,
    )


def chaos_fleet() -> Scenario:
    """The quiet workload under a deterministic barrage of faults.

    The default machine shards one-per-rack (``rack-0``..``rack-3``) and
    streams four chunks after the initial fit — ingest rounds 2..5.  The
    plan hits every failure mode the supervisor handles:

    * round 2 — ``rack-1``'s worker **crashes** mid-task (a real
      ``os._exit`` on the process backend) and ``rack-3`` runs **slow**
      but inside the deadline;
    * round 3 — ``rack-2``'s task **hangs** past the deadline, tripping
      dead-worker detection and a respawn;
    * round 4 — ``rack-0`` raises a transient **exception** (retried);
    * round 5 — ``rack-3``'s chunk arrives **NaN-poisoned**; the data is
      bad on every attempt, so the shard is quarantined and the final
      snapshot reports it in ``degraded_shards``.

    Every recovered shard must converge bit-for-bit with a fault-free
    run; the quarantined shard is excluded from fleet products but the
    monitor keeps answering (asserted by the chaos tests).
    """
    return Scenario(
        name="chaos-fleet",
        description=(
            "Quiet fleet under injected crash/hang/exception/slow/poison "
            "faults; supervised recovery must converge bit-for-bit and "
            "quarantine the poisoned shard."
        ),
        resilience=ResiliencePolicy(
            max_attempts=3,
            task_deadline=5.0,
            backoff_base=0.01,
            backoff_cap=0.05,
            seed=8,
        ),
        fault_plan=FaultPlan(
            faults=(
                FaultSpec(FaultKind.CRASH, "rack-1", 2),
                FaultSpec(FaultKind.SLOW, "rack-3", 2, duration=0.05),
                FaultSpec(FaultKind.HANG, "rack-2", 3, duration=30.0),
                FaultSpec(FaultKind.EXCEPTION, "rack-0", 4),
                FaultSpec(FaultKind.NAN_CHUNK, "rack-3", 5),
            ),
            seed=8,
        ),
    )


SCENARIOS: dict[str, Callable[[], Scenario]] = {
    "quiet-fleet": quiet_fleet,
    "rack-cooling-failure": rack_cooling_failure,
    "noisy-neighbor-job": noisy_neighbor_job,
    "sensor-dropout": sensor_dropout,
    "mid-run-restart": mid_run_restart,
    "mid-run-add-sensors": mid_run_add_sensors,
    "chaos-fleet": chaos_fleet,
}


def get_scenario(name: str) -> Scenario:
    """Look a scenario up by catalog name."""
    try:
        factory = SCENARIOS[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {sorted(SCENARIOS)}"
        ) from None
    return factory()

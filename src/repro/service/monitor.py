"""The fleet monitor: sharded online pipelines over one machine's telemetry.

This is the operable form of the paper's "online analytical system": instead
of one in-process :class:`~repro.pipeline.online.OnlineAnalysisPipeline`
over the whole sensor matrix, a :class:`FleetMonitor`

1. partitions the matrix rows into shards via a pluggable
   :class:`~repro.service.sharding.ShardingPolicy` (by rack, by metric
   group, ...);
2. runs one independent I-mrDMD pipeline per shard, fanning streaming
   chunks out through :func:`repro.util.parallel.parallel_map` (serial by
   default, process pool on request — each shard's decomposition is
   embarrassingly parallel, exactly the structure the paper notes);
3. merges per-shard products (node z-scores, rack values, spectra) back
   into fleet-level ones;
4. feeds an optional :class:`~repro.service.alerts.AlertEngine` after each
   ingest.

The monitor is fully serialisable (see :mod:`repro.service.checkpoint`):
a restarted monitor resumes mid-stream with bit-for-bit identical products.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..align.zscore_map import NodeZScores
from ..core.baseline import classify_zscores
from ..core.spectrum import MrDMDSpectrum
from ..hwlog.events import HardwareLog
from ..pipeline.config import PipelineConfig
from ..pipeline.online import OnlineAnalysisPipeline, PipelineSnapshot
from ..telemetry.generator import TelemetryStream
from ..util.parallel import parallel_map
from .alerts import Alert, AlertContext, AlertEngine
from .sharding import ShardSpec, ShardingPolicy, SingleShard, validate_partition

__all__ = ["FleetMonitor", "FleetSnapshot", "FleetSpectrum"]


@dataclass
class FleetSnapshot:
    """Merged diagnostics for one :meth:`FleetMonitor.ingest` call."""

    step: int
    chunk_size: int
    n_shards: int
    total_modes: int
    shard_snapshots: dict[str, PipelineSnapshot]

    @property
    def max_drift(self) -> float:
        """Largest level-1 drift across shards this update (0 on initial fit)."""
        drifts = [
            snap.update.drift
            for snap in self.shard_snapshots.values()
            if snap.update is not None
        ]
        return max(drifts, default=0.0)


@dataclass
class FleetSpectrum:
    """Fleet-level power/frequency table merged across shards.

    Per-shard mode vectors live in different row spaces, so the merged
    product keeps the scalar columns (frequency, power, level) plus the
    shard each mode came from; per-shard :class:`MrDMDSpectrum` objects
    remain available from :meth:`FleetMonitor.spectra` when mode shapes
    are needed.
    """

    frequencies: np.ndarray
    power: np.ndarray
    levels: np.ndarray
    shard_ids: np.ndarray  # object array, one shard id per mode

    @property
    def n_modes(self) -> int:
        return int(self.frequencies.size)

    def dominant_frequency(self) -> float:
        """Frequency (Hz) of the highest-power mode fleet-wide (NaN if empty)."""
        if self.n_modes == 0:
            return float("nan")
        return float(self.frequencies[int(np.argmax(self.power))])

    def total_power_by_shard(self) -> dict[str, float]:
        """Summed mode power per shard (coarse health fingerprint)."""
        out: dict[str, float] = {}
        for shard_id in np.unique(self.shard_ids.astype(str)):
            mask = self.shard_ids.astype(str) == shard_id
            out[str(shard_id)] = float(self.power[mask].sum())
        return out


def _ingest_shard(payload: tuple[OnlineAnalysisPipeline, np.ndarray]):
    """Process-pool worker: ingest one chunk into one shard's pipeline.

    Returns the (possibly copied, when running in a worker process)
    pipeline together with its snapshot so the parent can reinstall it.
    """
    pipeline, chunk = payload
    snapshot = pipeline.ingest(chunk)
    return pipeline, snapshot


class FleetMonitor:
    """Sharded online monitoring of one machine's sensor matrix.

    Parameters
    ----------
    dt:
        Sampling interval of incoming snapshots (seconds).
    shards:
        The row partition (see :mod:`repro.service.sharding`); validated
        against ``n_rows`` when given.
    config:
        Shared :class:`~repro.pipeline.config.PipelineConfig` for every
        shard pipeline.
    alert_engine:
        Optional engine consulted by :meth:`evaluate_alerts`.
    n_rows:
        Total row count of the full matrix (enables partition validation
        up front; otherwise the first ingest validates implicitly).
    """

    def __init__(
        self,
        dt: float,
        shards: list[ShardSpec],
        config: PipelineConfig | None = None,
        *,
        alert_engine: AlertEngine | None = None,
        n_rows: int | None = None,
    ) -> None:
        if not shards:
            raise ValueError("FleetMonitor needs at least one shard")
        if n_rows is not None:
            validate_partition(shards, n_rows)
        self.dt = float(dt)
        self.config = config or PipelineConfig()
        self.shards = list(shards)
        self.alert_engine = alert_engine
        self._pipelines: dict[str, OnlineAnalysisPipeline] = {
            spec.shard_id: OnlineAnalysisPipeline(
                dt=dt, config=self.config, node_of_row=spec.node_of_row
            )
            for spec in self.shards
        }
        if len(self._pipelines) != len(self.shards):
            raise ValueError("shard ids must be unique")
        self._step = 0

    # ------------------------------------------------------------------ #
    @classmethod
    def from_stream(
        cls,
        stream: TelemetryStream,
        policy: ShardingPolicy | None = None,
        config: PipelineConfig | None = None,
        *,
        alert_engine: AlertEngine | None = None,
    ) -> "FleetMonitor":
        """Build a monitor for a telemetry stream's row layout.

        ``policy`` defaults to :class:`~repro.service.sharding.SingleShard`
        (the pre-service behaviour).  Only the stream's *metadata* is used;
        feed the actual values through :meth:`ingest`.
        """
        policy = policy or SingleShard()
        shards = policy.partition_stream(stream)
        validate_partition(shards, stream.n_rows)
        return cls(
            dt=stream.dt,
            shards=shards,
            config=config,
            alert_engine=alert_engine,
            n_rows=stream.n_rows,
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def step(self) -> int:
        """Absolute snapshot index of the end of the ingested timeline."""
        return self._step

    @property
    def pipelines(self) -> dict[str, OnlineAnalysisPipeline]:
        """Per-shard pipelines keyed by shard id (live objects)."""
        return dict(self._pipelines)

    def pipeline(self, shard_id: str) -> OnlineAnalysisPipeline:
        """The pipeline of one shard."""
        return self._pipelines[shard_id]

    @property
    def total_modes(self) -> int:
        """Total slow modes across every shard's tree."""
        return sum(
            p.model.tree.total_modes
            for p in self._pipelines.values()
            if p.model.fitted
        )

    def last_updates(self) -> dict[str, object | None]:
        """Latest UpdateRecord per shard (None before first partial_fit)."""
        out = {}
        for spec in self.shards:
            history = (
                self._pipelines[spec.shard_id].model.history
                if self._pipelines[spec.shard_id].model.fitted
                else []
            )
            out[spec.shard_id] = history[-1] if history else None
        return out

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, values: np.ndarray, *, processes: int | None = None) -> FleetSnapshot:
        """Feed a ``(P, T_chunk)`` block of full-matrix snapshots.

        Rows are routed to shards by the partition; each shard pipeline
        does its initial fit on the first call and incremental updates
        afterwards.  ``processes > 1`` fans shards out over a process pool
        (results are identical to the serial path; pipelines are shipped
        back and reinstalled).
        """
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (P, T), got shape {values.shape!r}")
        required_rows = max(int(spec.row_indices.max()) for spec in self.shards) + 1
        if values.shape[0] < required_rows:
            raise ValueError(
                f"values has {values.shape[0]} rows but the shard partition "
                f"covers rows up to {required_rows - 1}"
            )
        work = [
            (self._pipelines[spec.shard_id], spec.take(values)) for spec in self.shards
        ]
        results = parallel_map(_ingest_shard, work, processes=processes)
        snapshots: dict[str, PipelineSnapshot] = {}
        for spec, (pipeline, snapshot) in zip(self.shards, results):
            # Reinstall: a process-pool worker returns a pickled copy.
            self._pipelines[spec.shard_id] = pipeline
            snapshots[spec.shard_id] = snapshot
        self._step += values.shape[1]
        return FleetSnapshot(
            step=self._step,
            chunk_size=int(values.shape[1]),
            n_shards=self.n_shards,
            total_modes=self.total_modes,
            shard_snapshots=snapshots,
        )

    # ------------------------------------------------------------------ #
    # Fleet-level analysis products
    # ------------------------------------------------------------------ #
    def fit_baselines(self, **kwargs) -> None:
        """Fit every shard's baseline (from its reconstruction by default)."""
        for pipeline in self._pipelines.values():
            pipeline.fit_baseline(**kwargs)

    def node_zscores(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> NodeZScores:
        """Fleet-merged per-node z-scores.

        Each shard scores its own rows against its own baseline; nodes
        appearing in several shards (metric sharding) are aggregated with
        ``reducer`` (``"mean"``, ``"max"`` or ``"absmax"``), then
        re-classified with the shared thresholds.
        """
        per_node: dict[int, list[float]] = {}
        for spec in self.shards:
            shard_scores = self._pipelines[spec.shard_id].node_zscores(
                time_range=time_range, reducer=reducer
            )
            for node, z in zip(shard_scores.node_indices, shard_scores.zscores):
                per_node.setdefault(int(node), []).append(float(z))
        nodes = np.array(sorted(per_node), dtype=int)
        merged = np.empty(nodes.size, dtype=float)
        for i, node in enumerate(nodes):
            samples = np.asarray(per_node[int(node)], dtype=float)
            if reducer == "mean":
                merged[i] = samples.mean()
            elif reducer == "max":
                merged[i] = samples.max()
            elif reducer == "absmax":
                merged[i] = samples[np.argmax(np.abs(samples))]
            else:
                raise ValueError(f"unknown reducer {reducer!r}")
        categories = classify_zscores(
            merged, near=self.config.zscore_near, extreme=self.config.zscore_extreme
        )
        return NodeZScores(node_indices=nodes, zscores=merged, categories=categories)

    def rack_values(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[int, float]:
        """``{node: zscore}`` over the whole fleet, ready for the rack view."""
        return self.node_zscores(time_range=time_range, reducer=reducer).as_dict()

    def spectra(self) -> dict[str, MrDMDSpectrum]:
        """Per-shard (filtered) spectra keyed by shard id."""
        return {
            spec.shard_id: self._pipelines[spec.shard_id].spectrum(label=spec.shard_id)
            for spec in self.shards
        }

    def fleet_spectrum(self) -> FleetSpectrum:
        """Merged power/frequency table across every shard."""
        freqs, power, levels, shard_ids = [], [], [], []
        for shard_id, spectrum in self.spectra().items():
            freqs.append(spectrum.frequencies)
            power.append(spectrum.power)
            levels.append(spectrum.table.levels)
            shard_ids.append(np.full(spectrum.n_modes, shard_id, dtype=object))
        return FleetSpectrum(
            frequencies=np.concatenate(freqs) if freqs else np.zeros(0),
            power=np.concatenate(power) if power else np.zeros(0),
            levels=np.concatenate(levels) if levels else np.zeros(0, dtype=int),
            shard_ids=np.concatenate(shard_ids) if shard_ids else np.zeros(0, dtype=object),
        )

    # ------------------------------------------------------------------ #
    # Alerting
    # ------------------------------------------------------------------ #
    def evaluate_alerts(
        self,
        *,
        hwlog: HardwareLog | None = None,
        window: int = 200,
    ) -> list[Alert]:
        """Run the alert engine against the current fleet state.

        Returns the deduplicated alerts fired this evaluation (also
        delivered to the engine's sinks).  A monitor without an engine
        returns an empty list.
        """
        if self.alert_engine is None:
            return []
        # Score the *recent* window: an operator cares about the current
        # state; an all-time mean dilutes late-onset anomalies.
        lo = max(0, self._step - window)
        context = AlertContext(
            step=self._step,
            node_zscores=self.node_zscores(time_range=(lo, self._step)),
            updates=self.last_updates(),
            hwlog=hwlog,
            window=window,
        )
        return self.alert_engine.evaluate(context)

"""The fleet monitor: sharded online pipelines over one machine's telemetry.

This is the operable form of the paper's "online analytical system": instead
of one in-process :class:`~repro.pipeline.online.OnlineAnalysisPipeline`
over the whole sensor matrix, a :class:`FleetMonitor`

1. partitions the matrix rows into shards via a pluggable
   :class:`~repro.service.sharding.ShardingPolicy` (by rack, by metric
   group, ...);
2. runs one independent I-mrDMD pipeline per shard on a **persistent**
   :class:`~repro.util.parallel.ShardExecutor` (serial by default; thread
   or process workers on request).  Workers are created once and own their
   shard pipelines resident, so an ingest ships only ``(shard_id, chunk)``
   and queries ship small commands back — each shard's decomposition is
   embarrassingly parallel, exactly the structure the paper notes, without
   re-pickling the full pipeline state every chunk;
3. merges per-shard products (node z-scores, rack values, spectra) back
   into fleet-level ones;
4. feeds an optional :class:`~repro.service.alerts.AlertEngine` after each
   ingest — :meth:`ingest_and_alert` overlaps the per-shard scoring needed
   by the rules with the other shards' updates.

All executor backends produce bit-for-bit identical products (asserted by
the tests).  The monitor is fully serialisable (see
:mod:`repro.service.checkpoint`): a restarted monitor resumes mid-stream
with bit-for-bit identical products.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace

import numpy as np

from ..align.zscore_map import NodeZScores
from ..core.baseline import classify_zscores
from ..core.batchops import ShardBatchPlanner
from ..core.imrdmd import TopologyChange
from ..core.spectrum import MrDMDSpectrum
from ..hwlog.events import HardwareLog
from ..obs import (
    OBS,
    worker_drain_metrics,
    worker_drain_trace,
    worker_enable_metrics,
)
from ..obs.flight import FLIGHT
from ..obs.health import HealthScore, aggregate, percentile, score_shard
from ..pipeline.config import PipelineConfig
from ..pipeline.online import OnlineAnalysisPipeline, PipelineSnapshot
from ..resilience.faults import FaultPlan, PoisonChunkError
from ..resilience.policy import ResiliencePolicy
from ..resilience.recovery import ShardRecoveryStore
from ..telemetry.generator import TelemetryStream
from ..telemetry.machine import MachineDescription
from ..util.growbuf import RingBuffer
from ..util.parallel import (
    ShardExecutor,
    ShardTaskError,
    ShardTimeoutError,
    make_shard_executor,
    parallel_map,
)
from ..util.timer import now
from .alerts import Alert, AlertContext, AlertEngine
from .sharding import ShardSpec, ShardingPolicy, SingleShard, validate_partition

__all__ = [
    "FleetMonitor",
    "FleetSnapshot",
    "FleetSpectrum",
    "IngestStats",
    "TopologyUpdate",
]


@dataclass
class IngestStats:
    """Row accounting for one ingested chunk.

    Under ``missing_rows="nan"`` a short chunk is padded with NaN rows up
    to the partition's row count before routing; this records how many
    rows the fleet *actually* received and how they landed per shard —
    the observable a padded chunk otherwise erases.  The counts are pure
    functions of the chunk shape and the partition (no timings), so
    snapshots stay bit-for-bit identical across executor backends.
    """

    rows_received: int
    rows_padded: int
    chunk_columns: int
    rows_received_by_shard: dict[str, int]

    @property
    def entries_received(self) -> int:
        """Sensor readings in the chunk: received rows × columns."""
        return self.rows_received * self.chunk_columns


@dataclass
class FleetSnapshot:
    """Merged diagnostics for one :meth:`FleetMonitor.ingest` call."""

    step: int
    chunk_size: int
    n_shards: int
    total_modes: int
    shard_snapshots: dict[str, PipelineSnapshot]
    ingest_stats: IngestStats | None = None
    #: Shards quarantined by the supervisor at the time of this snapshot:
    #: they contributed nothing to this round (absent from
    #: ``shard_snapshots`` and every merged product) — the fleet answers
    #: with visible degradation instead of crashing.
    degraded_shards: tuple[str, ...] = ()
    #: Derived health per shard plus a ``"fleet"`` aggregate (see
    #: :mod:`repro.obs.health`).  ``compare=False``: health folds in
    #: wall-clock latency, which must never break the bit-for-bit snapshot
    #: parity the backend/restart tests assert.
    health: dict[str, "HealthScore"] | None = field(
        default=None, compare=False, repr=False
    )

    @property
    def deep_pending(self) -> int:
        """Queued deep-level refresh entries across the fleet (0 when the
        pipelines run ``deep_levels="inline"``)."""
        return sum(snap.deep_pending for snap in self.shard_snapshots.values())

    @property
    def deep_stale_snapshots(self) -> int:
        """Worst-case deep-level staleness: snapshots ingested since the
        oldest un-refreshed chunk of any shard (0 = fully fresh)."""
        return max(
            (snap.deep_stale_snapshots for snap in self.shard_snapshots.values()),
            default=0,
        )

    @property
    def max_drift(self) -> float:
        """Largest level-1 drift across shards this update (0 on initial fit)."""
        drifts = [
            snap.update.drift
            for snap in self.shard_snapshots.values()
            if snap.update is not None
        ]
        return max(drifts, default=0.0)


@dataclass
class TopologyUpdate:
    """What one :meth:`FleetMonitor.add_sensors` event did, fleet-wide.

    Attributes
    ----------
    step:
        Fleet step at which the sensors joined.
    n_new_rows:
        Total new matrix rows.
    extended:
        ``shard_id -> TopologyChange`` for shards that absorbed new rows
        into their live decomposition.  The value is ``None`` when the
        shard had no decomposition yet (minted earlier at this same fleet
        step, no chunk since): the rows joined its pending row map and
        there was no model event to record.
    minted:
        Ids of brand-new shards created for rows no existing shard could
        take, in partition order.  Their pipelines do their initial fit on
        the next ingested chunk (shard-local step 0 = fleet step of the
        event), unless back-filled history seeded them at the event.
    """

    step: int
    n_new_rows: int
    extended: dict[str, TopologyChange | None] = field(default_factory=dict)
    minted: tuple[str, ...] = ()


@dataclass
class FleetSpectrum:
    """Fleet-level power/frequency table merged across shards.

    Per-shard mode vectors live in different row spaces, so the merged
    product keeps the scalar columns (frequency, power, level) plus the
    shard each mode came from; per-shard :class:`MrDMDSpectrum` objects
    remain available from :meth:`FleetMonitor.spectra` when mode shapes
    are needed.
    """

    frequencies: np.ndarray
    power: np.ndarray
    levels: np.ndarray
    shard_ids: np.ndarray  # object array, one shard id per mode

    @property
    def n_modes(self) -> int:
        return int(self.frequencies.size)

    def dominant_frequency(self) -> float:
        """Frequency (Hz) of the highest-power mode fleet-wide (NaN if empty)."""
        if self.n_modes == 0:
            return float("nan")
        return float(self.frequencies[int(np.argmax(self.power))])

    def total_power_by_shard(self) -> dict[str, float]:
        """Summed mode power per shard (coarse health fingerprint)."""
        out: dict[str, float] = {}
        for shard_id in np.unique(self.shard_ids.astype(str)):
            mask = self.shard_ids.astype(str) == shard_id
            out[str(shard_id)] = float(self.power[mask].sum())
        return out


# --------------------------------------------------------------------------- #
# Shard commands.  Top-level functions so the process backend can pickle
# them by reference; each is called as fn(resident_pipeline, *args) inside
# the worker and only its (small) result travels back.
# --------------------------------------------------------------------------- #
def _shard_ingest(pipeline: OnlineAnalysisPipeline, chunk: np.ndarray) -> PipelineSnapshot:
    return pipeline.ingest(chunk)


def _shard_ingest_supervised(
    pipeline: OnlineAnalysisPipeline, chunk: np.ndarray, fault
) -> PipelineSnapshot:
    """Supervised ingest carrying an injected fault (chaos testing only).

    The fault executes *before* the pipeline is touched, so a retried task
    always starts from unmutated shard state.  Fault-free supervised
    submissions use plain :func:`_shard_ingest` — the hot path is
    identical with and without a fault plan.
    """
    if fault is not None:
        fault.execute()
    return pipeline.ingest(chunk)


def _shard_node_zscores(
    pipeline: OnlineAnalysisPipeline, time_range, reducer: str
) -> NodeZScores | None:
    # A shard minted by a topology event has no decomposition until its
    # first chunk arrives; it scores as "no data" rather than crashing.
    if not pipeline.model.fitted:
        return None
    return pipeline.node_zscores(time_range=time_range, reducer=reducer)


def _shard_spectrum(
    pipeline: OnlineAnalysisPipeline, label: str
) -> MrDMDSpectrum | None:
    if not pipeline.model.fitted:
        return None
    return pipeline.spectrum(label=label)


def _shard_add_sensors(
    pipeline: OnlineAnalysisPipeline, node_of_row, history
) -> TopologyChange | None:
    if not pipeline.model.fitted:
        # Shard minted earlier at this same step, no chunk yet: the rows
        # simply join the pending row map; the initial fit sizes itself
        # from the first chunk.  No decomposition event to record.
        if pipeline.node_of_row is not None:
            pipeline.node_of_row = np.concatenate(
                [pipeline.node_of_row, np.asarray(node_of_row, dtype=int)]
            )
        return None
    return pipeline.add_sensors(node_of_row=node_of_row, history=history)


def _shard_fit_baseline(pipeline: OnlineAnalysisPipeline, kwargs: dict) -> None:
    pipeline.fit_baseline(**kwargs)


def _shard_refresh_deep(pipeline: OnlineAnalysisPipeline) -> int:
    """Drain a shard's queued deep-level work off the ingest path."""
    if not pipeline.model.fitted:
        return 0
    return pipeline.refresh_deep_levels()


def _shard_deep_staleness(pipeline: OnlineAnalysisPipeline) -> tuple[int, int]:
    """``(pending refresh entries, stale snapshot age)`` for one shard."""
    if not pipeline.model.fitted:
        return (0, 0)
    return (pipeline.model.deep_pending, pipeline.model.deep_stale_snapshots)


def _shard_state_dict(pipeline: OnlineAnalysisPipeline) -> dict:
    return pipeline.state_dict()


def _shard_state_stamp(pipeline: OnlineAnalysisPipeline) -> tuple:
    return pipeline.state_stamp()


def _shard_last_update(pipeline: OnlineAnalysisPipeline):
    history = pipeline.model.history if pipeline.model.fitted else []
    return history[-1] if history else None


def _shard_total_modes(pipeline: OnlineAnalysisPipeline) -> int:
    return pipeline.model.tree.total_modes if pipeline.model.fitted else 0


def _return_pipeline(pipeline: OnlineAnalysisPipeline) -> OnlineAnalysisPipeline:
    return pipeline


def _ingest_shard(payload: tuple[OnlineAnalysisPipeline, np.ndarray]):
    """Legacy per-ingest pool worker (kept for the deprecated ``processes``
    path and its benchmark baseline): ingest one chunk into one shard's
    pipeline and ship the **whole pipeline** back for reinstallation."""
    pipeline, chunk = payload
    snapshot = pipeline.ingest(chunk)
    return pipeline, snapshot


class FleetMonitor:
    """Sharded online monitoring of one machine's sensor matrix.

    Parameters
    ----------
    dt:
        Sampling interval of incoming snapshots (seconds).
    shards:
        The row partition (see :mod:`repro.service.sharding`); validated
        against ``n_rows`` when given.
    config:
        Shared :class:`~repro.pipeline.config.PipelineConfig` for every
        shard pipeline.
    alert_engine:
        Optional engine consulted by :meth:`evaluate_alerts`.
    n_rows:
        Total row count of the full matrix (enables partition validation
        up front; otherwise the first ingest validates implicitly).
    executor:
        Shard fan-out backend: ``None``/``"serial"`` (default),
        ``"thread"``, ``"process"``, or a fresh
        :class:`~repro.util.parallel.ShardExecutor` instance.  The
        executor is started lazily on first use and then **held open
        across ingests** — close it with :meth:`close` or by using the
        monitor as a context manager (``with FleetMonitor(...) as mon:``).
    max_workers:
        Worker count for the thread/process backends (default: one per
        shard, capped at the CPU count).
    extra_rows:
        What to do when an ingested matrix has *more* rows than the shard
        partition covers: ``"raise"`` (default) or ``"ignore"`` (drop the
        remainder, the pre-fix behaviour — explicit opt-in only).
    missing_rows:
        What to do when an ingested matrix has *fewer* rows than the shard
        partition covers: ``"raise"`` (default — the mirror of the
        ``extra_rows`` check, with the same actionable error) or ``"nan"``
        (pad the absent trailing rows with NaN — sensors registered in the
        topology but not yet reporting contribute nothing; requires a
        pipeline config with ``missing_values="zero"`` so the shard models
        accept the fill).
    policy / machine:
        The sharding policy and machine description the partition came
        from (recorded by :meth:`from_stream`); :meth:`add_sensors` uses
        them to route new rows onto the live partition.
    resilience:
        Optional :class:`~repro.resilience.ResiliencePolicy` turning the
        monitor into a *supervisor*: :meth:`ingest_and_alert` rounds gain
        per-task deadlines, capped-exponential retries with deterministic
        jitter, crash/hang detection with worker respawn and exact shard
        rehydration (snapshot + chunk-tail replay), and quarantine for
        shards that exhaust their retry budget.  ``None`` (default) keeps
        the pre-supervision behaviour bit-for-bit.
    fault_plan:
        Optional :class:`~repro.resilience.FaultPlan` of injected faults
        for chaos testing; requires ``resilience``.
    """

    def __init__(
        self,
        dt: float,
        shards: list[ShardSpec],
        config: PipelineConfig | None = None,
        *,
        alert_engine: AlertEngine | None = None,
        n_rows: int | None = None,
        executor: str | ShardExecutor | None = None,
        max_workers: int | None = None,
        extra_rows: str = "raise",
        missing_rows: str = "raise",
        policy: ShardingPolicy | None = None,
        machine: MachineDescription | None = None,
        resilience: ResiliencePolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> None:
        if not shards:
            raise ValueError("FleetMonitor needs at least one shard")
        if n_rows is not None:
            validate_partition(shards, n_rows)
        if extra_rows not in ("raise", "ignore"):
            raise ValueError(
                f"extra_rows must be 'raise' or 'ignore', got {extra_rows!r}"
            )
        if missing_rows not in ("raise", "nan"):
            raise ValueError(
                f"missing_rows must be 'raise' or 'nan', got {missing_rows!r}"
            )
        self.dt = float(dt)
        self.config = config or PipelineConfig()
        if missing_rows == "nan" and self.config.missing_values != "zero":
            raise ValueError(
                "missing_rows='nan' pads absent rows with NaN, which the shard "
                "models must accept: use a PipelineConfig with "
                "missing_values='zero'"
            )
        if fault_plan is not None and resilience is None:
            raise ValueError(
                "fault_plan requires a resilience policy — the supervisor "
                "is what detects and recovers the injected faults; pass "
                "resilience=ResiliencePolicy(...)"
            )
        self.shards = list(shards)
        self.alert_engine = alert_engine
        self.extra_rows = extra_rows
        self.missing_rows = missing_rows
        self.policy = policy
        self.machine = machine
        self.resilience = resilience
        self.fault_plan = fault_plan
        self._quarantined: dict[str, dict] = {}
        self._recovery = ShardRecoveryStore(
            resilience.snapshot_every if resilience is not None else 8
        )
        # Completed ingest rounds (plain or supervised); round N+1's fault
        # coordinates are (shard, _chunk_index + 1, attempt).
        self._chunk_index = 0
        # Delta-checkpoint dirty tracking: per block-store directory, the
        # (state stamp, content digest) recorded for each shard at this
        # monitor's previous save there.  Purely an optimisation cache —
        # a miss (fresh monitor, swept block) re-serialises, never skips.
        self._ckpt_stamps: dict[str, dict[str, tuple]] = {}
        # Lazily created background writer for mode="async" saves; owns a
        # thread, so it never pickles and is flushed/closed with the
        # monitor (flush_checkpoints() is the error barrier).
        self._checkpoint_writer = None
        self._pipelines: dict[str, OnlineAnalysisPipeline] = {
            spec.shard_id: self._make_pipeline(spec) for spec in self.shards
        }
        if len(self._pipelines) != len(self.shards):
            raise ValueError("shard ids must be unique")
        self._executor_spec: str | ShardExecutor | None = executor
        self._max_workers = max_workers
        self._executor: ShardExecutor | None = None
        self._step = 0
        self._batch_planner = ShardBatchPlanner()
        # Deferred deep-level bookkeeping: in-flight background refresh
        # task handles and per-shard chunk counters driving the
        # deep_refresh_every schedule.  Both are empty under
        # deep_levels="inline".
        self._refresh_tasks: list = []
        self._chunks_since_refresh: dict[str, int] = {}
        # Always-on latency rings feeding the derived health score: fleet
        # chunk latency plus (under supervision) per-shard round latency.
        # Bounded, timestamps-only, never serialised into checkpoints.
        self._chunk_latency = RingBuffer(64)
        self._shard_latency: dict[str, RingBuffer] = {}
        self._last_health: dict[str, HealthScore] | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_stream(
        cls,
        stream: TelemetryStream,
        policy: ShardingPolicy | None = None,
        config: PipelineConfig | None = None,
        *,
        alert_engine: AlertEngine | None = None,
        executor: str | ShardExecutor | None = None,
        max_workers: int | None = None,
        extra_rows: str = "raise",
        missing_rows: str = "raise",
        resilience: ResiliencePolicy | None = None,
        fault_plan: FaultPlan | None = None,
    ) -> "FleetMonitor":
        """Build a monitor for a telemetry stream's row layout.

        ``policy`` defaults to :class:`~repro.service.sharding.SingleShard`
        (the pre-service behaviour).  Only the stream's *metadata* is used;
        feed the actual values through :meth:`ingest`.  The policy and the
        stream's machine description are kept so
        :meth:`add_sensors` can repartition when the topology grows.
        """
        policy = policy or SingleShard()
        shards = policy.partition_stream(stream)
        validate_partition(shards, stream.n_rows)
        return cls(
            dt=stream.dt,
            shards=shards,
            config=config,
            alert_engine=alert_engine,
            n_rows=stream.n_rows,
            executor=executor,
            max_workers=max_workers,
            extra_rows=extra_rows,
            missing_rows=missing_rows,
            policy=policy,
            machine=stream.machine,
            resilience=resilience,
            fault_plan=fault_plan,
        )

    def _make_pipeline(self, spec: ShardSpec) -> OnlineAnalysisPipeline:
        """One shard pipeline, with chunk validation on under supervision.

        Validation rejects non-finite chunks *before* the model mutates —
        a poisoned chunk then fails cleanly on every attempt (retryable
        without rehydration) instead of corrupting the decomposition.
        """
        pipeline = OnlineAnalysisPipeline(
            dt=self.dt, config=self.config, node_of_row=spec.node_of_row
        )
        if self.resilience is not None:
            pipeline.validate_chunks = True
        return pipeline

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #
    @property
    def executor(self) -> ShardExecutor | None:
        """The live executor (None until first use or after :meth:`close`)."""
        return self._executor

    def _ensure_executor(self) -> ShardExecutor:
        """Start the configured executor lazily; reuse it across calls."""
        if self._executor is None:
            self._executor = make_shard_executor(
                self._executor_spec, max_workers=self._max_workers
            )
            self._executor.start(self._pipelines)
            if OBS.enabled:
                # Process workers are fresh interpreters whose module-level
                # provider starts disabled; mirror the parent's switch so
                # core/executor metrics accumulate worker-side (drained home
                # by collect_metrics / close).  In-process backends report
                # no remote shards and record straight into the parent.
                for shard_id in self._executor.remote_worker_shards():
                    self._executor.call(shard_id, worker_enable_metrics)
                # Clock handshake so worker trace events land on this
                # process's timeline (no-op for in-process backends, and
                # already done if the executor started while enabled).
                self._executor.calibrate_clocks()
        return self._executor

    @property
    def _resident_remote(self) -> bool:
        """Whether pipeline state lives in worker processes, not in-process."""
        return self._executor is not None and self._executor.backend == "process"

    def close(self) -> None:
        """Shut the executor down, landing shard state back in-process.

        For the process backend the resident pipelines are pulled back
        first, so every analysis product (rack values, spectra,
        checkpoints) keeps working after close — subsequent calls simply
        run serially.  Idempotent.

        Also the final barrier for asynchronous checkpointing: pending
        background commits are drained first, and a deferred write error
        surfaces here (after the executor teardown still ran).
        """
        writer, self._checkpoint_writer = self._checkpoint_writer, None
        try:
            if writer is not None:
                writer.close(flush=True)
        finally:
            self._close_executor()

    def _close_executor(self) -> None:
        if self._executor is None:
            return
        try:
            self.drain_refreshes()
            if OBS.enabled:
                self.collect_metrics()
            if self._resident_remote and not self._executor.closed:
                self._pipelines = self._executor.pull()
        finally:
            # Even if the pull fails (a worker died and its state is
            # gone), the remaining workers must still be shut down and
            # the monitor left in its degraded-serial state.
            self._executor.close()
            self._executor = None
            self._executor_spec = "serial"

    def collect_metrics(self):
        """Merge any process-worker metric registries into the session
        provider and return its registry.

        Workers are drained with reset, so calling this repeatedly (or
        again at :meth:`close`, which invokes it automatically) never
        double-counts.  A no-op for in-process backends and when the
        provider is disabled.
        """
        if (
            OBS.enabled
            and self._executor is not None
            and not self._executor.closed
        ):
            for shard_id in self._executor.remote_worker_shards():
                OBS.metrics.merge(self._executor.call(shard_id, worker_drain_metrics))
                # Worker span events (already calibrated and parented via
                # the shipped TraceContext) merge into this process's
                # sinks — one causal trace per session.
                events = self._executor.call(shard_id, worker_drain_trace)
                if events:
                    OBS.tracer.ingest_events(events)
        return OBS.metrics

    def __enter__(self) -> "FleetMonitor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Pickling (federation support)
    # ------------------------------------------------------------------ #
    def __getstate__(self) -> dict:
        """Pickle the monitor as its *state*, never its worker pool.

        A pickled monitor carries the in-process pipelines (pulled fresh
        from process-resident workers first, so no state is lost), the
        shard layout and the executor *specification* — the live executor
        itself (threads, pipes, child processes) stays behind and is
        lazily recreated on the other side at the next ingest.  This is
        what lets :class:`repro.federation.FederatedMonitor` ship whole
        machines to resident federation workers.
        """
        self.drain_refreshes()
        state = self.__dict__.copy()
        if self._resident_remote and not self._executor.closed:
            state["_pipelines"] = self._executor.pull()
        state["_executor"] = None
        # Task handles carry events/pipe references and never travel; the
        # drain above guaranteed there is nothing in flight to lose.
        state["_refresh_tasks"] = []
        # The background checkpoint writer owns a thread; the copy makes
        # its own lazily.  (Pending commits keep running here — they hold
        # their own captured state, nothing to flush for the copy.)
        state["_checkpoint_writer"] = None
        spec = state["_executor_spec"]
        if isinstance(spec, ShardExecutor):
            # A live instance cannot travel; its backend name can.
            state["_executor_spec"] = spec.backend
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def n_shards(self) -> int:
        return len(self.shards)

    @property
    def step(self) -> int:
        """Absolute snapshot index of the end of the ingested timeline."""
        return self._step

    @property
    def pipelines(self) -> dict[str, OnlineAnalysisPipeline]:
        """Per-shard pipelines keyed by shard id.

        Serial/thread backends return the live objects; the process
        backend pulls fresh *copies* from the workers (mutating them does
        not affect the service — use shard commands for that).
        """
        self.drain_refreshes()
        if self._resident_remote:
            self._pipelines = self._executor.pull()
        return dict(self._pipelines)

    def pipeline(self, shard_id: str) -> OnlineAnalysisPipeline:
        """The pipeline of one shard (see :attr:`pipelines` for semantics)."""
        if shard_id not in self._pipelines:
            raise KeyError(f"unknown shard {shard_id!r}")
        self.drain_refreshes()
        if self._resident_remote:
            # Fetch just this shard's resident copy — one pickle, not a
            # full-fleet pull.
            return self._executor.call(shard_id, _return_pipeline)
        return self._pipelines[shard_id]

    @property
    def total_modes(self) -> int:
        """Total slow modes across every shard's tree."""
        return sum(self._query_all(_shard_total_modes).values())

    def last_updates(self) -> dict[str, object | None]:
        """Latest UpdateRecord per shard (None before first partial_fit)."""
        return self._query_all(_shard_last_update)

    # ------------------------------------------------------------------ #
    # Shard command routing
    # ------------------------------------------------------------------ #
    def _query_all(self, fn, *args, **kwargs) -> dict:
        """Fan a shard command out over the executor; gather in shard order.

        Before the executor has started (no ingest yet, or right after a
        restore) the in-process pipelines are authoritative, so queries
        answer from them directly instead of spawning workers as a side
        effect of a read.
        """
        if self._executor is None:
            return {
                spec.shard_id: fn(self._pipelines[spec.shard_id], *args, **kwargs)
                for spec in self.shards
            }
        return self._executor.broadcast(fn, *args, **kwargs)

    def _query_map(self, fn, args_by_shard: dict[str, tuple]) -> dict:
        """Fan ``fn`` out with *per-shard* positional args (see _query_all)."""
        if self._executor is None:
            return {
                shard_id: fn(self._pipelines[shard_id], *args)
                for shard_id, args in args_by_shard.items()
            }
        return self._executor.map(fn, args_by_shard)

    def shard_state_dicts(self) -> dict[str, dict]:
        """Full per-shard pipeline state, keyed by shard id.

        This is the checkpoint payload: for remote-resident backends only
        the state dicts travel back, never live pipeline objects.  For a
        memory-bounded one-shard-at-a-time walk (large fleets with
        retained data), use :meth:`shard_state_dict` per shard instead.
        """
        return self._query_all(_shard_state_dict)

    def shard_state_dict(self, shard_id: str) -> dict:
        """One shard's full pipeline state (a single executor round trip)."""
        if shard_id not in self._pipelines:
            raise KeyError(f"unknown shard {shard_id!r}")
        if self._executor is None:
            return self._pipelines[shard_id].state_dict()
        return self._executor.call(shard_id, _shard_state_dict)

    def shard_state_stamps(self) -> dict[str, tuple]:
        """Cheap per-shard state stamps (see ``state_stamp``), keyed by id.

        This is the dirty-tracking probe the delta checkpoint writer
        uses: O(1) per shard, no serialisation — for remote-resident
        backends only a tuple of ints travels home per shard.
        """
        return self._query_all(_shard_state_stamp)

    def shard_state_stamp(self, shard_id: str) -> tuple:
        """One shard's state stamp (a single executor round trip)."""
        if shard_id not in self._pipelines:
            raise KeyError(f"unknown shard {shard_id!r}")
        if self._executor is None:
            return self._pipelines[shard_id].state_stamp()
        return self._executor.call(shard_id, _shard_state_stamp)

    def _delta_stamp_memory(self, blocks_dir: str) -> dict[str, tuple]:
        """(stamp, digest) recorded per shard at the previous delta save
        against this block store (keyed by its absolute path)."""
        return self._ckpt_stamps.setdefault(os.path.abspath(blocks_dir), {})

    def _ensure_checkpoint_writer(self):
        """The monitor's background checkpoint writer (created lazily)."""
        if self._checkpoint_writer is None or self._checkpoint_writer.closed:
            from ..io.delta import AsyncCheckpointWriter

            self._checkpoint_writer = AsyncCheckpointWriter()
        return self._checkpoint_writer

    def flush_checkpoints(self) -> None:
        """Barrier: wait for pending asynchronous checkpoint commits.

        Re-raises the first deferred write error
        (:class:`~repro.io.delta.CheckpointWriteError`); a no-op when no
        async save ever ran.  Call before reading rotation entries a
        ``mode="async"`` save may still be writing.
        """
        if self._checkpoint_writer is not None:
            self._checkpoint_writer.flush()

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def _validated(self, values: np.ndarray) -> tuple[np.ndarray, IngestStats]:
        values = np.asarray(values, dtype=float)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D (P, T), got shape {values.shape!r}")
        required_rows = max(int(spec.row_indices.max()) for spec in self.shards) + 1
        n_received = min(int(values.shape[0]), required_rows)
        if values.shape[0] < required_rows:
            if self.missing_rows == "raise":
                raise ValueError(
                    f"values has {values.shape[0]} rows but the shard partition "
                    f"covers rows up to {required_rows - 1}; rows would be "
                    f"silently invented — fix the chunk or pass "
                    f"missing_rows='nan' to the monitor to pad not-yet-"
                    f"reporting sensors"
                )
            pad = np.full(
                (required_rows - values.shape[0], values.shape[1]), np.nan
            )
            values = np.vstack([values, pad])
        if values.shape[0] > required_rows and self.extra_rows == "raise":
            raise ValueError(
                f"values has {values.shape[0]} rows but the shard partition "
                f"covers only rows [0, {required_rows}); extra rows would be "
                f"silently dropped — fix the partition or pass "
                f"extra_rows='ignore' to the monitor"
            )
        stats = IngestStats(
            rows_received=n_received,
            rows_padded=required_rows - n_received,
            chunk_columns=int(values.shape[1]),
            rows_received_by_shard={
                spec.shard_id: int(np.count_nonzero(spec.row_indices < n_received))
                for spec in self.shards
            },
        )
        return values, stats

    def ingest(self, values: np.ndarray, *, processes: int | None = None) -> FleetSnapshot:
        """Feed a ``(P, T_chunk)`` block of full-matrix snapshots.

        Rows are routed to shards by the partition; each shard pipeline
        does its initial fit on the first call and incremental updates
        afterwards.  Fan-out runs on the monitor's persistent executor
        (see the ``executor`` constructor argument); results are identical
        across backends.  On the serial backend the per-shard iSVD
        updates additionally share stacked BLAS kernels (see
        :mod:`repro.core.batchops`) — a pure dispatch change, bit-for-bit
        identical to the fanned-out path.

        ``processes > 1`` is the **deprecated** one-shot-pool path kept for
        comparison benchmarks: it spawns a fresh process pool for this
        single call and pickles each shard's entire pipeline state to the
        workers and back.  Prefer ``executor="process"``, which ships the
        state once and keeps it resident.
        """
        values, stats = self._validated(values)
        if processes is not None and processes < 1:
            # Mirror parallel_map's validation: invalid values must not
            # silently fall back to the serial/executor path.
            raise ValueError(f"processes must be None or >= 1, got {processes!r}")
        t_start = now()
        with OBS.span("service.ingest", chunk=stats.chunk_columns):
            if processes is not None and processes > 1:
                snapshot = self._ingest_pooled(values, processes, stats)
            else:
                executor = self._ensure_executor()
                if executor.backend == "serial":
                    snapshots = self._ingest_batched(values)
                else:
                    snapshots = executor.map(
                        _shard_ingest,
                        {
                            spec.shard_id: (spec.take(values),)
                            for spec in self.shards
                            if spec.shard_id not in self._quarantined
                        },
                    )
                snapshot = self._finish_ingest(values, snapshots, stats)
            if self.resilience is not None:
                # Plain ingest rounds feed the recovery store too: the
                # initial fit in particular must be snapshotted before the
                # first supervised round can promise exact rehydration.
                self._record_recovery(
                    {
                        spec.shard_id: spec.take(values)
                        for spec in self.shards
                        if spec.shard_id in snapshot.shard_snapshots
                    }
                )
            self._schedule_deep_refreshes(snapshot.shard_snapshots)
        self._finalize_round(snapshot, stats, now() - t_start)
        return snapshot

    def _ingest_batched(self, values: np.ndarray) -> dict[str, PipelineSnapshot]:
        """Serial-backend ingest round through the stacked shard kernels.

        Each shard's update is split into its prepare / level-1-iSVD /
        finish phases; the iSVD phases of shards whose shapes agree run as
        stacked 3-D GEMMs via :class:`~repro.core.batchops.ShardBatchPlanner`
        (shards that diverge — mid initial fit, fresh ``add_shard`` /
        ``add_sensors`` growth — fall back to the plain per-shard path
        inside the planner).  Snapshots are bit-for-bit identical to the
        ``executor.map`` fan-out, which the parity tests assert.
        """
        active = [
            spec for spec in self.shards if spec.shard_id not in self._quarantined
        ]
        prepared: dict[str, object | None] = {}
        pending: list[tuple] = []
        for spec in active:
            pipeline = self._pipelines[spec.shard_id]
            prep = pipeline.prepare_ingest(spec.take(values))
            prepared[spec.shard_id] = prep
            if prep is not None and prep.isvd_update_block is not None:
                pending.append((pipeline.model.level1_isvd, prep.isvd_update_block))
        if pending:
            self._batch_planner.run(pending)
        snapshots: dict[str, PipelineSnapshot] = {}
        for spec in active:
            pipeline = self._pipelines[spec.shard_id]
            prep = prepared[spec.shard_id]
            if prep is None:
                # Initial fit — not an incremental update; the plain path
                # handles it whole.
                snapshots[spec.shard_id] = pipeline.ingest(spec.take(values))
            else:
                snapshots[spec.shard_id] = pipeline.finish_ingest(prep)
        return snapshots

    def _ingest_pooled(
        self, values: np.ndarray, processes: int, stats: IngestStats
    ) -> FleetSnapshot:
        """Legacy per-ingest pool: full pipeline pickled out and back."""
        if self._executor is not None and self._executor.backend != "serial":
            raise ValueError(
                "per-ingest 'processes' pools cannot be combined with a "
                "persistent thread/process executor; drop the processes "
                "argument (the executor already fans shards out)"
            )
        work = [
            (self._pipelines[spec.shard_id], spec.take(values)) for spec in self.shards
        ]
        results = parallel_map(_ingest_shard, work, processes=processes)
        snapshots: dict[str, PipelineSnapshot] = {}
        for spec, (pipeline, snapshot) in zip(self.shards, results):
            # Reinstall: a process-pool worker returns a pickled copy.
            self._pipelines[spec.shard_id] = pipeline
            if self._executor is not None:
                self._executor.install(spec.shard_id, pipeline)
            snapshots[spec.shard_id] = snapshot
        return self._finish_ingest(values, snapshots, stats)

    def _finish_ingest(
        self,
        values: np.ndarray,
        snapshots: dict[str, PipelineSnapshot],
        stats: IngestStats,
    ) -> FleetSnapshot:
        self._step += values.shape[1]
        self._chunk_index += 1
        if OBS.enabled:
            # Deterministic row accounting only — never timings — so the
            # snapshot itself stays identical across executor backends.
            for shard_id, n_rows in stats.rows_received_by_shard.items():
                OBS.gauge("service.shard.rows_received", n_rows, shard=shard_id)
            if stats.rows_padded:
                OBS.inc("service.rows_padded",
                        stats.rows_padded * stats.chunk_columns)
        return FleetSnapshot(
            step=self._step,
            chunk_size=int(values.shape[1]),
            n_shards=self.n_shards,
            total_modes=sum(snap.n_modes for snap in snapshots.values()),
            shard_snapshots=snapshots,
            ingest_stats=stats,
            degraded_shards=self.quarantined_shards,
        )

    def _record_chunk_metrics(self, stats: IngestStats, elapsed: float) -> None:
        """Throughput metrics for one ingested chunk (provider is enabled)."""
        entries = stats.entries_received
        OBS.observe("service.chunk.seconds", elapsed)
        OBS.inc("service.rows", entries)
        OBS.inc("service.snapshots", stats.chunk_columns)
        if elapsed > 0.0:
            OBS.gauge("service.rows_per_sec", entries / elapsed)

    # ------------------------------------------------------------------ #
    # Fleet health & flight recording (always on)
    # ------------------------------------------------------------------ #
    def _finalize_round(
        self, snapshot: FleetSnapshot, stats: IngestStats, elapsed: float
    ) -> None:
        """Always-on post-round accounting: latency rings, flight-recorder
        breadcrumbs and the derived health score.  Only the *metrics*
        emission stays gated on the obs provider — health and the black
        box are exactly what an uninstrumented run needs after a crash."""
        self._chunk_latency.append(float(elapsed))
        FLIGHT.record_delta(
            "service.chunk.seconds",
            elapsed,
            step=snapshot.step,
            rows=stats.entries_received,
        )
        snapshot.health = self._compute_health(snapshot.shard_snapshots)
        if OBS.enabled:
            self._record_chunk_metrics(stats, elapsed)
            for entity, score in snapshot.health.items():
                if entity == "fleet":
                    OBS.gauge("service.health.score", score.score)
                else:
                    OBS.gauge("service.health.score", score.score, shard=entity)

    def _note_shard_latency(self, shard_id: str, seconds: float) -> None:
        ring = self._shard_latency.get(shard_id)
        if ring is None:
            ring = self._shard_latency[shard_id] = RingBuffer(64)
        ring.append(float(seconds))

    def _latency_budget(self) -> float | None:
        """The latency budget health scores against: the supervision
        deadline when resilience is on, else unbudgeted (neutral)."""
        if self.resilience is not None:
            return self.resilience.task_deadline
        return None

    def _compute_health(
        self, snapshots: dict[str, PipelineSnapshot]
    ) -> dict[str, HealthScore]:
        """Score every shard plus a ``"fleet"`` aggregate.

        Latency uses each shard's own supervised-round p95 when sampled
        (supervised gathers time per shard), else the fleet-wide chunk
        p95; staleness comes from the shard's deferred deep-level backlog;
        availability from the quarantine roster.
        """
        budget = self._latency_budget()
        fleet_p95 = percentile(self._chunk_latency.items(), 0.95)
        per_shard: dict[str, HealthScore] = {}
        for spec in self.shards:
            sid = spec.shard_id
            ring = self._shard_latency.get(sid)
            samples = ring.items() if ring is not None else []
            p95 = percentile(samples, 0.95) if samples else fleet_p95
            snap = snapshots.get(sid)
            stale = 0.0 if snap is None else float(snap.deep_stale_snapshots)
            per_shard[sid] = score_shard(
                quarantined=sid in self._quarantined,
                p95_seconds=p95,
                budget_seconds=budget,
                deep_stale_snapshots=stale,
            )
        health = dict(per_shard)
        health["fleet"] = aggregate(per_shard.values())
        self._last_health = health
        return health

    @property
    def health(self) -> dict[str, HealthScore] | None:
        """Most recent per-shard (plus ``"fleet"``) health scores, or
        ``None`` before the first ingest round."""
        return self._last_health

    def _snapshot_stamps(self) -> dict:
        """Recovery-store stamps embedded in flight bundles: which shards
        hold a state snapshot and how long their replay tails are."""
        return {
            sid: {
                "has_snapshot": bool(self._recovery.has_snapshot(sid)),
                "replay_tail": int(self._recovery.tail_length(sid)),
            }
            for sid in self._recovery.shard_ids
        }

    # ------------------------------------------------------------------ #
    # Supervision & resilience (resilience=ResiliencePolicy(...))
    # ------------------------------------------------------------------ #
    @property
    def quarantined_shards(self) -> tuple[str, ...]:
        """Ids of shards currently quarantined, in sorted order."""
        return tuple(sorted(self._quarantined))

    @property
    def quarantine_info(self) -> dict[str, dict]:
        """Per-quarantined-shard diagnostics: fleet step, attempt count
        and the final failure's ``reason`` string."""
        return {sid: dict(info) for sid, info in self._quarantined.items()}

    def reinstate_shard(self, shard_id: str) -> None:
        """Lift a shard's quarantine (operator action).

        The shard rejoins the next ingest round from its *last recovered
        state* — chunks ingested by the rest of the fleet while it was
        quarantined are gone, so its shard-local timeline lags the fleet's
        until enough new chunks arrive.  Merged products stay well-defined
        (each shard scores against its own baseline); window-aligned
        queries over the gap are the operator's judgement call.
        """
        if shard_id not in self._quarantined:
            raise KeyError(f"shard {shard_id!r} is not quarantined")
        del self._quarantined[shard_id]
        self._rehydrate_shard(self._executor, shard_id)

    @staticmethod
    def _failure_kind(exc: BaseException) -> str:
        """Coarse failure class for metrics and recovery routing."""
        if isinstance(exc, ShardTimeoutError):
            return "timeout"
        if getattr(exc, "kind", None) == "crash":
            return "crash"
        if isinstance(exc, PoisonChunkError):
            return "poison"
        return "error"

    @staticmethod
    def _is_worker_loss(exc: BaseException) -> bool:
        """Whether the failure means the *worker* (not just the task) is
        gone: a missed deadline (hung worker) or a crash-class error (the
        executor observed the worker die / abandoned its queue)."""
        return isinstance(exc, ShardTimeoutError) or (
            getattr(exc, "kind", None) == "crash"
        )

    def _rehydrate_pipeline(
        self, shard_id: str
    ) -> tuple[OnlineAnalysisPipeline, int]:
        """Rebuild one shard's pipeline from the recovery store.

        Falls back to a fresh (unfitted) pipeline when the shard was never
        snapshotted — i.e. it failed before its very first chunk landed,
        so pre-first-chunk state *is* the correct restore point.
        """
        if self._recovery.has_snapshot(shard_id):
            pipeline, replayed = self._recovery.rebuild(shard_id)
        else:
            spec = next(s for s in self.shards if s.shard_id == shard_id)
            pipeline, replayed = self._make_pipeline(spec), 0
        if self.resilience is not None:
            pipeline.validate_chunks = True
        if OBS.enabled:
            OBS.inc("service.resilience.rehydrated_shards")
            if replayed:
                OBS.inc("service.resilience.replayed_chunks", replayed)
        return pipeline, replayed

    def _rehydrate_shard(
        self, executor: ShardExecutor | None, shard_id: str
    ) -> None:
        """Replace one shard's (possibly partially mutated) pipeline with
        an exact rebuild — the task failed, so the chunk was not applied."""
        pipeline, _ = self._rehydrate_pipeline(shard_id)
        self._pipelines[shard_id] = pipeline
        if executor is not None:
            executor.install(shard_id, pipeline)

    def _recover_worker(
        self, executor: ShardExecutor, shard_id: str
    ) -> tuple[str, ...]:
        """Respawn the worker serving ``shard_id`` and rehydrate *every*
        shard resident on it (their in-worker state died with the worker).
        Returns the resident shard ids."""
        residents = executor.worker_shards(shard_id)
        objects: dict[str, OnlineAnalysisPipeline] = {}
        for rsid in residents:
            objects[rsid], _ = self._rehydrate_pipeline(rsid)
        executor.respawn(shard_id, objects)
        for rsid, pipeline in objects.items():
            self._pipelines[rsid] = pipeline
        FLIGHT.record_note(
            "worker_lost",
            scope=f"shard:{shard_id}",
            shard=shard_id,
            step=int(self._step),
            residents=list(residents),
        )
        FLIGHT.dump(
            "worker_lost",
            shard_id=shard_id,
            step=int(self._step),
            snapshot_stamps=self._snapshot_stamps(),
            extra={"residents": list(residents)},
        )
        if OBS.enabled and executor.backend == "process":
            # The replacement worker is a fresh interpreter whose obs
            # provider starts disabled; mirror the parent's switch so its
            # metrics keep accumulating (cf. _ensure_executor).
            executor.call(shard_id, worker_enable_metrics)
        return residents

    def _quarantine(self, shard_id: str, exc: BaseException, attempts: int) -> None:
        """Mark a shard quarantined after it exhausted its retry budget."""
        info = {
            "step": int(self._step),
            "attempts": int(attempts),
            "reason": f"{type(exc).__name__}: {exc}",
        }
        self._quarantined[shard_id] = info
        FLIGHT.record_note(
            "quarantine",
            scope=f"shard:{shard_id}",
            shard=shard_id,
            **info,
        )
        FLIGHT.dump(
            "quarantine",
            shard_id=shard_id,
            step=int(self._step),
            quarantine=info,
            snapshot_stamps=self._snapshot_stamps(),
        )
        if OBS.enabled:
            OBS.inc("service.resilience.quarantined")
            OBS.gauge(
                "service.resilience.quarantined_shards", len(self._quarantined)
            )

    def _record_recovery(
        self, chunks: dict[str, np.ndarray]
    ) -> None:
        """Record this round's successfully ingested chunks (and periodic
        state snapshots) so a later worker loss can be replayed exactly."""
        for shard_id, chunk in chunks.items():
            self._recovery.record_chunk(shard_id, chunk)
            if self._recovery.needs_snapshot(shard_id):
                # Stamp first: when the shard hasn't mutated since the
                # recorded snapshot (quarantined, or only replayed
                # chunks), the store skips the state_dict() pull and
                # re-serialisation entirely (dirty-tracking fast path).
                self._recovery.record_snapshot_if_changed(
                    shard_id,
                    self.shard_state_stamp(shard_id),
                    lambda sid=shard_id: self.shard_state_dict(sid),
                )

    def _submit_supervised(
        self,
        executor: ShardExecutor,
        shard_id: str,
        chunk: np.ndarray,
        round_index: int,
        attempt: int,
    ):
        """Submit one supervised ingest task, attaching any planned fault
        for this ``(shard, round, attempt)`` coordinate."""
        fault = None
        if self.fault_plan is not None:
            fault = self.fault_plan.task_fault(shard_id, round_index, attempt)
        if fault is None:
            return executor.submit(shard_id, _shard_ingest, chunk)
        return executor.submit(shard_id, _shard_ingest_supervised, chunk, fault)

    def _supervised_round(
        self, executor: ShardExecutor, values: np.ndarray
    ) -> dict[str, PipelineSnapshot]:
        """One supervised ingest round: fan out, detect, retry, recover.

        Each non-quarantined shard gets up to ``max_attempts`` tries with
        capped-exponential deterministically-jittered backoff.  A missed
        deadline or crash-class failure means the *worker* is gone: it is
        force-terminated and respawned, and every resident shard is
        rehydrated from its recovery snapshot plus chunk-tail replay
        (bit-for-bit — the chaos tests compare against fault-free runs);
        co-resident shards whose round results died with the worker are
        transparently resubmitted without burning their retry budget.
        Shards that exhaust their budget are quarantined and excluded from
        this and later rounds.
        """
        policy = self.resilience
        round_index = self._chunk_index + 1
        chunks: dict[str, np.ndarray] = {}
        for spec in self.shards:
            if spec.shard_id in self._quarantined:
                continue
            chunk = spec.take(values)
            if self.fault_plan is not None and self.fault_plan.poisons(
                spec.shard_id, round_index
            ):
                chunk = FaultPlan.poison(chunk)
            chunks[spec.shard_id] = chunk
        tasks = {
            shard_id: self._submit_supervised(
                executor, shard_id, chunk, round_index, 1
            )
            for shard_id, chunk in chunks.items()
        }
        attempts = dict.fromkeys(chunks, 1)
        snapshots: dict[str, PipelineSnapshot] = {}
        pending = [spec.shard_id for spec in self.shards if spec.shard_id in chunks]
        while pending:
            shard_id = pending.pop(0)
            if shard_id in snapshots or shard_id in self._quarantined:
                continue  # settled while re-queued after a worker recovery
            try:
                t_task = now()
                snapshots[shard_id] = tasks[shard_id].result(
                    timeout=policy.task_deadline
                )
                self._note_shard_latency(shard_id, now() - t_task)
                continue
            except Exception as exc:  # noqa: BLE001 — supervisor boundary
                attempt = attempts[shard_id]
                if OBS.enabled:
                    OBS.inc(
                        "service.resilience.failures",
                        kind=self._failure_kind(exc),
                    )
                if self._is_worker_loss(exc):
                    residents = self._recover_worker(executor, shard_id)
                    # Co-residents lost their in-worker state with the
                    # worker; their round results (gathered or in flight)
                    # are stale → resubmit at their *current* attempt so
                    # planned faults still fire at the same coordinates.
                    for rsid in residents:
                        if (
                            rsid == shard_id
                            or rsid not in chunks
                            or rsid in self._quarantined
                        ):
                            continue
                        snapshots.pop(rsid, None)
                        tasks[rsid] = self._submit_supervised(
                            executor, rsid, chunks[rsid],
                            round_index, attempts[rsid],
                        )
                        if rsid not in pending:
                            pending.append(rsid)
                else:
                    self._rehydrate_shard(executor, shard_id)
                if attempt >= policy.max_attempts:
                    self._quarantine(shard_id, exc, attempt)
                    continue
                delay = policy.backoff_delay(shard_id, attempt)
                if delay > 0.0:
                    time.sleep(delay)
                attempts[shard_id] = attempt + 1
                if OBS.enabled:
                    OBS.inc("service.resilience.retries", shard=shard_id)
                tasks[shard_id] = self._submit_supervised(
                    executor, shard_id, chunks[shard_id],
                    round_index, attempts[shard_id],
                )
                pending.append(shard_id)
        self._record_recovery(
            {sid: chunk for sid, chunk in chunks.items() if sid in snapshots}
        )
        return snapshots

    def _gather_score(self, executor: ShardExecutor, shard_id: str, task):
        """Gather one supervised scoring result; a failure degrades to
        "no score this round" (scores are presentation, not model state)
        after recovering the worker/pipeline for the next round."""
        policy = self.resilience
        try:
            return task.result(
                timeout=None if policy is None else policy.task_deadline
            )
        except Exception as exc:  # noqa: BLE001 — supervisor boundary
            if OBS.enabled:
                OBS.inc(
                    "service.resilience.failures", kind=self._failure_kind(exc)
                )
            if self._is_worker_loss(exc):
                if executor.worker_alive(shard_id):
                    # Collateral of a respawn already done for a co-resident
                    # this gather — the new worker is healthy and already
                    # rehydrated; nothing further to recover.
                    return None
                self._recover_worker(executor, shard_id)
            else:
                self._rehydrate_shard(executor, shard_id)
            return None

    # ------------------------------------------------------------------ #
    # Asynchronous deep-level refresh (deep_levels="deferred")
    # ------------------------------------------------------------------ #
    def _schedule_deep_refreshes(self, snapshots: dict[str, PipelineSnapshot]) -> None:
        """Queue background deep-level refreshes after one ingest round.

        Under ``deep_levels="deferred"`` a shard's levels-2..L work
        accumulates in its pipeline; this schedules the drain as an
        executor task — behind the shard's own FIFO queue, so it runs off
        the ingest critical path (overlapping the *next* chunks on
        thread/process backends) while every later command on that shard
        still observes the refreshed tree.  A shard is scheduled when its
        drift flag fired this chunk or every ``deep_refresh_every`` chunks,
        whichever comes first; the decision depends only on snapshot
        contents, so scheduling (and the resulting trees) are identical
        across backends.  No-op under ``deep_levels="inline"``.
        """
        if self.config.deep_levels != "deferred":
            return
        executor = self._ensure_executor()
        every = self.config.deep_refresh_every
        n_scheduled = 0
        for shard_id, snap in snapshots.items():
            if snap.update is None:
                continue  # initial fit: nothing deferred yet
            count = self._chunks_since_refresh.get(shard_id, 0) + 1
            self._chunks_since_refresh[shard_id] = count
            drifted = bool(snap.update.stale)
            due = every > 0 and count >= every
            if (drifted or due) and snap.deep_pending > 0:
                self._chunks_since_refresh[shard_id] = 0
                self._refresh_tasks.append(
                    executor.submit(shard_id, _shard_refresh_deep)
                )
                n_scheduled += 1
        if OBS.enabled:
            if n_scheduled:
                OBS.inc("service.deep_refresh.scheduled", n_scheduled)
            # Deterministic staleness gauges (snapshot contents only).
            OBS.gauge(
                "service.deep.queue_depth",
                sum(snap.deep_pending for snap in snapshots.values()),
            )
            OBS.gauge(
                "service.deep.stale_snapshots",
                max((snap.deep_stale_snapshots for snap in snapshots.values()),
                    default=0),
            )

    def drain_refreshes(self) -> int:
        """Wait for every scheduled deep-level refresh; returns the total
        number of tree nodes the refreshes added.

        Ingest keeps scheduling refreshes in the background; call this at
        a quiescent point (before a checkpoint comparison, in tests, at
        shutdown — :meth:`close` and pickling do it automatically) to
        guarantee no refresh task is still in flight.  Queued-but-never-
        scheduled entries stay queued: they are ordinary serialisable
        model state, not in-flight work.
        """
        if not self._refresh_tasks:
            return 0
        tasks, self._refresh_tasks = self._refresh_tasks, []
        return sum(int(task.result() or 0) for task in tasks)

    def refresh_deep_levels(self) -> int:
        """Force every queued deep-level entry through, fleet-wide.

        Submits a refresh to each shard and waits (alongside any refreshes
        already in flight); returns the total number of tree nodes added.
        After this the fleet's trees match what ``deep_levels="inline"``
        would have produced — use it to catch up before a final analysis
        when the drift/every-N schedule has not drained the backlog yet.
        No-op (returns 0) under ``deep_levels="inline"``.
        """
        if self.config.deep_levels != "deferred":
            return 0
        executor = self._ensure_executor()
        self._refresh_tasks.extend(
            executor.submit(spec.shard_id, _shard_refresh_deep)
            for spec in self.shards
        )
        self._chunks_since_refresh.clear()
        added = self.drain_refreshes()
        if OBS.enabled:
            # The backlog gauges otherwise keep the last mid-run reading.
            OBS.gauge("service.deep.queue_depth", 0)
            OBS.gauge("service.deep.stale_snapshots", 0)
        return added

    def deep_staleness(self) -> dict[str, tuple[int, int]]:
        """Per-shard ``(pending refresh entries, stale snapshot age)``.

        Answered through the executor, so on thread/process backends the
        values reflect every refresh already scheduled for a shard (the
        query queues behind it).  All zeros under ``deep_levels="inline"``.
        """
        return self._query_all(_shard_deep_staleness)

    def _deep_stale_ages(self) -> dict[str, int]:
        """Nonzero per-shard staleness ages for alert-context stamping."""
        if self.config.deep_levels != "deferred":
            return {}
        return {
            shard_id: int(stale)
            for shard_id, (_pending, stale) in self.deep_staleness().items()
            if stale
        }

    # ------------------------------------------------------------------ #
    # Elastic topology
    # ------------------------------------------------------------------ #
    def add_sensors(
        self,
        sensor_names,
        node_of_row,
        *,
        history: np.ndarray | None = None,
        policy: ShardingPolicy | None = None,
        machine: MachineDescription | None = None,
    ) -> TopologyUpdate:
        """Stream new sensors into the live fleet (topology event).

        The sharding policy maps the new rows onto the partition
        (:meth:`ShardingPolicy.repartition`): rows landing in an existing
        shard are shipped to that shard's *resident* pipeline as an
        ``add_sensors`` command (the worker pool keeps running — no
        restart, no refit of unaffected shards), and rows no existing
        shard can take mint new shards that join the pool via
        :meth:`ShardExecutor.add_shard`.  New rows occupy the matrix rows
        directly after the current partition, in the order given;
        subsequent :meth:`ingest` chunks must carry the grown row count
        (or use ``missing_rows="nan"`` until the sensors report).

        Parameters
        ----------
        sensor_names / node_of_row:
            Channel name and populated-node index per new row.
        history:
            Optional ``(r, step)`` back-filled readings over the fleet
            timeline; without it the rows join *now* at O(r) cost.  Rows
            with history that land in an existing fitted shard back-fill
            its basis; rows minting a new shard seed it by ingesting the
            history (the shard then spans the fleet timeline).  History
            for rows landing in a shard that has not fitted yet (minted
            earlier at this same step, no chunk since) is ignored — the
            initial fit sizes itself from the first chunk.
        policy / machine:
            Override the recorded sharding policy / machine description
            (required after a checkpoint restore, which persists neither).
        """
        sensor_names = np.asarray(sensor_names, dtype=object)
        node_of_row = np.asarray(node_of_row, dtype=int)
        if node_of_row.ndim != 1 or node_of_row.size == 0:
            raise ValueError("node_of_row must be a non-empty 1-D index array")
        if sensor_names.shape != node_of_row.shape:
            raise ValueError("sensor_names and node_of_row lengths differ")
        policy = policy or self.policy
        if policy is None:
            raise ValueError(
                "no sharding policy available: build the monitor with "
                "FleetMonitor.from_stream or pass policy=..."
            )
        machine = machine if machine is not None else self.machine
        n_new = int(node_of_row.size)
        if history is not None:
            history = np.asarray(history, dtype=float)
            if history.ndim == 1:
                history = history[None, :]
            if history.shape != (n_new, self._step):
                raise ValueError(
                    f"history must be ({n_new}, {self._step}) — one row per new "
                    f"sensor over the fleet timeline — got {history.shape}"
                )
        row_offset = max(int(spec.row_indices.max()) for spec in self.shards) + 1
        new_partition = policy.repartition(
            self.shards, sensor_names, node_of_row, machine, row_offset=row_offset
        )
        validate_partition(new_partition, row_offset + n_new)

        old_by_id = {spec.shard_id: spec for spec in self.shards}
        update = TopologyUpdate(step=self._step, n_new_rows=n_new)
        final_specs: list[ShardSpec] = []
        minted: list[ShardSpec] = []
        for spec in new_partition:
            old = old_by_id.get(spec.shard_id)
            if old is None:
                # Stamp the birth step so absolute query windows translate.
                spec = replace(spec, start_step=self._step)
                minted.append(spec)
                final_specs.append(spec)
                continue
            if spec.n_rows == old.n_rows:
                final_specs.append(old)
                continue
            new_rows_abs = spec.row_indices[old.n_rows :]
            new_nodes = spec.node_of_row[old.n_rows :]
            shard_history = None
            if history is not None:
                shard_history = np.ascontiguousarray(
                    history[new_rows_abs - row_offset][:, old.start_step :]
                )
            if self._executor is None:
                change = _shard_add_sensors(
                    self._pipelines[spec.shard_id], new_nodes, shard_history
                )
            else:
                change = self._executor.call(
                    spec.shard_id, _shard_add_sensors, new_nodes, shard_history
                )
            update.extended[spec.shard_id] = change
            final_specs.append(spec)
        for index, spec in enumerate(minted):
            pipeline = self._make_pipeline(spec)
            if history is not None:
                # Back-filled rows minting a new shard seed it with their
                # full history: the shard then spans the fleet timeline
                # (start_step 0) instead of starting at the event.
                pipeline.ingest(
                    np.ascontiguousarray(history[spec.row_indices - row_offset])
                )
                seeded = replace(spec, start_step=0)
                for position, existing in enumerate(final_specs):
                    if existing.shard_id == spec.shard_id:
                        final_specs[position] = seeded
                        break
                minted[index] = spec = seeded
            self._pipelines[spec.shard_id] = pipeline
            if self._executor is not None:
                self._executor.add_shard(spec.shard_id, pipeline)
        update.minted = tuple(spec.shard_id for spec in minted)
        self.shards = final_specs
        return update

    def add_shard(
        self,
        spec: ShardSpec,
        *,
        pipeline: OnlineAnalysisPipeline | None = None,
    ) -> ShardSpec:
        """Mint one explicit new shard into the live fleet.

        The lower-level sibling of :meth:`add_sensors` for callers that
        already know the shard layout: ``spec`` must cover exactly the
        matrix rows directly after the current partition.  The shard joins
        the running executor pool without a restart; its pipeline does the
        initial fit on the next ingested chunk.  Returns the installed
        spec (stamped with the current fleet step as its ``start_step``
        unless the caller set one).
        """
        if spec.shard_id in self._pipelines:
            raise ValueError(f"shard {spec.shard_id!r} already exists")
        if spec.start_step == 0 and self._step > 0:
            spec = replace(spec, start_step=self._step)
        n_rows = max(
            int(s.row_indices.max()) for s in (*self.shards, spec)
        ) + 1
        validate_partition([*self.shards, spec], n_rows)
        pipeline = pipeline or self._make_pipeline(spec)
        self.shards = [*self.shards, spec]
        self._pipelines[spec.shard_id] = pipeline
        if self._executor is not None:
            self._executor.add_shard(spec.shard_id, pipeline)
        return spec

    def _shard_window(self, spec: ShardSpec, time_range):
        """Absolute window -> shard-local window (None = full timeline).

        Returns the sentinel ``False`` when the window ends before the
        shard's stream began (nothing to score there).
        """
        if time_range is None:
            return None
        lo, hi = time_range
        lo_local = max(int(lo) - spec.start_step, 0)
        hi_local = int(hi) - spec.start_step
        if hi_local <= lo_local:
            return False
        return (lo_local, hi_local)

    def ingest_and_alert(
        self,
        values: np.ndarray,
        *,
        hwlog: HardwareLog | None = None,
        window: int = 200,
    ) -> tuple[FleetSnapshot, list[Alert]]:
        """Ingest a chunk and evaluate alerts, overlapping the two.

        Equivalent to ``ingest(values)`` followed by
        ``evaluate_alerts(hwlog=hwlog, window=window)`` — bit-for-bit, as
        the tests assert — but each shard's recent-window scoring is
        enqueued directly behind its own update, so on thread/process
        backends shard A is being scored while shard B is still updating,
        and the drift records are taken from the ingest results instead of
        a second query round-trip.
        """
        values, stats = self._validated(values)
        t_start = now()
        deferred = self.config.deep_levels == "deferred"
        with OBS.span("service.ingest_and_alert", chunk=stats.chunk_columns):
            executor = self._ensure_executor()
            new_step = self._step + values.shape[1]
            if self.resilience is not None:
                snapshots = self._supervised_round(executor, values)
                snapshot = self._finish_ingest(values, snapshots, stats)
                self._schedule_deep_refreshes(snapshots)
                per_shard: dict[str, NodeZScores] = {}
                if self.alert_engine is not None:
                    # Supervised rounds submit scoring only after the
                    # ingest gather: retries, recoveries and quarantines
                    # must settle (and, under deferred deep levels, the
                    # refreshes be queued) before a shard's tree is worth
                    # scoring.
                    for shard_id, task in self._submit_score_tasks(
                        executor, new_step, window
                    ):
                        scores = self._gather_score(executor, shard_id, task)
                        if scores is not None:
                            per_shard[shard_id] = scores
            else:
                ingest_tasks = [
                    (spec.shard_id, executor.submit(spec.shard_id, _shard_ingest, spec.take(values)))
                    for spec in self.shards
                    if spec.shard_id not in self._quarantined
                ]
                score_tasks = []
                if self.alert_engine is not None and not deferred:
                    # Inline deep levels: a shard's tree is final once its
                    # update ran, so scoring overlaps the other shards'
                    # updates (per-shard FIFO keeps each score behind its own
                    # shard's ingest).
                    score_tasks = self._submit_score_tasks(executor, new_step, window)
                snapshots = {}
                for shard_id, task in ingest_tasks:
                    try:
                        snapshots[shard_id] = task.result()
                    except ShardTaskError:
                        raise
                    except Exception as exc:
                        # One shard's worker exception must not surface as
                        # a raw traceback with no fleet context: name the
                        # shard and keep the original as the cause chain.
                        raise ShardTaskError(
                            f"shard {shard_id!r} failed during "
                            f"ingest_and_alert at step {self._step}: {exc}",
                            shard_id=shard_id,
                            attempts=1,
                            cause=exc,
                        ) from exc
                snapshot = self._finish_ingest(values, snapshots, stats)
                self._schedule_deep_refreshes(snapshots)
                if self.alert_engine is not None and deferred:
                    # Deferred deep levels: scoring must observe the
                    # post-refresh trees — exactly what evaluate_alerts()
                    # after a plain ingest() sees — so the score tasks are
                    # submitted after the refresh tasks and queue behind them.
                    score_tasks = self._submit_score_tasks(executor, new_step, window)
                per_shard = {
                    shard_id: scores
                    for shard_id, task in score_tasks
                    if (scores := task.result()) is not None
                }
            if self.alert_engine is None:
                alerts: list[Alert] = []
            else:
                context = AlertContext(
                    step=self._step,
                    node_zscores=self._merge_node_scores(per_shard, reducer="mean"),
                    updates={sid: snap.update for sid, snap in snapshots.items()},
                    hwlog=hwlog,
                    window=window,
                    deep_stale=self._deep_stale_ages(),
                    degraded_shards=self.quarantined_shards,
                )
                alerts = self.alert_engine.evaluate(context)
        for alert in alerts:
            FLIGHT.record_alert(alert)
        self._finalize_round(snapshot, stats, now() - t_start)
        return snapshot, alerts

    def _submit_score_tasks(
        self, executor: ShardExecutor, new_step: int, window: int
    ) -> list[tuple[str, object]]:
        """Enqueue the per-shard recent-window scoring commands."""
        lo = max(0, new_step - window)
        tasks = []
        for spec in self.shards:
            if spec.shard_id in self._quarantined:
                continue
            local = self._shard_window(spec, (lo, new_step))
            if local is False:
                continue
            tasks.append(
                (
                    spec.shard_id,
                    executor.submit(spec.shard_id, _shard_node_zscores, local, "mean"),
                )
            )
        return tasks

    # ------------------------------------------------------------------ #
    # Fleet-level analysis products
    # ------------------------------------------------------------------ #
    def fit_baselines(self, **kwargs) -> None:
        """Fit every shard's baseline (from its reconstruction by default)."""
        self._query_all(_shard_fit_baseline, kwargs)

    def _merge_node_scores(
        self, per_shard: dict[str, NodeZScores], reducer: str
    ) -> NodeZScores:
        """Aggregate per-shard node scores into one fleet-level set.

        Shards absent from ``per_shard`` (not yet fitted, or outside the
        scored window) simply contribute nothing.
        """
        per_node: dict[int, list[float]] = {}
        for spec in self.shards:
            shard_scores = per_shard.get(spec.shard_id)
            if shard_scores is None:
                continue
            for node, z in zip(shard_scores.node_indices, shard_scores.zscores):
                per_node.setdefault(int(node), []).append(float(z))
        nodes = np.array(sorted(per_node), dtype=int)
        merged = np.empty(nodes.size, dtype=float)
        for i, node in enumerate(nodes):
            samples = np.asarray(per_node[int(node)], dtype=float)
            if reducer == "mean":
                merged[i] = samples.mean()
            elif reducer == "max":
                merged[i] = samples.max()
            elif reducer == "absmax":
                merged[i] = samples[np.argmax(np.abs(samples))]
            else:
                raise ValueError(f"unknown reducer {reducer!r}")
        categories = classify_zscores(
            merged, near=self.config.zscore_near, extreme=self.config.zscore_extreme
        )
        return NodeZScores(node_indices=nodes, zscores=merged, categories=categories)

    def node_zscores(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> NodeZScores:
        """Fleet-merged per-node z-scores.

        Each shard scores its own rows against its own baseline (fanned
        out over the executor); nodes appearing in several shards (metric
        sharding) are aggregated with ``reducer`` (``"mean"``, ``"max"``
        or ``"absmax"``), then re-classified with the shared thresholds.
        Passing ``time_range`` scores a *window* of the reconstruction —
        only that window's modes are expanded (and cached per shard), so
        recent-window queries stop paying O(full timeline) per call.
        Absolute windows are translated into each shard's local timeline
        (shards minted mid-run start later); shards with no data in the
        window are skipped.
        """
        args: dict[str, tuple] = {}
        for spec in self.shards:
            if spec.shard_id in self._quarantined:
                continue
            local = self._shard_window(spec, time_range)
            if local is False:
                continue
            args[spec.shard_id] = (local, reducer)
        results = self._query_map(_shard_node_zscores, args)
        per_shard = {
            shard_id: scores
            for shard_id, scores in results.items()
            if scores is not None
        }
        return self._merge_node_scores(per_shard, reducer=reducer)

    def rack_values(
        self,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> dict[int, float]:
        """``{node: zscore}`` over the whole fleet, ready for the rack view."""
        return self.node_zscores(time_range=time_range, reducer=reducer).as_dict()

    def spectra(self) -> dict[str, MrDMDSpectrum]:
        """Per-shard (filtered) spectra keyed by shard id.

        Shards still awaiting their first chunk (minted mid-run) have no
        decomposition yet and are omitted.
        """
        results = self._query_map(
            _shard_spectrum,
            {
                spec.shard_id: (spec.shard_id,)
                for spec in self.shards
                if spec.shard_id not in self._quarantined
            },
        )
        return {
            shard_id: spectrum
            for shard_id, spectrum in results.items()
            if spectrum is not None
        }

    def fleet_spectrum(self) -> FleetSpectrum:
        """Merged power/frequency table across every shard."""
        freqs, power, levels, shard_ids = [], [], [], []
        for shard_id, spectrum in self.spectra().items():
            freqs.append(spectrum.frequencies)
            power.append(spectrum.power)
            levels.append(spectrum.table.levels)
            shard_ids.append(np.full(spectrum.n_modes, shard_id, dtype=object))
        return FleetSpectrum(
            frequencies=np.concatenate(freqs) if freqs else np.zeros(0),
            power=np.concatenate(power) if power else np.zeros(0),
            levels=np.concatenate(levels) if levels else np.zeros(0, dtype=int),
            shard_ids=np.concatenate(shard_ids) if shard_ids else np.zeros(0, dtype=object),
        )

    # ------------------------------------------------------------------ #
    # Alerting
    # ------------------------------------------------------------------ #
    def evaluate_alerts(
        self,
        *,
        hwlog: HardwareLog | None = None,
        window: int = 200,
    ) -> list[Alert]:
        """Run the alert engine against the current fleet state.

        Returns the deduplicated alerts fired this evaluation (also
        delivered to the engine's sinks).  A monitor without an engine
        returns an empty list.  :meth:`ingest_and_alert` produces the same
        alerts while overlapping scoring with the shard updates.
        """
        if self.alert_engine is None:
            return []
        # Score the *recent* window: an operator cares about the current
        # state; an all-time mean dilutes late-onset anomalies.
        lo = max(0, self._step - window)
        context = AlertContext(
            step=self._step,
            node_zscores=self.node_zscores(time_range=(lo, self._step)),
            updates=self.last_updates(),
            hwlog=hwlog,
            window=window,
            deep_stale=self._deep_stale_ages(),
            degraded_shards=self.quarantined_shards,
        )
        return self.alert_engine.evaluate(context)

"""Counters, gauges and fixed-bucket histograms for the ingest path.

The registry is deliberately tiny and dependency-free: every instrument is
plain data (ints, floats, lists), so a :class:`MetricsRegistry`

* **pickles** — process-backend shard workers accumulate into their own
  module-level registry and ship it home with query results (see
  :func:`repro.obs.worker_drain_metrics`);
* **merges** — ``parent.merge(worker_registry)`` adds counters and
  histogram buckets and takes the other side's gauge samples, so the
  fleet-wide totals are exact regardless of how work was scheduled;
* **serialises** — :meth:`MetricsRegistry.to_dict` round-trips through
  JSON for the ``--metrics-out`` CLI surface.

Histograms use *fixed* bucket bounds (shared by every process by
construction), which is what makes cross-process merging a plain
element-wise add.  Quantiles are estimated by linear interpolation inside
the bucket containing the requested rank, clamped to the observed min/max.

Thread safety: mutation goes through the registry's convenience methods
(:meth:`inc`, :meth:`set_gauge`, :meth:`observe`), which hold one shared
lock — the thread executor's workers record into the parent registry
concurrently.  The lock is dropped on pickle and recreated on load.
"""

from __future__ import annotations

import bisect
import threading
from typing import Iterator

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "metric_key",
]

#: Default histogram bounds (seconds): exponential 10 us .. ~84 s, the span
#: from a no-op provider call to a paper-scale initial fit.
DEFAULT_TIME_BUCKETS: tuple[float, ...] = tuple(
    1e-5 * (2.0 ** i) for i in range(24)
)


def metric_key(name: str, labels: dict[str, object]) -> tuple:
    """Canonical hashable identity of one instrument: name + sorted labels."""
    return (name, tuple(sorted((str(k), str(v)) for k, v in labels.items())))


def _key_str(key: tuple) -> str:
    """Human-readable ``name{k=v,...}`` rendering of a metric key."""
    name, labels = key
    if not labels:
        return name
    inner = ",".join(f"{k}={v}" for k, v in labels)
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0.0) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount!r}")
        self.value += float(amount)

    def merge(self, other: "Counter") -> None:
        self.value += other.value

    def to_dict(self) -> dict:
        return {"value": self.value}

    @classmethod
    def from_dict(cls, state: dict) -> "Counter":
        return cls(value=float(state["value"]))


class Gauge:
    """A last-written sample (rank, queue depth, rows/sec of the last chunk)."""

    __slots__ = ("value", "n_samples")

    def __init__(self, value: float = 0.0, n_samples: int = 0) -> None:
        self.value = float(value)
        self.n_samples = int(n_samples)

    def set(self, value: float) -> None:
        self.value = float(value)
        self.n_samples += 1

    def merge(self, other: "Gauge") -> None:
        # The other side's sample is the more recent observation of the
        # same instrument (workers are drained after the parent stopped
        # submitting); keep it when it actually observed anything.
        if other.n_samples:
            self.value = other.value
        self.n_samples += other.n_samples

    def to_dict(self) -> dict:
        return {"value": self.value, "n_samples": self.n_samples}

    @classmethod
    def from_dict(cls, state: dict) -> "Gauge":
        return cls(
            value=float(state["value"]), n_samples=int(state.get("n_samples", 0))
        )


class Histogram:
    """Fixed-bucket distribution with exact count/sum and estimated quantiles.

    ``bounds`` are inclusive upper bucket edges; one implicit overflow
    bucket catches everything above the last edge.  Two histograms merge
    only when their bounds are identical, which the registry guarantees by
    construction (the bounds are fixed at first registration).
    """

    __slots__ = ("bounds", "bucket_counts", "count", "sum", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_TIME_BUCKETS) -> None:
        bounds = tuple(float(b) for b in bounds)
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError("bounds must be a non-empty increasing sequence")
        self.bounds = bounds
        self.bucket_counts = [0] * (len(bounds) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[bisect.bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimated ``q``-quantile (0..1) by in-bucket linear interpolation."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"q must be in [0, 1], got {q!r}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, n in enumerate(self.bucket_counts):
            if n == 0:
                continue
            if cumulative + n >= rank:
                lo = self.bounds[index - 1] if index > 0 else min(self.min, self.bounds[0])
                hi = self.bounds[index] if index < len(self.bounds) else self.max
                lo = max(lo, self.min)
                hi = min(hi, self.max) if hi >= lo else lo
                fraction = (rank - cumulative) / n
                return lo + (hi - lo) * min(max(fraction, 0.0), 1.0)
            cumulative += n
        return self.max

    def merge(self, other: "Histogram") -> None:
        if self.bounds != other.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for index, n in enumerate(other.bucket_counts):
            self.bucket_counts[index] += n
        self.count += other.count
        self.sum += other.sum
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "bucket_counts": list(self.bucket_counts),
            "count": self.count,
            "sum": self.sum,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, state: dict) -> "Histogram":
        out = cls(bounds=tuple(state["bounds"]))
        out.bucket_counts = [int(n) for n in state["bucket_counts"]]
        out.count = int(state["count"])
        out.sum = float(state["sum"])
        out.min = float("inf") if state.get("min") is None else float(state["min"])
        out.max = float("-inf") if state.get("max") is None else float(state["max"])
        return out


class MetricsRegistry:
    """All instruments of one process, keyed by (name, sorted labels).

    The registry is the unit of transport: picklable (the lock is
    recreated), mergeable (exact totals across processes) and JSON
    serialisable.  Instruments are created on first use; a name is bound
    to one instrument kind for the registry's lifetime.
    """

    def __init__(self) -> None:
        self._counters: dict[tuple, Counter] = {}
        self._gauges: dict[tuple, Gauge] = {}
        self._histograms: dict[tuple, Histogram] = {}
        self._lock = threading.Lock()

    # -- instrument access ------------------------------------------------ #
    def counter(self, name: str, **labels) -> Counter:
        key = metric_key(name, labels)
        with self._lock:
            return self._counters.setdefault(key, Counter())

    def gauge(self, name: str, **labels) -> Gauge:
        key = metric_key(name, labels)
        with self._lock:
            return self._gauges.setdefault(key, Gauge())

    def histogram(
        self, name: str, *, buckets: tuple[float, ...] | None = None, **labels
    ) -> Histogram:
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram(
                    bounds=buckets or DEFAULT_TIME_BUCKETS
                )
            return hist

    # -- mutation (the instrumented hot paths call these) ----------------- #
    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._counters.setdefault(key, Counter()).inc(amount)

    def set_gauge(self, name: str, value: float, **labels) -> None:
        key = metric_key(name, labels)
        with self._lock:
            self._gauges.setdefault(key, Gauge()).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        key = metric_key(name, labels)
        with self._lock:
            hist = self._histograms.get(key)
            if hist is None:
                hist = self._histograms[key] = Histogram()
            hist.observe(value)

    # -- iteration / introspection ---------------------------------------- #
    def counters(self) -> Iterator[tuple[tuple, Counter]]:
        return iter(sorted(self._counters.items()))

    def gauges(self) -> Iterator[tuple[tuple, Gauge]]:
        return iter(sorted(self._gauges.items()))

    def histograms(self) -> Iterator[tuple[tuple, Histogram]]:
        return iter(sorted(self._histograms.items()))

    def __len__(self) -> int:
        return len(self._counters) + len(self._gauges) + len(self._histograms)

    def totals(self) -> dict[str, float]:
        """Scheduling-independent totals: counter values, gauge values and
        histogram *counts* (never sums — those are wall-clock and differ
        run to run), keyed by ``name{label=value,...}``.  This is what the
        backend-parity tests compare bit for bit."""
        out: dict[str, float] = {}
        with self._lock:
            for key, counter in self._counters.items():
                out[_key_str(key)] = counter.value
            for key, gauge in self._gauges.items():
                out[_key_str(key)] = gauge.value
            for key, hist in self._histograms.items():
                out[_key_str(key) + ".count"] = float(hist.count)
        return out

    # -- transport -------------------------------------------------------- #
    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry's instruments into this one (exact totals)."""
        with self._lock:
            for key, counter in other._counters.items():
                self._counters.setdefault(key, Counter()).merge(counter)
            for key, gauge in other._gauges.items():
                self._gauges.setdefault(key, Gauge()).merge(gauge)
            for key, hist in other._histograms.items():
                mine = self._histograms.get(key)
                if mine is None:
                    self._histograms[key] = Histogram.from_dict(hist.to_dict())
                else:
                    mine.merge(hist)
        return self

    def to_dict(self) -> dict:
        """Plain-container serialisation (JSON-safe; see the CLI surface)."""
        def unpack(key: tuple) -> dict:
            name, labels = key
            return {"name": name, "labels": dict(labels)}

        with self._lock:
            return {
                "counters": [
                    {**unpack(k), **c.to_dict()} for k, c in sorted(self._counters.items())
                ],
                "gauges": [
                    {**unpack(k), **g.to_dict()} for k, g in sorted(self._gauges.items())
                ],
                "histograms": [
                    {**unpack(k), **h.to_dict()}
                    for k, h in sorted(self._histograms.items())
                ],
            }

    @classmethod
    def from_dict(cls, state: dict) -> "MetricsRegistry":
        out = cls()
        for entry in state.get("counters", ()):
            key = metric_key(entry["name"], entry["labels"])
            out._counters[key] = Counter.from_dict(entry)
        for entry in state.get("gauges", ()):
            key = metric_key(entry["name"], entry["labels"])
            out._gauges[key] = Gauge.from_dict(entry)
        for entry in state.get("histograms", ()):
            key = metric_key(entry["name"], entry["labels"])
            out._histograms[key] = Histogram.from_dict(entry)
        return out

    # -- pickling (locks cannot travel) ----------------------------------- #
    def __getstate__(self) -> dict:
        with self._lock:
            return {
                "_counters": self._counters,
                "_gauges": self._gauges,
                "_histograms": self._histograms,
            }

    def __setstate__(self, state: dict) -> None:
        self._counters = state["_counters"]
        self._gauges = state["_gauges"]
        self._histograms = state["_histograms"]
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<MetricsRegistry counters={len(self._counters)} "
            f"gauges={len(self._gauges)} histograms={len(self._histograms)}>"
        )

"""Span-based tracing for the ingest path.

A *span* is one timed region of the pipeline — ``service.ingest_and_alert``
wrapping ``executor.task`` wrapping ``pipeline.ingest`` wrapping
``core.partial_fit`` — identified by a process-unique id and linked to its
parent through a per-thread span stack.  On exit every span is

* emitted to the tracer's sinks as one JSON-safe event dict (the file sink
  writes JSON lines, mirroring :class:`repro.service.alerts.JsonLinesSink`;
  the ring sink retains the most recent events in memory, mirroring
  :class:`repro.service.alerts.RingBufferSink`), and
* observed into the shared :class:`~repro.obs.metrics.MetricsRegistry` as
  a ``span.<name>`` histogram, which is what the report's p50/p95/p99
  table and the process-backend round trip are built on (events stay
  local; histograms merge home).

Timestamps come from :data:`repro.util.timer.now` — the package-wide
monotonic clock — so trace events and benchmark timings are directly
comparable within a process.  Across processes the clocks have arbitrary
epochs; each tracer therefore carries a ``clock_offset`` (measured by the
executor's calibration handshake, see
:meth:`repro.util.parallel.ProcessShardExecutor.calibrate_clocks`) that is
added to ``start``/``end`` at emission time, putting every process's
events on the coordinator's timeline.  Causality crosses the process
boundary through :class:`TraceContext`: the coordinator captures
``(trace_id, current span id)`` at task-submit time, the worker adopts it
(:meth:`Tracer.adopt`) so its ``executor.task`` span parents under the
coordinator's round span, and span ids are made globally unique by basing
each process's counter on its pid.
"""

from __future__ import annotations

import itertools
import json
import os
import threading
from typing import Iterable, NamedTuple

from ..util.growbuf import RingBuffer
from ..util.timer import now

__all__ = [
    "Span",
    "TraceContext",
    "TraceSink",
    "RingBufferTraceSink",
    "JsonLinesTraceSink",
    "Tracer",
    "new_trace_id",
    "TRACE_SCHEMA_VERSION",
    "SUPPORTED_TRACE_SCHEMAS",
]

#: Version stamped into the header line of JSON-lines trace files.  Bump it
#: when the event schema changes shape; loaders refuse versions they do not
#: know (see :func:`repro.obs.export.read_trace`), the same forward-compat
#: contract the checkpoint manifests use.
TRACE_SCHEMA_VERSION = 1

#: Versions :func:`repro.obs.export.read_trace` accepts.
SUPPORTED_TRACE_SCHEMAS = (1,)


def new_trace_id() -> str:
    """A fresh 128-bit-ish random trace id (hex, no dashes)."""
    return os.urandom(8).hex()


class TraceContext(NamedTuple):
    """The causal context shipped with cross-process work.

    ``trace_id`` names the whole session's trace; ``span_id`` is the span
    open on the submitting thread at capture time (the remote span's
    parent).  It pickles as a plain tuple, so it rides inside executor
    task messages at negligible cost.
    """

    trace_id: str | None
    span_id: int | None


class TraceSink:
    """Receives one event dict per completed span."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (file handles); idempotent."""


class RingBufferTraceSink(TraceSink):
    """Retains the most recent ``capacity`` span events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._buffer = RingBuffer(capacity)

    def emit(self, event: dict) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> list[dict]:
        """Retained events, oldest first."""
        return self._buffer.items()

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonLinesTraceSink(TraceSink):
    """Appends one JSON object per span event to a text file.

    A fresh (empty) file gets a header line first —
    ``{"kind": "trace_header", "schema_version": ..., "trace_id": ...}`` —
    so loaders can refuse trace files written by an incompatible version
    before mis-parsing a single event.
    """

    def __init__(self, path: str, *, trace_id: str | None = None) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a", encoding="utf-8")
        if self._handle.tell() == 0:
            header = {
                "kind": "trace_header",
                "schema_version": TRACE_SCHEMA_VERSION,
            }
            if trace_id is not None:
                header["trace_id"] = trace_id
            self._handle.write(json.dumps(header, sort_keys=True) + "\n")
            self._handle.flush()

    def emit(self, event: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Span:
    """Context manager for one timed region.

    Entering pushes the span onto the owning tracer's per-thread stack (so
    nested spans link ``parent_id``); exiting pops it, emits the event and
    observes the duration histogram.  Spans are single-use.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start", "end", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.start: float | None = None
        self.end: float | None = None

    @property
    def duration(self) -> float | None:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self, error=exc_type is not None)


class _RemoteParent:
    """Stack entry standing in for a span owned by another process.

    Pushed by :meth:`Tracer.adopt`: it carries only the remote parent's
    ``span_id``, which is all ``_push`` reads when linking children.
    """

    __slots__ = ("span_id",)

    def __init__(self, span_id: int | None) -> None:
        self.span_id = span_id


class _Adoption:
    """Context manager scoping an adopted remote parent on the stack."""

    __slots__ = ("_tracer", "_holder")

    def __init__(self, tracer: "Tracer", span_id: int | None) -> None:
        self._tracer = tracer
        self._holder = _RemoteParent(span_id)

    def __enter__(self) -> "_Adoption":
        self._tracer._stack().append(self._holder)
        return self

    def __exit__(self, *exc_info) -> None:
        stack = self._tracer._stack()
        if stack and stack[-1] is self._holder:
            stack.pop()
        elif self._holder in stack:  # pragma: no cover - unbalanced exit
            stack.remove(self._holder)


class _NoopAdoption:
    """Shared inert adoption for a missing/empty context."""

    __slots__ = ()

    def __enter__(self) -> "_NoopAdoption":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_ADOPTION = _NoopAdoption()


class Tracer:
    """Builds spans, links parents per thread, fans events out to sinks.

    Span ids are globally unique across the fleet: each process counts
    from ``pid << 32``, so merged traces never collide.  The per-thread
    stacks mean worker-thread spans are recorded concurrently without
    interleaving parents across threads; process-backend workers run their
    own tracer whose ring-buffered events are drained home by the monitors
    (``span.*`` histograms in the registry merge home independently, see
    :mod:`repro.obs.metrics`).

    ``trace_id`` stamps every event; ``clock_offset`` (seconds to add to
    this process's monotonic clock to land on the coordinator's) is
    applied to ``start``/``end`` at emission time only — metric durations
    are never shifted.
    """

    def __init__(
        self,
        metrics=None,
        sinks: Iterable[TraceSink] = (),
        *,
        trace_id: str | None = None,
        clock_offset: float = 0.0,
    ) -> None:
        self.metrics = metrics
        self.sinks: list[TraceSink] = list(sinks)
        self.trace_id = trace_id
        self.clock_offset = float(clock_offset)
        self._pid = os.getpid()
        self._ids = itertools.count((self._pid << 32) + 1)
        self._local = threading.local()
        self._emit_lock = threading.Lock()

    # -- span stack ------------------------------------------------------- #
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def current_context(self) -> TraceContext:
        """The ``(trace_id, current span id)`` pair to ship with a task."""
        return TraceContext(self.trace_id, self.current_span_id())

    def adopt(self, ctx) -> "_Adoption | _NoopAdoption":
        """Scope spans on this thread under a remote parent.

        ``ctx`` is a :class:`TraceContext` (or the plain tuple it pickles
        to) captured by the submitting process.  Within the returned
        context manager, new spans on this thread parent under
        ``ctx.span_id`` — the cross-process half of the causal chain.
        A ``None`` context (or one with no open span) is a no-op.
        """
        if ctx is None:
            return _NOOP_ADOPTION
        trace_id, span_id = ctx
        if span_id is None:
            return _NOOP_ADOPTION
        if trace_id is not None and self.trace_id is None:
            self.trace_id = trace_id
        return _Adoption(self, span_id)

    def span(self, name: str, **attrs) -> Span:
        """A new (not yet entered) span; use as a context manager."""
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        span.start = now()

    def _pop(self, span: Span, *, error: bool = False) -> None:
        span.end = now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit safety net
            stack.remove(span)
        self._finish(span.name, span.span_id, span.parent_id, span.start,
                     span.end, span.attrs, error=error)

    # -- pre-timed events -------------------------------------------------- #
    def record(self, name: str, seconds: float, **attrs) -> None:
        """Record an already-measured leaf region as a span event.

        Used by hot paths that time a block with two clock reads instead of
        re-indenting it under a ``with``: the event's parent is whatever
        span is open on this thread, and ``start`` is back-dated so the
        trace timeline stays consistent.  ``record`` cannot parent other
        spans (it is never on the stack) — use a real :meth:`span` for
        regions with children.
        """
        end = now()
        self._finish(name, next(self._ids), self.current_span_id(),
                     end - float(seconds), end, attrs, error=False)

    # -- completion -------------------------------------------------------- #
    def _finish(
        self,
        name: str,
        span_id: int | None,
        parent_id: int | None,
        start: float | None,
        end: float,
        attrs: dict,
        *,
        error: bool,
    ) -> None:
        duration = end - start if start is not None else 0.0
        if self.metrics is not None:
            self.metrics.observe(f"span.{name}", duration)
        if not self.sinks:
            return
        offset = self.clock_offset
        event = {
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "start": start + offset if start is not None else None,
            "end": end + offset,
            "duration": duration,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "attrs": {str(k): _json_safe(v) for k, v in attrs.items()},
        }
        if self.trace_id is not None:
            event["trace_id"] = self.trace_id
        if error:
            event["error"] = True
        with self._emit_lock:
            for sink in self.sinks:
                sink.emit(event)

    def ingest_events(self, events: Iterable[dict]) -> None:
        """Re-emit already-finished events (drained from a worker tracer).

        The events arrive with calibrated timestamps and globally-unique
        span ids, so they drop straight into this tracer's sinks — the
        coordinator side of merging one causal trace per session.
        """
        if not self.sinks:
            return
        with self._emit_lock:
            for event in events:
                for sink in self.sinks:
                    sink.emit(event)

    def close_sinks(self) -> None:
        for sink in self.sinks:
            sink.close()


def _json_safe(value) -> object:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return value.item()  # NumPy scalars
    except AttributeError:
        return str(value)

"""Span-based tracing for the ingest path.

A *span* is one timed region of the pipeline — ``service.ingest_and_alert``
wrapping ``executor.task`` wrapping ``pipeline.ingest`` wrapping
``core.partial_fit`` — identified by a process-unique id and linked to its
parent through a per-thread span stack.  On exit every span is

* emitted to the tracer's sinks as one JSON-safe event dict (the file sink
  writes JSON lines, mirroring :class:`repro.service.alerts.JsonLinesSink`;
  the ring sink retains the most recent events in memory, mirroring
  :class:`repro.service.alerts.RingBufferSink`), and
* observed into the shared :class:`~repro.obs.metrics.MetricsRegistry` as
  a ``span.<name>`` histogram, which is what the report's p50/p95/p99
  table and the process-backend round trip are built on (events stay
  local; histograms merge home).

Timestamps come from :data:`repro.util.timer.now` — the package-wide
monotonic clock — so trace events and benchmark timings are directly
comparable within a process.
"""

from __future__ import annotations

import itertools
import json
import threading
from typing import Iterable

from ..util.growbuf import RingBuffer
from ..util.timer import now

__all__ = [
    "Span",
    "TraceSink",
    "RingBufferTraceSink",
    "JsonLinesTraceSink",
    "Tracer",
]


class TraceSink:
    """Receives one event dict per completed span."""

    def emit(self, event: dict) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources (file handles); idempotent."""


class RingBufferTraceSink(TraceSink):
    """Retains the most recent ``capacity`` span events in memory."""

    def __init__(self, capacity: int = 4096) -> None:
        self._buffer = RingBuffer(capacity)

    def emit(self, event: dict) -> None:
        self._buffer.append(event)

    @property
    def events(self) -> list[dict]:
        """Retained events, oldest first."""
        return self._buffer.items()

    def __len__(self) -> int:
        return len(self._buffer)

    def clear(self) -> None:
        self._buffer.clear()


class JsonLinesTraceSink(TraceSink):
    """Appends one JSON object per span event to a text file."""

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle = open(self.path, "a", encoding="utf-8")

    def emit(self, event: dict) -> None:
        if self._handle is None:
            return
        self._handle.write(json.dumps(event, sort_keys=True) + "\n")
        self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


class Span:
    """Context manager for one timed region.

    Entering pushes the span onto the owning tracer's per-thread stack (so
    nested spans link ``parent_id``); exiting pops it, emits the event and
    observes the duration histogram.  Spans are single-use.
    """

    __slots__ = ("name", "attrs", "span_id", "parent_id", "start", "end", "_tracer")

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id: int | None = None
        self.parent_id: int | None = None
        self.start: float | None = None
        self.end: float | None = None

    @property
    def duration(self) -> float | None:
        if self.start is None or self.end is None:
            return None
        return self.end - self.start

    def __enter__(self) -> "Span":
        self._tracer._push(self)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._pop(self, error=exc_type is not None)


class Tracer:
    """Builds spans, links parents per thread, fans events out to sinks.

    Span ids increase monotonically within a process.  The per-thread
    stacks mean worker-thread spans are recorded concurrently without
    interleaving parents across threads; process-backend workers run their
    own tracer (events are not shipped home — only the ``span.*``
    histograms in the registry are, see :mod:`repro.obs.metrics`).
    """

    def __init__(
        self,
        metrics=None,
        sinks: Iterable[TraceSink] = (),
    ) -> None:
        self.metrics = metrics
        self.sinks: list[TraceSink] = list(sinks)
        self._ids = itertools.count(1)
        self._local = threading.local()
        self._emit_lock = threading.Lock()

    # -- span stack ------------------------------------------------------- #
    def _stack(self) -> list:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = self._local.stack = []
        return stack

    def current_span_id(self) -> int | None:
        stack = self._stack()
        return stack[-1].span_id if stack else None

    def span(self, name: str, **attrs) -> Span:
        """A new (not yet entered) span; use as a context manager."""
        return Span(self, name, attrs)

    def _push(self, span: Span) -> None:
        stack = self._stack()
        span.span_id = next(self._ids)
        span.parent_id = stack[-1].span_id if stack else None
        stack.append(span)
        span.start = now()

    def _pop(self, span: Span, *, error: bool = False) -> None:
        span.end = now()
        stack = self._stack()
        if stack and stack[-1] is span:
            stack.pop()
        elif span in stack:  # pragma: no cover - unbalanced exit safety net
            stack.remove(span)
        self._finish(span.name, span.span_id, span.parent_id, span.start,
                     span.end, span.attrs, error=error)

    # -- pre-timed events -------------------------------------------------- #
    def record(self, name: str, seconds: float, **attrs) -> None:
        """Record an already-measured leaf region as a span event.

        Used by hot paths that time a block with two clock reads instead of
        re-indenting it under a ``with``: the event's parent is whatever
        span is open on this thread, and ``start`` is back-dated so the
        trace timeline stays consistent.  ``record`` cannot parent other
        spans (it is never on the stack) — use a real :meth:`span` for
        regions with children.
        """
        end = now()
        self._finish(name, next(self._ids), self.current_span_id(),
                     end - float(seconds), end, attrs, error=False)

    # -- completion -------------------------------------------------------- #
    def _finish(
        self,
        name: str,
        span_id: int | None,
        parent_id: int | None,
        start: float | None,
        end: float,
        attrs: dict,
        *,
        error: bool,
    ) -> None:
        duration = end - start if start is not None else 0.0
        if self.metrics is not None:
            self.metrics.observe(f"span.{name}", duration)
        if not self.sinks:
            return
        event = {
            "name": name,
            "span_id": span_id,
            "parent_id": parent_id,
            "start": start,
            "end": end,
            "duration": duration,
            "attrs": {str(k): _json_safe(v) for k, v in attrs.items()},
        }
        if error:
            event["error"] = True
        with self._emit_lock:
            for sink in self.sinks:
                sink.emit(event)

    def close_sinks(self) -> None:
        for sink in self.sinks:
            sink.close()


def _json_safe(value) -> object:
    """Coerce an attribute value to something ``json.dumps`` accepts."""
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    try:
        return value.item()  # NumPy scalars
    except AttributeError:
        return str(value)

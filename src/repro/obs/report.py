"""Human-readable summaries of a :class:`~repro.obs.metrics.MetricsRegistry`.

Renders the observability session the way the paper's performance sections
read — per-stage latency percentiles and throughput — through the
:class:`repro.viz.textreport.TextReport` machinery, so the same content is
available fixed-width for terminals (:func:`render_text`) and as Markdown
for CI job summaries (:func:`render_markdown`).  :func:`metrics_json` is
the serialisation behind the CLI's ``--metrics-out``.
"""

from __future__ import annotations

import json
import os

from ..util.timer import TimingTable
from ..viz.textreport import TextReport
from .health import _status as _health_status
from .metrics import MetricsRegistry

__all__ = [
    "summarize",
    "build_report",
    "render_text",
    "render_markdown",
    "metrics_json",
    "load_metrics_json",
    "MetricsFormatError",
    "METRICS_SCHEMA_VERSION",
    "SUPPORTED_METRICS_SCHEMAS",
]

#: Histograms produced by the tracer are namespaced under this prefix.
SPAN_PREFIX = "span."

#: Version stamped into ``--metrics-out`` JSON payloads.  Bump when the
#: payload shape changes; :func:`load_metrics_json` refuses versions it
#: does not know — the forward-compat contract checkpoints already use.
METRICS_SCHEMA_VERSION = 1

#: Versions :func:`load_metrics_json` accepts.
SUPPORTED_METRICS_SCHEMAS = (1,)


class MetricsFormatError(ValueError):
    """A metrics payload could not be loaded (bad shape or unknown version)."""


def _label_str(labels: tuple) -> str:
    return ",".join(f"{k}={v}" for k, v in labels)


def summarize(registry: MetricsRegistry) -> dict:
    """Structured digest: span percentiles, hotspots, throughput, alerts.

    Returns a JSON-safe dict with keys ``spans`` (per-span count/total/
    mean/p50/p95/p99/max, sorted by total time descending), ``hotspots``
    (top spans by share of the busiest span's total), ``throughput``
    (overall and most-recent rows/sec where the service counters exist),
    ``alerts_by_rule`` and ``ingest_path`` (raw-speed mechanics: batched
    shard-kernel grouping rate, shared-memory transport placement, and
    the deferred deep-level refresh backlog, present only when those
    instruments fired), ``resilience`` (supervisor activity: task
    failures by kind, retries, worker respawns, quarantine state and
    recovery-snapshot cost, present only when a supervised monitor ran)
    and ``checkpoint`` (persistence cost: saves by format/mode, bytes
    written vs referenced from earlier entries, shards skipped as
    unchanged, ingest-side stall percentiles and writer backpressure,
    present only when checkpoints were saved).
    """
    spans = []
    for (name, labels), hist in registry.histograms():
        if not name.startswith(SPAN_PREFIX) or hist.count == 0:
            continue
        label = name[len(SPAN_PREFIX):]
        if labels:
            label += f"{{{_label_str(labels)}}}"
        spans.append(
            {
                "span": label,
                "count": hist.count,
                "total": hist.sum,
                "mean": hist.mean,
                "p50": hist.quantile(0.50),
                "p95": hist.quantile(0.95),
                "p99": hist.quantile(0.99),
                "max": hist.max,
            }
        )
    spans.sort(key=lambda s: s["total"], reverse=True)

    busiest = spans[0]["total"] if spans else 0.0
    hotspots = [
        {
            "span": s["span"],
            "total": s["total"],
            "share_of_busiest": s["total"] / busiest if busiest else 0.0,
        }
        for s in spans[:5]
    ]

    counters = {}
    for key, counter in registry.counters():
        name, labels = key
        counters[name + (f"{{{_label_str(labels)}}}" if labels else "")] = counter.value
    gauges = {}
    for key, gauge in registry.gauges():
        name, labels = key
        gauges[name + (f"{{{_label_str(labels)}}}" if labels else "")] = gauge.value

    throughput: dict[str, float] = {}
    rows = counters.get("service.rows")
    for (name, labels), hist in registry.histograms():
        if name == "service.chunk.seconds" and not labels and hist.sum > 0 and rows:
            throughput["rows_per_sec_overall"] = rows / hist.sum
            throughput["chunks"] = float(hist.count)
    if "service.rows_per_sec" in gauges:
        throughput["rows_per_sec_last_chunk"] = gauges["service.rows_per_sec"]

    alerts_by_rule = {}
    for key, counter in registry.counters():
        name, labels = key
        if name == "alerts.fired":
            rule = dict(labels).get("rule", "<unlabelled>")
            alerts_by_rule[rule] = counter.value

    ingest_path: dict[str, float] = {}
    batch_shards = counters.get("core.batch.shards", 0.0)
    if batch_shards:
        grouped = counters.get("core.batch.grouped", 0.0)
        ingest_path["batch_rounds"] = counters.get("core.batch.rounds", 0.0)
        ingest_path["batch_shards"] = batch_shards
        ingest_path["batch_grouped"] = grouped
        ingest_path["batch_fallback"] = counters.get("core.batch.fallback", 0.0)
        ingest_path["batch_grouped_frac"] = grouped / batch_shards
    placed = counters.get("executor.shm.placed", 0.0)
    shm_fallback = counters.get("executor.shm.fallback", 0.0)
    if placed or shm_fallback or counters.get("executor.shm.unavailable"):
        ingest_path["shm_placed"] = placed
        ingest_path["shm_fallback"] = shm_fallback
        ingest_path["shm_unavailable"] = counters.get("executor.shm.unavailable", 0.0)
        if "executor.shm.slab_occupancy" in gauges:
            ingest_path["shm_slab_occupancy"] = gauges["executor.shm.slab_occupancy"]
        if "executor.shm.slabs" in gauges:
            ingest_path["shm_slabs"] = gauges["executor.shm.slabs"]
    scheduled = counters.get("service.deep_refresh.scheduled", 0.0)
    if scheduled or "service.deep.queue_depth" in gauges:
        ingest_path["deep_refreshes_scheduled"] = scheduled
        ingest_path["deep_queue_depth"] = gauges.get("service.deep.queue_depth", 0.0)
        ingest_path["deep_stale_snapshots"] = gauges.get(
            "service.deep.stale_snapshots", 0.0
        )

    # Resilience digest: sums over the supervisor's labelled counters.
    # Present only when supervision actually did something (a fault-free
    # supervised run still records recovery snapshots, which is worth
    # surfacing — it is the cost side of the crash-recovery guarantee).
    failures_by_kind: dict[str, float] = {}
    retries = 0.0
    respawns = 0.0
    lost_registries = 0.0
    for key, counter in registry.counters():
        name, labels = key
        if name == "service.resilience.failures":
            kind = dict(labels).get("kind", "<unlabelled>")
            failures_by_kind[kind] = failures_by_kind.get(kind, 0.0) + counter.value
        elif name == "service.resilience.retries":
            retries += counter.value
        elif name == "executor.worker.respawned":
            respawns += counter.value
        elif name == "obs.metrics.lost_registries":
            lost_registries += counter.value
    resilience: dict = {}
    if (
        failures_by_kind
        or retries
        or respawns
        or lost_registries
        or counters.get("service.resilience.snapshots")
    ):
        resilience = {
            "failures": sum(failures_by_kind.values()),
            "failures_by_kind": dict(sorted(failures_by_kind.items())),
            "retries": retries,
            "worker_respawns": respawns,
            "quarantined": counters.get("service.resilience.quarantined", 0.0),
            "quarantined_shards": gauges.get(
                "service.resilience.quarantined_shards", 0.0
            ),
            "rehydrated_shards": counters.get(
                "service.resilience.rehydrated_shards", 0.0
            ),
            "replayed_chunks": counters.get(
                "service.resilience.replayed_chunks", 0.0
            ),
            "snapshots": counters.get("service.resilience.snapshots", 0.0),
            "snapshots_skipped": counters.get(
                "service.resilience.snapshots_skipped", 0.0
            ),
            "lost_registries": lost_registries,
        }

    # Checkpoint digest: the persistence cost model of the delta/async
    # pipeline — how many saves ran in which format/mode, how many bytes
    # actually hit disk vs rode along as references to earlier entries,
    # and how long the ingest loop stalled on writer handoff.
    checkpoint: dict = {}
    saves_by_label: dict[str, float] = {}
    saves_total = 0.0
    for key, counter in registry.counters():
        name, labels = key
        if name in ("checkpoint.saves", "checkpoint.federated_saves"):
            label = _label_str(labels) or "<unlabelled>"
            saves_by_label[label] = saves_by_label.get(label, 0.0) + counter.value
            saves_total += counter.value
    if saves_total:
        written = counters.get("checkpoint.bytes_written", 0.0)
        referenced = counters.get("checkpoint.bytes_referenced", 0.0)
        checkpoint = {
            "saves": saves_total,
            "saves_by_label": dict(sorted(saves_by_label.items())),
            "bytes_written": written,
            "bytes_referenced": referenced,
            "written_frac": (
                written / (written + referenced) if written + referenced else 1.0
            ),
            "shards_reused": counters.get("checkpoint.shards_reused", 0.0),
            "blocks_written": counters.get("checkpoint.blocks_written", 0.0),
            "blocks_referenced": counters.get("checkpoint.blocks_referenced", 0.0),
            "blocks_swept": counters.get("checkpoint.blocks_swept", 0.0),
            "writer_saturated": counters.get("checkpoint.writer.saturated", 0.0),
            "writer_errors": counters.get("checkpoint.writer.errors", 0.0),
            "writer_queue_depth": gauges.get("checkpoint.writer.queue_depth", 0.0),
        }
        for (name, labels), hist in registry.histograms():
            if name == "checkpoint.stall_seconds" and not labels and hist.count:
                checkpoint["stall_p50"] = hist.quantile(0.50)
                checkpoint["stall_p95"] = hist.quantile(0.95)
                checkpoint["stall_total"] = hist.sum

    # Fleet health gauges published by the monitors each chunk/round.
    health: dict[str, dict[str, float]] = {}
    for key, gauge in registry.gauges():
        name, labels = key
        if name == "service.health.score":
            entity = dict(labels).get("shard", "<fleet>")
            health.setdefault("shards", {})[entity] = gauge.value
        elif name == "federation.health.score":
            entity = dict(labels).get("machine", "<federation>")
            health.setdefault("machines", {})[entity] = gauge.value

    return {
        "spans": spans,
        "hotspots": hotspots,
        "throughput": throughput,
        "alerts_by_rule": alerts_by_rule,
        "ingest_path": ingest_path,
        "resilience": resilience,
        "checkpoint": checkpoint,
        "health": health,
        "counters": counters,
        "gauges": gauges,
    }


def build_report(
    registry: MetricsRegistry, *, title: str = "observability report"
) -> TextReport:
    """Assemble the digest into a renderable :class:`TextReport`."""
    digest = summarize(registry)
    report = TextReport(title=title)

    section = report.section("span latencies (seconds)")
    if digest["spans"]:
        table = TimingTable(
            columns=["span", "count", "total", "mean", "p50", "p95", "p99", "max"]
        )
        for s in digest["spans"]:
            table.add_row(
                s["span"], s["count"], s["total"], s["mean"],
                s["p50"], s["p95"], s["p99"], s["max"],
            )
        section.add_table(table)
    else:
        section.add_line("(no spans recorded — was the provider enabled?)")

    if digest["hotspots"]:
        section = report.section("hotspots")
        for rank, spot in enumerate(digest["hotspots"], start=1):
            section.add_line(
                f"{rank}. {spot['span']} — total "
                f"{report.float_format.format(spot['total'])} s "
                f"({spot['share_of_busiest']:.0%} of busiest)"
            )

    if digest["throughput"] or digest["alerts_by_rule"]:
        section = report.section("throughput and alerts")
        for key, value in digest["throughput"].items():
            section.add_line(f"{key}: {report.float_format.format(value)}")
        for rule, count in sorted(digest["alerts_by_rule"].items()):
            section.add_line(f"alerts fired [{rule}]: {count:.0f}")

    if digest["ingest_path"]:
        section = report.section("raw-speed ingest path")
        path = digest["ingest_path"]
        if "batch_shards" in path:
            section.add_line(
                f"batched shard kernels: {path['batch_grouped']:.0f}/"
                f"{path['batch_shards']:.0f} shard updates stacked "
                f"({path['batch_grouped_frac']:.0%}) over "
                f"{path['batch_rounds']:.0f} rounds, "
                f"{path['batch_fallback']:.0f} per-shard fallbacks"
            )
        if "shm_placed" in path:
            section.add_line(
                f"shared-memory transport: {path['shm_placed']:.0f} chunks "
                f"placed, {path['shm_fallback']:.0f} pickle fallbacks, "
                f"{path.get('shm_slabs', 0.0):.0f} slabs at "
                f"{path.get('shm_slab_occupancy', 0.0):.0%} occupancy"
            )
        if path.get("shm_unavailable"):
            section.add_line(
                "shared memory unavailable — process transport fell back to pickle"
            )
        if "deep_refreshes_scheduled" in path:
            section.add_line(
                f"deferred deep levels: {path['deep_refreshes_scheduled']:.0f} "
                f"background refreshes scheduled; backlog "
                f"{path['deep_queue_depth']:.0f} chunk(s), staleness "
                f"{path['deep_stale_snapshots']:.0f} snapshot(s)"
            )

    if digest["resilience"]:
        section = report.section("resilience")
        res = digest["resilience"]
        kinds = ", ".join(
            f"{kind}={count:.0f}"
            for kind, count in res["failures_by_kind"].items()
        )
        section.add_line(
            f"task failures: {res['failures']:.0f}"
            + (f" ({kinds})" if kinds else "")
            + f"; retries: {res['retries']:.0f}"
        )
        section.add_line(
            f"worker respawns: {res['worker_respawns']:.0f}; shards "
            f"rehydrated: {res['rehydrated_shards']:.0f} "
            f"({res['replayed_chunks']:.0f} chunk(s) replayed from the "
            f"recovery tail)"
        )
        section.add_line(
            f"quarantined: {res['quarantined']:.0f} event(s), "
            f"{res['quarantined_shards']:.0f} shard(s) currently out; "
            f"recovery snapshots recorded: {res['snapshots']:.0f} "
            f"(skipped as unchanged: {res.get('snapshots_skipped', 0.0):.0f})"
        )
        if res.get("lost_registries"):
            section.add_line(
                f"metric registries lost to force-terminated workers: "
                f"{res['lost_registries']:.0f} (span/counter totals "
                f"undercount the lost workers' final interval)"
            )

    if digest["checkpoint"]:
        section = report.section("checkpointing")
        ckpt = digest["checkpoint"]
        labels = ", ".join(
            f"{label}: {count:.0f}"
            for label, count in ckpt["saves_by_label"].items()
        )
        section.add_line(
            f"saves: {ckpt['saves']:.0f}" + (f" ({labels})" if labels else "")
        )
        section.add_line(
            f"bytes written: {ckpt['bytes_written']:.3g}; referenced from "
            f"earlier entries: {ckpt['bytes_referenced']:.3g} "
            f"(written fraction {ckpt['written_frac']:.0%}); shards reused "
            f"unchanged: {ckpt['shards_reused']:.0f}"
        )
        if "stall_p50" in ckpt:
            section.add_line(
                f"ingest-side stall: p50 "
                f"{report.float_format.format(ckpt['stall_p50'])} s, p95 "
                f"{report.float_format.format(ckpt['stall_p95'])} s, total "
                f"{report.float_format.format(ckpt['stall_total'])} s"
            )
        if ckpt["writer_saturated"] or ckpt["writer_errors"]:
            section.add_line(
                f"async writer backpressure: {ckpt['writer_saturated']:.0f} "
                f"saturated submit(s), {ckpt['writer_errors']:.0f} deferred "
                f"error(s)"
            )

    if digest["health"]:
        section = report.section("fleet health")
        for group, kind in (("machines", "machine"), ("shards", "shard")):
            for entity, score in sorted(digest["health"].get(group, {}).items()):
                section.add_kv(
                    f"{kind} {entity}",
                    f"{score:.2f} ({_health_status(score)})",
                )

    if digest["counters"]:
        section = report.section("counters")
        table = TimingTable(columns=["counter", "value"])
        for name, value in digest["counters"].items():
            table.add_row(name, value)
        section.add_table(table)

    if digest["gauges"]:
        section = report.section("gauges")
        table = TimingTable(columns=["gauge", "value"])
        for name, value in digest["gauges"].items():
            table.add_row(name, value)
        section.add_table(table)

    return report


def render_text(registry: MetricsRegistry, **kwargs) -> str:
    """Fixed-width text summary (p50/p95/p99 per span, hotspots, totals)."""
    return build_report(registry, **kwargs).render()


def render_markdown(registry: MetricsRegistry, **kwargs) -> str:
    """The same summary as GitHub-flavoured Markdown."""
    return build_report(registry, **kwargs).render_markdown()


def metrics_json(registry: MetricsRegistry) -> dict:
    """JSON payload for ``--metrics-out``: raw instruments plus the digest."""
    payload = registry.to_dict()
    payload["schema_version"] = METRICS_SCHEMA_VERSION
    digest = summarize(registry)
    payload["derived"] = {
        "throughput": digest["throughput"],
        "alerts_by_rule": digest["alerts_by_rule"],
        "ingest_path": digest["ingest_path"],
        "resilience": digest["resilience"],
        "checkpoint": digest["checkpoint"],
        "health": digest["health"],
        "spans": digest["spans"],
        "hotspots": digest["hotspots"],
    }
    return payload


def load_metrics_json(source) -> MetricsRegistry:
    """Load a ``--metrics-out`` payload back into a registry.

    ``source`` is a path or an already-parsed dict.  Refuses payloads
    whose ``schema_version`` is missing or outside
    :data:`SUPPORTED_METRICS_SCHEMAS` — mirroring how checkpoint
    manifests refuse versions they do not understand rather than
    mis-parsing them.
    """
    if isinstance(source, (str, os.PathLike)):
        path = str(source)
        with open(path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except json.JSONDecodeError as exc:
                raise MetricsFormatError(
                    f"{path}: not valid JSON: {exc}"
                ) from exc
    else:
        path = "<payload>"
        payload = source
    if not isinstance(payload, dict):
        raise MetricsFormatError(f"{path}: metrics payload is not an object")
    version = payload.get("schema_version")
    if version not in SUPPORTED_METRICS_SCHEMAS:
        raise MetricsFormatError(
            f"{path}: unsupported metrics schema_version {version!r} "
            f"(this build reads {SUPPORTED_METRICS_SCHEMAS})"
        )
    return MetricsRegistry.from_dict(payload)

"""Derived fleet health scores per shard and machine.

A health score folds the three operational signals the fleet already
tracks into one number in ``[0, 1]``:

* **availability** — 0 for a quarantined shard, else 1 (for an aggregate,
  the fraction of members still serving);
* **latency** — p95 chunk/round latency against a budget
  (``ResiliencePolicy.task_deadline`` or an explicit budget); at or under
  budget scores 1, over budget decays as ``budget / p95``.  With no
  budget or no samples the component is neutral (1.0) — health never
  penalises what it cannot measure;
* **staleness** — deferred deep-level backlog, decaying as
  ``0.5 ** (stale_snapshots / tolerance)`` so a freshly-refreshed shard
  scores 1 and one a full tolerance behind scores 0.5.

The product of the three maps to a status via fixed thresholds
(``healthy`` ≥ 0.8 > ``degraded`` ≥ 0.4 > ``critical``).  Scoring is pure
arithmetic over numbers the monitors already hold — no clocks, no I/O —
so the monitors can afford it every chunk, and the resulting
:class:`HealthScore` objects ride on ``FleetSnapshot``/
``FederatedSnapshot`` as comparison-exempt fields (wall-clock latency
must never break bit-for-bit snapshot parity).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "HealthScore",
    "score_shard",
    "aggregate",
    "percentile",
    "STATUS_HEALTHY",
    "STATUS_DEGRADED",
    "STATUS_CRITICAL",
]

STATUS_HEALTHY = "healthy"
STATUS_DEGRADED = "degraded"
STATUS_CRITICAL = "critical"

#: score >= this is healthy.
HEALTHY_THRESHOLD = 0.8
#: score >= this (but < healthy) is degraded; below is critical.
DEGRADED_THRESHOLD = 0.4

#: Deep-level staleness (in snapshots) that halves the staleness component.
DEFAULT_STALENESS_TOLERANCE = 100.0


def _status(score: float) -> str:
    if score >= HEALTHY_THRESHOLD:
        return STATUS_HEALTHY
    if score >= DEGRADED_THRESHOLD:
        return STATUS_DEGRADED
    return STATUS_CRITICAL


@dataclass(frozen=True)
class HealthScore:
    """One scored entity (shard, machine, or whole-fleet aggregate)."""

    score: float
    status: str
    availability: float
    latency: float
    staleness: float

    def to_dict(self) -> dict:
        return {
            "score": self.score,
            "status": self.status,
            "availability": self.availability,
            "latency": self.latency,
            "staleness": self.staleness,
        }


def percentile(samples, q: float) -> float | None:
    """Nearest-rank percentile of a sample list; ``None`` when empty."""
    values = sorted(samples)
    if not values:
        return None
    rank = max(0, min(len(values) - 1, int(q * len(values) + 0.5) - 1))
    return values[rank]


def component_latency(
    p95_seconds: float | None, budget_seconds: float | None
) -> float:
    """1.0 at/under budget, ``budget / p95`` beyond it, neutral unmeasured."""
    if p95_seconds is None or budget_seconds is None or budget_seconds <= 0:
        return 1.0
    if p95_seconds <= budget_seconds:
        return 1.0
    return max(0.0, budget_seconds / p95_seconds)


def component_staleness(
    stale_snapshots: float,
    tolerance: float = DEFAULT_STALENESS_TOLERANCE,
) -> float:
    """Exponential decay: fresh → 1.0, one tolerance behind → 0.5."""
    if stale_snapshots <= 0 or tolerance <= 0:
        return 1.0
    return 0.5 ** (float(stale_snapshots) / float(tolerance))


def score_shard(
    *,
    quarantined: bool = False,
    p95_seconds: float | None = None,
    budget_seconds: float | None = None,
    deep_stale_snapshots: float = 0.0,
    staleness_tolerance: float = DEFAULT_STALENESS_TOLERANCE,
) -> HealthScore:
    """Score one shard (or one machine treated as a unit)."""
    availability = 0.0 if quarantined else 1.0
    latency = component_latency(p95_seconds, budget_seconds)
    staleness = component_staleness(deep_stale_snapshots, staleness_tolerance)
    score = availability * latency * staleness
    return HealthScore(
        score=score,
        status=_status(score),
        availability=availability,
        latency=latency,
        staleness=staleness,
    )


def aggregate(scores) -> HealthScore:
    """Roll member scores up into one aggregate.

    The aggregate score is the mean member score (an operator cares how
    much of the fleet is serving well), with each component averaged the
    same way; an empty roster scores a neutral 1.0.
    """
    members = list(scores)
    if not members:
        return HealthScore(1.0, STATUS_HEALTHY, 1.0, 1.0, 1.0)
    n = float(len(members))
    score = sum(m.score for m in members) / n
    return HealthScore(
        score=score,
        status=_status(score),
        availability=sum(m.availability for m in members) / n,
        latency=sum(m.latency for m in members) / n,
        staleness=sum(m.staleness for m in members) / n,
    )

"""Always-on flight recorder: bounded black-box rings plus failure dumps.

Unlike the rest of :mod:`repro.obs` — which is off by default and costs
one branch per call site when disabled — the flight recorder is *always*
listening, because post-mortems are most valuable for the runs nobody
thought to instrument.  It keeps fixed-size rings of recent activity
(span-like deltas, alerts, free-form notes) per scope — ``shard:<id>``,
``machine:<name>`` and a fleet-wide ``global`` scope — and on a failure
event (shard quarantine, worker loss, checkpoint that refuses to load)
assembles a self-contained JSON bundle: the recent rings, the live trace
tail (when ``OBS`` is enabled), the resilience digest, the quarantine
reason and the last snapshot stamps.

Recording is a dict append into a preallocated ring under one lock —
cheap enough to leave on in production, bounded so an unattended fleet
can run forever.  Bundles are written to :attr:`FlightRecorder.dump_dir`
when configured (the CLI's ``--flight-dir``) and always retained in
memory on :attr:`FlightRecorder.bundles` for embedding tests.
"""

from __future__ import annotations

import json
import os
import threading

from ..util.growbuf import RingBuffer

__all__ = [
    "FLIGHT",
    "FlightRecorder",
    "configure",
    "FLIGHT_SCHEMA_VERSION",
]

#: Version stamped into every dumped bundle; loaders should refuse
#: versions they do not know, like checkpoints and trace headers do.
FLIGHT_SCHEMA_VERSION = 1

#: Scope key for fleet-wide entries (everything also lands here).
GLOBAL_SCOPE = "global"

#: How many dumped bundles stay resident in memory.
_BUNDLE_KEEP = 16

#: How many trace-tail events a bundle embeds per view.
_TRACE_TAIL = 50


def _json_safe(value):
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    try:
        return value.item()  # NumPy scalars
    except AttributeError:
        return str(value)


class FlightRecorder:
    """Bounded per-scope black box with post-mortem bundle dumps."""

    def __init__(self, capacity: int = 256, dump_dir: str | None = None) -> None:
        self.capacity = int(capacity)
        self.dump_dir = dump_dir
        self.bundles: list[dict] = []
        self._rings: dict[tuple[str, str], RingBuffer] = {}
        self._seq = 0
        self._lock = threading.Lock()

    # -- configuration ----------------------------------------------------- #
    def configure(
        self, *, dump_dir: str | None = None, capacity: int | None = None
    ) -> "FlightRecorder":
        """Point dumps at a directory and/or resize future rings."""
        if dump_dir is not None:
            os.makedirs(dump_dir, exist_ok=True)
            self.dump_dir = str(dump_dir)
        if capacity is not None:
            self.capacity = int(capacity)
        return self

    def reset(self) -> None:
        """Drop every ring, retained bundle and the dump directory."""
        with self._lock:
            self._rings.clear()
            self.bundles = []
            self._seq = 0
            self.dump_dir = None

    # -- recording --------------------------------------------------------- #
    def _ring(self, scope: str, category: str) -> RingBuffer:
        key = (scope, category)
        ring = self._rings.get(key)
        if ring is None:
            ring = self._rings[key] = RingBuffer(self.capacity)
        return ring

    def record(self, category: str, entry: dict, *, scope: str | None = None) -> None:
        """Append one entry to ``scope`` (and the global scope)."""
        entry = _json_safe(entry)
        with self._lock:
            if scope is not None and scope != GLOBAL_SCOPE:
                self._ring(scope, category).append(entry)
            self._ring(GLOBAL_SCOPE, category).append(entry)

    def record_delta(
        self, name: str, value: float, *, scope: str | None = None, **labels
    ) -> None:
        """A metric-style observation (chunk latency, round time, ...)."""
        self.record(
            "deltas", {"name": name, "value": float(value), **labels}, scope=scope
        )

    def record_alert(self, alert, *, scope: str | None = None) -> None:
        """A fired alert (anything dict-like or with ``to_dict``)."""
        if hasattr(alert, "to_dict"):
            alert = alert.to_dict()
        elif not isinstance(alert, dict):
            alert = {"alert": str(alert)}
        self.record("alerts", alert, scope=scope)

    def record_note(self, kind: str, *, scope: str | None = None, **data) -> None:
        """A free-form breadcrumb (recovery step, checkpoint stamp, ...)."""
        self.record("notes", {"kind": kind, **data}, scope=scope)

    def tail(self, scope: str = GLOBAL_SCOPE, category: str | None = None):
        """Recent entries for a scope, oldest first."""
        with self._lock:
            if category is not None:
                ring = self._rings.get((scope, category))
                return ring.items() if ring is not None else []
            return {
                cat: ring.items()
                for (sc, cat), ring in self._rings.items()
                if sc == scope
            }

    # -- dumping ----------------------------------------------------------- #
    def _trace_tail(self, shard_id: str | None) -> list[dict]:
        from . import OBS  # deferred: flight must not gate provider import

        if not OBS.enabled or OBS.ring is None:
            return []
        events = OBS.ring.events
        if shard_id is not None:
            shard_events = [
                e for e in events
                if (e.get("attrs") or {}).get("shard") == shard_id
            ]
            tail = shard_events[-_TRACE_TAIL:]
            seen = {id(e) for e in tail}
            for e in events[-_TRACE_TAIL:]:
                if id(e) not in seen:
                    tail.append(e)
            return tail
        return events[-_TRACE_TAIL:]

    def _resilience_digest(self) -> dict:
        from . import OBS, report

        if not OBS.enabled:
            return {}
        try:
            return report.summarize(OBS.metrics).get("resilience", {})
        except Exception:  # pragma: no cover - report must never block a dump
            return {}

    def dump(
        self,
        reason: str,
        *,
        shard_id: str | None = None,
        machine: str | None = None,
        step: int | None = None,
        quarantine: dict | None = None,
        snapshot_stamps: dict | None = None,
        extra: dict | None = None,
    ) -> dict:
        """Assemble (and, when configured, write) one post-mortem bundle.

        Always returns the bundle and retains the most recent
        ``_BUNDLE_KEEP`` of them on :attr:`bundles`; additionally writes
        ``flight-<seq>-<reason>[-<scope>].json`` under :attr:`dump_dir`
        when one is configured.
        """
        from . import OBS

        with self._lock:
            self._seq += 1
            seq = self._seq
        scopes = {GLOBAL_SCOPE: self.tail(GLOBAL_SCOPE)}
        if shard_id is not None:
            scopes[f"shard:{shard_id}"] = self.tail(f"shard:{shard_id}")
        if machine is not None:
            scopes[f"machine:{machine}"] = self.tail(f"machine:{machine}")
        bundle = {
            "schema_version": FLIGHT_SCHEMA_VERSION,
            "kind": "flight_bundle",
            "seq": seq,
            "reason": reason,
            "shard_id": shard_id,
            "machine": machine,
            "step": step,
            "trace_id": OBS.trace_id,
            "quarantine": _json_safe(quarantine) if quarantine else None,
            "snapshot_stamps": _json_safe(snapshot_stamps)
            if snapshot_stamps
            else None,
            "recent": scopes,
            "trace_tail": self._trace_tail(shard_id),
            "resilience": self._resilience_digest(),
        }
        if extra:
            bundle["extra"] = _json_safe(extra)
        if self.dump_dir is not None:
            label = shard_id or machine or "fleet"
            safe = "".join(c if c.isalnum() or c in "-_" else "_" for c in label)
            safe_reason = "".join(
                c if c.isalnum() or c in "-_" else "_" for c in reason
            )
            path = os.path.join(
                self.dump_dir, f"flight-{seq:03d}-{safe_reason}-{safe}.json"
            )
            with open(path, "w", encoding="utf-8") as handle:
                json.dump(bundle, handle, indent=2, sort_keys=True)
            bundle["path"] = path
        with self._lock:
            self.bundles.append(bundle)
            if len(self.bundles) > _BUNDLE_KEEP:
                del self.bundles[: len(self.bundles) - _BUNDLE_KEEP]
        return bundle


#: The process-wide recorder every failure hook talks to.  Each worker
#: process has its own (module state does not cross the spawn boundary);
#: dumps happen in the process hosting the monitor, which is where the
#: supervisor's failure hooks run.
FLIGHT = FlightRecorder()


def configure(**kwargs) -> FlightRecorder:
    """Configure the module-level recorder (see :meth:`FlightRecorder.configure`)."""
    return FLIGHT.configure(**kwargs)

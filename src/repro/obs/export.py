"""Standard-format exporters for traces and metrics.

Two targets, both chosen so a session is inspectable with tools an
operator already has:

* **Chrome trace-event JSON** (:func:`chrome_trace_events`,
  :func:`write_chrome_trace`) — the ``{"traceEvents": [...]}`` format
  understood by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Every span becomes one complete (``"ph": "X"``)
  event with microsecond timestamps, keeping ``pid``/``tid`` so the
  coordinator and each worker render as separate tracks on the one
  calibrated timeline.
* **OpenMetrics / Prometheus text exposition**
  (:func:`render_openmetrics`, :func:`write_openmetrics`) — ``# TYPE`` /
  ``# HELP`` framed samples ending in ``# EOF``, scrape-compatible with
  Prometheus.  Counters gain the mandated ``_total`` suffix, histograms
  expand to cumulative ``_bucket{le=...}`` series plus ``_sum``/``_count``.

:func:`read_trace` is the loading side of the JSON-lines format: it
validates the ``schema_version`` header written by
:class:`~repro.obs.trace.JsonLinesTraceSink` and refuses versions it does
not know, the same forward-compat contract the checkpoint manifests use.
"""

from __future__ import annotations

import json
import re

from .metrics import MetricsRegistry
from .trace import SUPPORTED_TRACE_SCHEMAS, TRACE_SCHEMA_VERSION

__all__ = [
    "TraceFormatError",
    "read_trace",
    "chrome_trace_events",
    "write_chrome_trace",
    "render_openmetrics",
    "write_openmetrics",
    "OPENMETRICS_CONTENT_TYPE",
]

#: HTTP content type a scrape endpoint would serve the text with.
OPENMETRICS_CONTENT_TYPE = (
    "application/openmetrics-text; version=1.0.0; charset=utf-8"
)


class TraceFormatError(ValueError):
    """A trace file could not be parsed or declares an unknown schema."""


# --------------------------------------------------------------------------- #
# JSON-lines loading
# --------------------------------------------------------------------------- #
def read_trace(path) -> tuple[dict, list[dict]]:
    """Parse a JSON-lines trace file into ``(header, events)``.

    Raises :class:`TraceFormatError` on corrupt lines or when the header
    declares a ``schema_version`` outside
    :data:`~repro.obs.trace.SUPPORTED_TRACE_SCHEMAS`.  Headerless files
    (written before the header existed) are accepted with an empty header.
    """
    header: dict = {}
    events: list[dict] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as exc:
                raise TraceFormatError(
                    f"{path}: line {lineno} is not valid JSON: {exc}"
                ) from exc
            if obj.get("kind") == "trace_header":
                version = obj.get("schema_version")
                if version not in SUPPORTED_TRACE_SCHEMAS:
                    raise TraceFormatError(
                        f"{path}: unsupported trace schema_version {version!r} "
                        f"(this build reads {SUPPORTED_TRACE_SCHEMAS})"
                    )
                header = obj
            else:
                events.append(obj)
    return header, events


# --------------------------------------------------------------------------- #
# Chrome trace-event JSON
# --------------------------------------------------------------------------- #
def chrome_trace_events(events, *, trace_id: str | None = None) -> list[dict]:
    """Convert span event dicts to Chrome trace-event complete events.

    Timestamps convert from seconds to integer microseconds; span
    identity and causality travel in ``args`` (``span_id``/``parent_id``)
    since the trace-event format has no native parent link.
    """
    out: list[dict] = []
    for event in events:
        start = event.get("start")
        end = event.get("end")
        if start is None or end is None:
            continue
        args = dict(event.get("attrs") or {})
        args["span_id"] = event.get("span_id")
        if event.get("parent_id") is not None:
            args["parent_id"] = event["parent_id"]
        if event.get("error"):
            args["error"] = True
        tid = event.get("trace_id", trace_id)
        if tid is not None:
            args["trace_id"] = tid
        out.append(
            {
                "name": str(event.get("name", "<unnamed>")),
                "ph": "X",
                "ts": round(start * 1e6),
                "dur": max(0, round((end - start) * 1e6)),
                "pid": int(event.get("pid", 0)),
                "tid": int(event.get("tid", 0)),
                "cat": "repro",
                "args": args,
            }
        )
    out.sort(key=lambda e: e["ts"])
    return out


def write_chrome_trace(events, path, *, trace_id: str | None = None) -> dict:
    """Write span events as a Chrome/Perfetto-loadable JSON object file."""
    payload = {
        "traceEvents": chrome_trace_events(events, trace_id=trace_id),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema_version": TRACE_SCHEMA_VERSION,
            "format": "repro.obs chrome trace",
            **({"trace_id": trace_id} if trace_id is not None else {}),
        },
    }
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)
        handle.write("\n")
    return payload


# --------------------------------------------------------------------------- #
# OpenMetrics text exposition
# --------------------------------------------------------------------------- #
_NAME_OK = re.compile(r"[^a-zA-Z0-9_:]")


def _metric_name(name: str) -> str:
    """Sanitise a dotted registry name into a legal metric name."""
    clean = _NAME_OK.sub("_", name)
    if not clean or clean[0].isdigit():
        clean = "_" + clean
    return clean


def _escape_label(value: object) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _label_str(labels: tuple, extra: tuple = ()) -> str:
    pairs = tuple(labels) + tuple(extra)
    if not pairs:
        return ""
    body = ",".join(
        f'{_metric_name(str(k))}="{_escape_label(v)}"' for k, v in pairs
    )
    return "{" + body + "}"


def _fmt(value: float) -> str:
    value = float(value)
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


def render_openmetrics(registry: MetricsRegistry) -> str:
    """Render the registry as OpenMetrics text exposition (ends ``# EOF``)."""
    lines: list[str] = []

    families: dict[str, list[tuple[tuple, object]]] = {}
    kinds: dict[str, str] = {}
    for key, counter in registry.counters():
        name = _metric_name(key[0])
        families.setdefault(name, []).append((key[1], counter))
        kinds[name] = "counter"
    for key, gauge in registry.gauges():
        name = _metric_name(key[0])
        families.setdefault(name, []).append((key[1], gauge))
        kinds[name] = "gauge"
    for key, hist in registry.histograms():
        name = _metric_name(key[0])
        families.setdefault(name, []).append((key[1], hist))
        kinds[name] = "histogram"

    for name in sorted(families):
        kind = kinds[name]
        lines.append(f"# TYPE {name} {kind}")
        lines.append(f"# HELP {name} repro.obs metric {name}")
        for labels, metric in sorted(families[name], key=lambda kv: kv[0]):
            if kind == "counter":
                lines.append(
                    f"{name}_total{_label_str(labels)} {_fmt(metric.value)}"
                )
            elif kind == "gauge":
                lines.append(
                    f"{name}{_label_str(labels)} {_fmt(metric.value)}"
                )
            else:
                cumulative = 0
                for bound, count in zip(metric.bounds, metric.bucket_counts):
                    cumulative += count
                    lines.append(
                        f"{name}_bucket"
                        f"{_label_str(labels, (('le', _fmt(bound)),))} "
                        f"{cumulative}"
                    )
                lines.append(
                    f"{name}_bucket"
                    f"{_label_str(labels, (('le', '+Inf'),))} {metric.count}"
                )
                lines.append(
                    f"{name}_sum{_label_str(labels)} {_fmt(metric.sum)}"
                )
                lines.append(
                    f"{name}_count{_label_str(labels)} {metric.count}"
                )
    lines.append("# EOF")
    return "\n".join(lines) + "\n"


def write_openmetrics(registry: MetricsRegistry, path) -> str:
    """Write the OpenMetrics exposition to ``path`` and return it."""
    text = render_openmetrics(registry)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(text)
    return text

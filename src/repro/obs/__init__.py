"""repro.obs — tracing, metrics and profiling hooks for the ingest path.

The package exposes one module-level provider, :data:`OBS`, that every
instrumented layer (core, pipeline, service, federation, executor) talks
to.  It defaults **off**: the hot-path guard is a single attribute check
(``if OBS.enabled:``) or one no-op method call returning a shared inert
context manager, so a disabled provider costs nothing measurable per chunk
(pinned by ``benchmarks/bench_obs_overhead.py``).

Enable it for a session::

    from repro import obs

    obs.enable(trace_path="trace.jsonl")     # span events -> JSON lines
    ... run a scenario ...
    print(obs.report.render_text(obs.OBS.metrics))

or from the CLI::

    python -m repro.service rack-cooling-failure \\
        --metrics-out metrics.json --trace-out trace.jsonl

Process-backend shard workers run in fresh interpreters where ``OBS``
starts disabled; :class:`~repro.service.monitor.FleetMonitor` and
:class:`~repro.federation.monitor.FederatedMonitor` flip it on remotely
(:func:`worker_enable_metrics`) when the parent provider is enabled, and
drain each worker's registry home (:func:`worker_drain_metrics`) on close —
metrics merge exactly; trace *events* stay local to the process that
produced them (workers still feed ``span.*`` histograms, which do merge).
"""

from __future__ import annotations

from typing import Iterable

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    JsonLinesTraceSink,
    RingBufferTraceSink,
    Span,
    Tracer,
    TraceSink,
)

__all__ = [
    "OBS",
    "ObsProvider",
    "enable",
    "disable",
    "worker_enable_metrics",
    "worker_drain_metrics",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "Tracer",
    "Span",
    "TraceSink",
    "RingBufferTraceSink",
    "JsonLinesTraceSink",
]


class _NoopSpan:
    """Inert, reusable, re-entrant stand-in returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class ObsProvider:
    """The process-wide observability switchboard.

    All instrumentation funnels through the four hot-path methods
    (:meth:`span`, :meth:`record`, :meth:`inc`, :meth:`gauge`,
    :meth:`observe`); each starts with the ``enabled`` check so the
    disabled cost is one attribute load and a branch.
    """

    __slots__ = ("enabled", "metrics", "tracer", "ring")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        self.ring: RingBufferTraceSink | None = None
        self.tracer = Tracer(metrics=self.metrics)

    # -- lifecycle --------------------------------------------------------- #
    def enable(
        self,
        *,
        trace_path: str | None = None,
        ring_capacity: int = 4096,
        sinks: Iterable[TraceSink] = (),
    ) -> "ObsProvider":
        """Turn collection on (idempotent; metrics accumulate across calls).

        A ring-buffer sink always retains the most recent ``ring_capacity``
        span events for in-process inspection (``OBS.ring.events``); pass
        ``trace_path`` to also stream events to a JSON-lines file, or
        ``sinks`` for custom fan-out — the same sink split the alert
        engine uses.
        """
        self.tracer.close_sinks()
        self.ring = RingBufferTraceSink(ring_capacity)
        all_sinks: list[TraceSink] = [self.ring]
        if trace_path is not None:
            all_sinks.append(JsonLinesTraceSink(trace_path))
        all_sinks.extend(sinks)
        self.tracer = Tracer(metrics=self.metrics, sinks=all_sinks)
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop collecting and close file sinks; metrics are retained."""
        self.enabled = False
        self.tracer.close_sinks()

    def reset(self) -> None:
        """Back to the pristine disabled state with an empty registry."""
        self.disable()
        self.metrics = MetricsRegistry()
        self.ring = None
        self.tracer = Tracer(metrics=self.metrics)

    def drain(self) -> MetricsRegistry:
        """Detach and return the accumulated registry, installing a fresh
        one — the worker side of the process-backend round trip (repeat
        drains never double-count)."""
        snapshot = self.metrics
        self.metrics = MetricsRegistry()
        self.tracer.metrics = self.metrics
        return snapshot

    # -- hot-path API ------------------------------------------------------ #
    def span(self, name: str, **attrs):
        """A timed region: real span when enabled, shared no-op otherwise."""
        if not self.enabled:
            return _NOOP_SPAN
        return self.tracer.span(name, **attrs)

    def record(self, name: str, seconds: float, **attrs) -> None:
        """An already-measured leaf region (see :meth:`Tracer.record`)."""
        if self.enabled:
            self.tracer.record(name, seconds, **attrs)

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        if self.enabled:
            self.metrics.inc(name, amount, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.observe(name, value, **labels)


#: The module-level provider every instrumented layer imports.
OBS = ObsProvider()


def enable(**kwargs) -> ObsProvider:
    """Enable the module-level provider (see :meth:`ObsProvider.enable`)."""
    return OBS.enable(**kwargs)


def disable() -> None:
    """Disable the module-level provider."""
    OBS.disable()


# --------------------------------------------------------------------------- #
# Shard-executor commands (top-level, hence picklable by reference).  They
# follow the executor's calling convention ``fn(resident_obj, *args)`` and
# ignore the resident object: the target is the *worker interpreter's*
# module-level provider, reached via any shard resident on that worker.
# --------------------------------------------------------------------------- #
def worker_enable_metrics(obj=None) -> bool:
    """Enable metrics collection inside a process-backend worker.

    Tracing stays sink-less in workers: span events are dropped but the
    ``span.*`` duration histograms land in the worker registry, which
    :func:`worker_drain_metrics` later ships home.
    """
    if not OBS.enabled:
        OBS.enable(ring_capacity=1)
    return OBS.enabled


def worker_drain_metrics(obj=None) -> MetricsRegistry:
    """Detach and return the worker's registry (resets it, so repeated
    collections never double-count)."""
    return OBS.drain()


# Imported last: ``report`` renders through repro.viz, which must not be a
# prerequisite for the hot-path classes above.
from . import report  # noqa: E402

__all__.append("report")

"""repro.obs — tracing, metrics and profiling hooks for the ingest path.

The package exposes one module-level provider, :data:`OBS`, that every
instrumented layer (core, pipeline, service, federation, executor) talks
to.  It defaults **off**: the hot-path guard is a single attribute check
(``if OBS.enabled:``) or one no-op method call returning a shared inert
context manager, so a disabled provider costs nothing measurable per chunk
(pinned by ``benchmarks/bench_obs_overhead.py``).

Enable it for a session::

    from repro import obs

    obs.enable(trace_path="trace.jsonl")     # span events -> JSON lines
    ... run a scenario ...
    print(obs.report.render_text(obs.OBS.metrics))

or from the CLI::

    python -m repro.service rack-cooling-failure \\
        --metrics-out metrics.json --trace-out trace.jsonl

Process-backend shard workers run in fresh interpreters where ``OBS``
starts disabled; :class:`~repro.service.monitor.FleetMonitor` and
:class:`~repro.federation.monitor.FederatedMonitor` flip it on remotely
(:func:`worker_enable_metrics`) when the parent provider is enabled, and
drain each worker's registry home (:func:`worker_drain_metrics`) on close —
metrics merge exactly; trace *events* stay local to the process that
produced them (workers still feed ``span.*`` histograms, which do merge).
"""

from __future__ import annotations

from typing import Iterable

from .metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .trace import (
    SUPPORTED_TRACE_SCHEMAS,
    TRACE_SCHEMA_VERSION,
    JsonLinesTraceSink,
    RingBufferTraceSink,
    Span,
    TraceContext,
    Tracer,
    TraceSink,
    new_trace_id,
)

__all__ = [
    "OBS",
    "ObsProvider",
    "enable",
    "disable",
    "worker_enable_metrics",
    "worker_drain_metrics",
    "worker_drain_trace",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "Tracer",
    "TraceContext",
    "Span",
    "TraceSink",
    "RingBufferTraceSink",
    "JsonLinesTraceSink",
    "TRACE_SCHEMA_VERSION",
    "SUPPORTED_TRACE_SCHEMAS",
    "new_trace_id",
]


class _NoopSpan:
    """Inert, reusable, re-entrant stand-in returned while disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> None:
        return None


_NOOP_SPAN = _NoopSpan()


class ObsProvider:
    """The process-wide observability switchboard.

    All instrumentation funnels through the four hot-path methods
    (:meth:`span`, :meth:`record`, :meth:`inc`, :meth:`gauge`,
    :meth:`observe`); each starts with the ``enabled`` check so the
    disabled cost is one attribute load and a branch.
    """

    __slots__ = ("enabled", "metrics", "tracer", "ring", "trace_id", "clock_offset")

    def __init__(self) -> None:
        self.enabled = False
        self.metrics = MetricsRegistry()
        self.ring: RingBufferTraceSink | None = None
        self.trace_id: str | None = None
        self.clock_offset = 0.0
        self.tracer = Tracer(metrics=self.metrics)

    # -- lifecycle --------------------------------------------------------- #
    def enable(
        self,
        *,
        trace_path: str | None = None,
        ring_capacity: int = 4096,
        sinks: Iterable[TraceSink] = (),
    ) -> "ObsProvider":
        """Turn collection on (idempotent; metrics accumulate across calls).

        A ring-buffer sink always retains the most recent ``ring_capacity``
        span events for in-process inspection (``OBS.ring.events``); pass
        ``trace_path`` to also stream events to a JSON-lines file, or
        ``sinks`` for custom fan-out — the same sink split the alert
        engine uses.
        """
        self.tracer.close_sinks()
        if self.trace_id is None:
            self.trace_id = new_trace_id()
        self.ring = RingBufferTraceSink(ring_capacity)
        all_sinks: list[TraceSink] = [self.ring]
        if trace_path is not None:
            all_sinks.append(JsonLinesTraceSink(trace_path, trace_id=self.trace_id))
        all_sinks.extend(sinks)
        self.tracer = Tracer(
            metrics=self.metrics,
            sinks=all_sinks,
            trace_id=self.trace_id,
            clock_offset=self.clock_offset,
        )
        self.enabled = True
        return self

    def disable(self) -> None:
        """Stop collecting and close file sinks; metrics are retained."""
        self.enabled = False
        self.tracer.close_sinks()

    def reset(self) -> None:
        """Back to the pristine disabled state with an empty registry."""
        self.disable()
        self.metrics = MetricsRegistry()
        self.ring = None
        self.trace_id = None
        self.clock_offset = 0.0
        self.tracer = Tracer(metrics=self.metrics)

    def set_remote_context(self, trace_id: str | None, clock_offset: float) -> None:
        """Install the coordinator's trace id and this process's clock
        offset — the receiving side of the executor calibration handshake.
        Takes effect immediately on the live tracer and persists across a
        later :meth:`enable`."""
        self.trace_id = trace_id
        self.clock_offset = float(clock_offset)
        self.tracer.trace_id = trace_id
        self.tracer.clock_offset = float(clock_offset)

    def drain(self) -> MetricsRegistry:
        """Detach and return the accumulated registry, installing a fresh
        one — the worker side of the process-backend round trip (repeat
        drains never double-count)."""
        snapshot = self.metrics
        self.metrics = MetricsRegistry()
        self.tracer.metrics = self.metrics
        return snapshot

    # -- hot-path API ------------------------------------------------------ #
    def span(self, name: str, **attrs):
        """A timed region: real span when enabled, shared no-op otherwise."""
        if not self.enabled:
            return _NOOP_SPAN
        return self.tracer.span(name, **attrs)

    def current_context(self) -> TraceContext | None:
        """The causal context to ship with cross-process work, or ``None``
        while disabled (or when no span is open — nothing to parent under)."""
        if not self.enabled:
            return None
        ctx = self.tracer.current_context()
        return ctx if ctx.span_id is not None else None

    def adopt(self, ctx):
        """Scope this thread's spans under a shipped context (no-op when
        disabled or when ``ctx`` is ``None``)."""
        if not self.enabled or ctx is None:
            return _NOOP_SPAN
        return self.tracer.adopt(ctx)

    def record(self, name: str, seconds: float, **attrs) -> None:
        """An already-measured leaf region (see :meth:`Tracer.record`)."""
        if self.enabled:
            self.tracer.record(name, seconds, **attrs)

    def inc(self, name: str, amount: float = 1.0, **labels) -> None:
        if self.enabled:
            self.metrics.inc(name, amount, **labels)

    def gauge(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.set_gauge(name, value, **labels)

    def observe(self, name: str, value: float, **labels) -> None:
        if self.enabled:
            self.metrics.observe(name, value, **labels)


#: The module-level provider every instrumented layer imports.
OBS = ObsProvider()


def enable(**kwargs) -> ObsProvider:
    """Enable the module-level provider (see :meth:`ObsProvider.enable`)."""
    return OBS.enable(**kwargs)


def disable() -> None:
    """Disable the module-level provider."""
    OBS.disable()


# --------------------------------------------------------------------------- #
# Shard-executor commands (top-level, hence picklable by reference).  They
# follow the executor's calling convention ``fn(resident_obj, *args)`` and
# ignore the resident object: the target is the *worker interpreter's*
# module-level provider, reached via any shard resident on that worker.
# --------------------------------------------------------------------------- #
#: Span events a worker retains between trace drains.  Old events are
#: evicted oldest-first once the ring fills — the drained trace is a tail,
#: the same contract as the in-process ``OBS.ring``.
WORKER_TRACE_RING_CAPACITY = 8192


def worker_enable_metrics(obj=None) -> bool:
    """Enable metrics collection inside a process-backend worker.

    Workers trace into their ring sink only: ``span.*`` duration
    histograms land in the worker registry (shipped home by
    :func:`worker_drain_metrics`) while the span *events* — calibrated
    onto the coordinator's timeline and parented through the shipped
    :class:`TraceContext` — wait in the ring for
    :func:`worker_drain_trace` to merge them into the coordinator's trace.
    """
    if not OBS.enabled:
        OBS.enable(ring_capacity=WORKER_TRACE_RING_CAPACITY)
    return OBS.enabled


def worker_drain_metrics(obj=None) -> MetricsRegistry:
    """Detach and return the worker's registry (resets it, so repeated
    collections never double-count)."""
    return OBS.drain()


def worker_drain_trace(obj=None) -> list[dict]:
    """Detach and return the worker's buffered span events (oldest first).

    Clears the ring, so repeated drains never duplicate events.  The
    events already carry calibrated timestamps and globally-unique span
    ids; the coordinator feeds them to :meth:`Tracer.ingest_events`.
    """
    ring = OBS.ring
    if ring is None:
        return []
    events = ring.events
    ring.clear()
    return events


# Imported after OBS exists: flight/health/export read the provider but
# must not be prerequisites for the hot-path classes above; ``report``
# additionally renders through repro.viz.
from . import export, flight, health  # noqa: E402
from . import report  # noqa: E402

__all__.extend(["export", "flight", "health", "report"])

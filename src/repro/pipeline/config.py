"""Configuration objects for the online analysis pipeline."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..core.mrdmd import MrDMDConfig

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end settings of the online analysis pipeline.

    Attributes
    ----------
    mrdmd:
        Settings of the multiresolution decomposition (levels, cycles,
        SVHT, ...).
    drift_threshold:
        Level-1 drift threshold forwarded to
        :class:`~repro.core.imrdmd.IncrementalMrDMD`.
    frequency_range:
        Band (Hz) of modes retained for reconstruction and z-scoring
        (case study 1 uses 0-60 Hz).
    power_quantile:
        Keep modes at or above this power quantile when filtering the
        spectrum (0 keeps everything).
    baseline_range:
        Value band (sensor units) defining baseline readings — the paper's
        46-57 degC band in case study 1.
    zscore_near / zscore_extreme:
        Classification thresholds (+-1.5 near baseline, +-2 extreme).
    zscore_reducer:
        How each row's time series is collapsed before scoring.
    baseline_refit:
        When the pipeline's fitted baseline should be refreshed as the
        decomposition grows.  ``"stale"`` (default) refits automatically
        whenever the mode tree changed since the baseline was fitted (the
        fit is replayed with its original spec, so explicit
        ``value_range``/``time_range`` choices are honoured); ``"never"``
        keeps the first fitted baseline until :meth:`fit_baseline` is
        called again (the pre-fix behaviour).  Baselines fitted from
        explicit caller-supplied data are *pinned* and never auto-refit
        under either policy.
    keep_data:
        Retain raw snapshots inside the I-mrDMD model (needed for
        reconstruction-error reports).
    """

    mrdmd: MrDMDConfig = field(default_factory=MrDMDConfig)
    drift_threshold: float | None = None
    frequency_range: tuple[float, float] | None = None
    power_quantile: float = 0.0
    baseline_range: tuple[float, float] = (46.0, 57.0)
    zscore_near: float = 1.5
    zscore_extreme: float = 2.0
    zscore_reducer: str = "mean"
    baseline_refit: str = "stale"
    keep_data: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_quantile <= 1.0:
            raise ValueError("power_quantile must be in [0, 1]")
        if self.baseline_refit not in ("stale", "never"):
            raise ValueError(
                f"baseline_refit must be 'stale' or 'never', got {self.baseline_refit!r}"
            )
        if self.baseline_range[1] < self.baseline_range[0]:
            raise ValueError("baseline_range must be (low, high)")
        if self.zscore_near <= 0 or self.zscore_extreme < self.zscore_near:
            raise ValueError("thresholds must satisfy 0 < near <= extreme")

    # ------------------------------------------------------------------ #
    # Serialisation (JSON-safe; used by service checkpoints)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-container form (nested ``mrdmd`` becomes a dict)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineConfig":
        """Inverse of :meth:`to_dict`.

        Tolerates the tuple→list coercion a JSON round trip applies to
        ``frequency_range`` and ``baseline_range``.
        """
        payload = dict(payload)
        mrdmd = MrDMDConfig(**payload.pop("mrdmd"))
        for key in ("frequency_range", "baseline_range"):
            if payload.get(key) is not None:
                payload[key] = tuple(payload[key])
        return cls(mrdmd=mrdmd, **payload)

"""Configuration objects for the online analysis pipeline."""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

from ..core.imrdmd import (
    DEEP_LEVEL_MODES,
    MISSING_VALUE_POLICIES,
    RETENTION_POLICIES,
)
from ..core.mrdmd import MrDMDConfig

__all__ = ["PipelineConfig"]


@dataclass(frozen=True)
class PipelineConfig:
    """End-to-end settings of the online analysis pipeline.

    Attributes
    ----------
    mrdmd:
        Settings of the multiresolution decomposition (levels, cycles,
        SVHT, ...).
    drift_threshold:
        Level-1 drift threshold forwarded to
        :class:`~repro.core.imrdmd.IncrementalMrDMD`.
    frequency_range:
        Band (Hz) of modes retained for reconstruction and z-scoring
        (case study 1 uses 0-60 Hz).
    power_quantile:
        Keep modes at or above this power quantile when filtering the
        spectrum (0 keeps everything).
    baseline_range:
        Value band (sensor units) defining baseline readings — the paper's
        46-57 degC band in case study 1.
    zscore_near / zscore_extreme:
        Classification thresholds (+-1.5 near baseline, +-2 extreme).
    zscore_reducer:
        How each row's time series is collapsed before scoring.
    baseline_refit:
        When the pipeline's fitted baseline should be refreshed as the
        decomposition grows.  ``"stale"`` (default) refits automatically
        whenever the mode tree changed since the baseline was fitted (the
        fit is replayed with its original spec, so explicit
        ``value_range``/``time_range`` choices are honoured); ``"never"``
        keeps the first fitted baseline until :meth:`fit_baseline` is
        called again (the pre-fix behaviour).  Baselines fitted from
        explicit caller-supplied data are *pinned* and never auto-refit
        under either policy.
    keep_data:
        Retain raw snapshots inside the I-mrDMD model (needed for
        reconstruction-error reports).
    retain_data:
        Raw-snapshot retention policy forwarded to
        :class:`~repro.core.imrdmd.IncrementalMrDMD`: ``"all"``,
        ``"window"`` (trailing ``retain_window`` snapshots only) or
        ``"none"``.  ``None`` (default) derives the policy from
        ``keep_data`` — ``"all"`` when true, ``"none"`` otherwise.
        Per-ingest reconstruction-error reporting requires the full
        timeline and is therefore only computed under ``"all"``.
    retain_window:
        Trailing-snapshot count for ``retain_data="window"``.
    level1_path:
        Level-1 update strategy forwarded to
        :class:`~repro.core.imrdmd.IncrementalMrDMD`: ``"projected"``
        (default; flat per-chunk cost, amplitudes fitted over the
        appended chunk) or ``"dense"`` (the pre-overhaul whole-timeline
        behaviour, honouring ``mrdmd.amplitude_method`` at level 1, at
        O(T) per chunk) — the operator-facing escape hatch when
        pre-upgrade level-1 numerics must be preserved.
    missing_values:
        Non-finite-reading policy forwarded to
        :class:`~repro.core.imrdmd.IncrementalMrDMD`: ``"raise"``
        (default) rejects NaN/inf input with a clear error; ``"zero"``
        zero-fills it — required when the fleet monitor pads not-yet-
        reporting sensor rows with NaN (``missing_rows="nan"``).
    deep_levels:
        When the levels-2..L recursion over each appended chunk runs
        (forwarded to :class:`~repro.core.imrdmd.IncrementalMrDMD`):
        ``"inline"`` (default) on the ingest path, reproducing the
        historical results exactly; ``"deferred"`` queues it for an
        asynchronous ``refresh_deep_levels()`` that the fleet monitor
        schedules off the ingest path (on drift firings or every
        ``deep_refresh_every`` chunks).  Snapshots stamp the resulting
        deep-level staleness (``deep_pending`` / ``deep_stale_snapshots``).
    deep_refresh_every:
        Under ``deep_levels="deferred"``, schedule a background refresh
        after this many ingested chunks even when no drift fired
        (bounding staleness).  ``0`` refreshes only on drift firings /
        explicit ``drain_refreshes()`` calls.
    """

    mrdmd: MrDMDConfig = field(default_factory=MrDMDConfig)
    drift_threshold: float | None = None
    frequency_range: tuple[float, float] | None = None
    power_quantile: float = 0.0
    baseline_range: tuple[float, float] = (46.0, 57.0)
    zscore_near: float = 1.5
    zscore_extreme: float = 2.0
    zscore_reducer: str = "mean"
    baseline_refit: str = "stale"
    keep_data: bool = True
    retain_data: str | None = None
    retain_window: int = 4096
    level1_path: str = "projected"
    missing_values: str = "raise"
    deep_levels: str = "inline"
    deep_refresh_every: int = 8

    def __post_init__(self) -> None:
        if not 0.0 <= self.power_quantile <= 1.0:
            raise ValueError("power_quantile must be in [0, 1]")
        if self.baseline_refit not in ("stale", "never"):
            raise ValueError(
                f"baseline_refit must be 'stale' or 'never', got {self.baseline_refit!r}"
            )
        if self.retain_data is not None and self.retain_data not in RETENTION_POLICIES:
            raise ValueError(
                f"retain_data must be None or one of {RETENTION_POLICIES}, "
                f"got {self.retain_data!r}"
            )
        if self.retain_window < 1:
            raise ValueError("retain_window must be >= 1")
        if self.level1_path not in ("projected", "dense"):
            raise ValueError(
                f"level1_path must be 'projected' or 'dense', got {self.level1_path!r}"
            )
        if self.missing_values not in MISSING_VALUE_POLICIES:
            raise ValueError(
                f"missing_values must be one of {MISSING_VALUE_POLICIES}, "
                f"got {self.missing_values!r}"
            )
        if self.deep_levels not in DEEP_LEVEL_MODES:
            raise ValueError(
                f"deep_levels must be one of {DEEP_LEVEL_MODES}, "
                f"got {self.deep_levels!r}"
            )
        if self.deep_refresh_every < 0:
            raise ValueError("deep_refresh_every must be >= 0")
        if self.baseline_range[1] < self.baseline_range[0]:
            raise ValueError("baseline_range must be (low, high)")
        if self.zscore_near <= 0 or self.zscore_extreme < self.zscore_near:
            raise ValueError("thresholds must satisfy 0 < near <= extreme")

    @property
    def effective_retention(self) -> str:
        """The retention policy actually applied (``retain_data`` wins,
        else derived from ``keep_data``)."""
        if self.retain_data is not None:
            return self.retain_data
        return "all" if self.keep_data else "none"

    # ------------------------------------------------------------------ #
    # Serialisation (JSON-safe; used by service checkpoints)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """Plain-container form (nested ``mrdmd`` becomes a dict)."""
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "PipelineConfig":
        """Inverse of :meth:`to_dict`.

        Tolerates the tuple→list coercion a JSON round trip applies to
        ``frequency_range`` and ``baseline_range``.
        """
        payload = dict(payload)
        mrdmd = MrDMDConfig(**payload.pop("mrdmd"))
        for key in ("frequency_range", "baseline_range"):
            if payload.get(key) is not None:
                payload[key] = tuple(payload[key])
        return cls(mrdmd=mrdmd, **payload)

"""Case-study scenario builders (Sec. V) on the synthetic substrates.

Each builder assembles, at a configurable scale, the full multifidelity
setting of one of the paper's case studies:

* **case study 1** — a subset of nodes used by two projects' jobs, analysed
  over an initial window plus one streaming increment; some of those nodes
  run hot, a few others report correctable memory errors, and the two sets
  are (deliberately) not identical — matching the paper's observation that
  "the elevated temperatures observed on the nodes did not indicate any
  hardware-related errors";
* **case study 2** — the whole machine over two consecutive windows, the
  first hotter than the second (different baselines per window), with a
  small set of nodes persistently reporting hardware errors;
* **node-down scenario** (Fig. 2) — a hardware log whose per-node downtime
  hours are displayed on the Polaris rack layout.

The returned :class:`CaseStudyScenario` carries the ground truth (which
nodes were made hot/stalled/flaky), so examples and tests can verify that
the pipeline recovers it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..hwlog.generator import HardwareErrorModel
from ..hwlog.events import HardwareLog
from ..joblog.jobs import JobLog
from ..joblog.scheduler import simulate_joblog
from ..telemetry.anomalies import Anomaly, HotNodes, StalledNodes
from ..telemetry.generator import TelemetryGenerator, TelemetryStream
from ..telemetry.machine import MachineDescription, polaris_machine, theta_machine

__all__ = ["CaseStudyScenario", "build_case_study_1", "build_case_study_2", "build_node_down_scenario"]


@dataclass
class CaseStudyScenario:
    """Everything one case study needs, plus its ground truth.

    Attributes
    ----------
    machine:
        The (possibly scaled-down) machine description.
    stream:
        Environment-log telemetry for the selected nodes/sensor.
    joblog / hwlog:
        The aligned job and hardware logs.
    selected_nodes:
        Node indices whose telemetry is in ``stream`` (case study 1 uses
        the union of two projects' nodes; case study 2 uses all nodes).
    hot_nodes / stalled_nodes:
        Ground-truth anomalous node sets injected into the telemetry.
    initial_steps:
        Number of snapshots for the initial fit (the rest stream in).
    baseline_range:
        Temperature band used for baseline selection in this scenario.
    window_baselines:
        Optional per-window baseline bands (case study 2 uses different
        bands for its hot and cool halves).
    projects:
        The project names whose jobs defined the node selection (case 1).
    """

    machine: MachineDescription
    stream: TelemetryStream
    joblog: JobLog
    hwlog: HardwareLog
    selected_nodes: np.ndarray
    hot_nodes: np.ndarray
    stalled_nodes: np.ndarray
    initial_steps: int
    baseline_range: tuple[float, float]
    window_baselines: list[tuple[float, float]] = field(default_factory=list)
    projects: list[str] = field(default_factory=list)

    @property
    def n_timesteps(self) -> int:
        """Total snapshots in the scenario."""
        return self.stream.n_timesteps

    def initial_block(self) -> np.ndarray:
        """Snapshots for the initial fit."""
        return self.stream.values[:, : self.initial_steps]

    def streaming_block(self) -> np.ndarray:
        """Snapshots streamed in after the initial fit."""
        return self.stream.values[:, self.initial_steps :]


def _select_anomalous(nodes: np.ndarray, fraction: float, rng: np.random.Generator, minimum: int = 1) -> np.ndarray:
    count = max(minimum, int(round(fraction * nodes.size)))
    count = min(count, nodes.size)
    return np.sort(rng.choice(nodes, size=count, replace=False))


def build_case_study_1(
    *,
    scale: float = 0.1,
    n_timesteps: int = 2_000,
    initial_steps: int = 1_000,
    seed: int = 11,
    sensor: str = "cpu_temp",
) -> CaseStudyScenario:
    """Case study 1: two projects' nodes, one streaming increment.

    ``scale=1.0`` reproduces the paper's full 4,392-node Theta (871 selected
    nodes); the default ``scale=0.1`` keeps examples and benches fast while
    preserving every structural property.
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    if initial_steps >= n_timesteps:
        raise ValueError("initial_steps must be smaller than n_timesteps")
    rng = np.random.default_rng(seed)
    machine = theta_machine().scaled(scale) if scale < 1.0 else theta_machine()

    joblog = simulate_joblog(
        machine.n_nodes,
        n_timesteps,
        seed=seed,
        n_projects=6,
        submit_rate=max(0.02, 0.05 * scale * 10),
        mean_nodes=max(8, machine.n_nodes // 20),
        mean_duration=n_timesteps // 4,
    )
    projects = joblog.projects()[:2]
    selected = joblog.nodes_for_projects(projects)
    if selected.size < 8:  # tiny scales: fall back to the busiest nodes
        util = joblog.utilization_matrix(machine.n_nodes, n_timesteps)
        selected = np.argsort(util.sum(axis=1))[::-1][: max(8, machine.n_nodes // 5)]
        selected = np.sort(selected)

    hot = _select_anomalous(selected, 0.05, rng, minimum=2)
    stalled = _select_anomalous(np.setdiff1d(selected, hot), 0.03, rng, minimum=1)
    anomalies: list[Anomaly] = [
        HotNodes(node_indices=tuple(int(n) for n in hot), start=initial_steps // 2, delta=14.0),
        StalledNodes(node_indices=tuple(int(n) for n in stalled), start=initial_steps // 3, drop=10.0),
    ]

    generator = TelemetryGenerator(machine, seed=seed + 1, utilization_target=0.55)
    util = joblog.utilization_matrix(machine.n_nodes, n_timesteps)
    # Busy nodes sit in the upper half of the 46-57 degC baseline band rather
    # than far above it, so only the injected hot nodes clear the z > 2 line.
    stream = generator.generate(
        n_timesteps,
        sensors=[sensor],
        nodes=selected.tolist(),
        utilization=0.45 * util[selected, :],
        anomalies=anomalies,
    )

    # Memory errors fall mostly on *non-hot* nodes, reproducing the paper's
    # finding that the thermally elevated nodes were not the erroring ones.
    error_candidates = np.setdiff1d(selected, hot)
    memory_error_nodes = _select_anomalous(error_candidates, 0.04, rng, minimum=2)
    hw_model = HardwareErrorModel(n_nodes=machine.n_nodes, seed=seed + 2, flaky_fraction=0.0)
    hwlog = hw_model.generate(n_timesteps, hot_nodes=memory_error_nodes.tolist())

    return CaseStudyScenario(
        machine=machine,
        stream=stream,
        joblog=joblog,
        hwlog=hwlog,
        selected_nodes=selected,
        hot_nodes=hot,
        stalled_nodes=stalled,
        initial_steps=initial_steps,
        baseline_range=(46.0, 57.0),
        projects=list(projects),
    )


def build_case_study_2(
    *,
    scale: float = 0.05,
    n_timesteps: int = 3_840,
    seed: int = 23,
    sensor: str = "cpu_temp",
) -> CaseStudyScenario:
    """Case study 2: the whole machine over a hot window then a cool window.

    The paper analyses 16 hours of all 4,392 nodes (two 8-hour windows);
    with a 15 s cadence that is 3,840 snapshots, the default here.  The
    first half carries heavier utilisation and a cooling-degradation-like
    hot bias; the second half cools down.  A small set of nodes persistently
    reports hardware errors across both windows.

    The per-window baseline bands follow the paper's protocol (each window is
    scored against a band matching the machine state at that time) but their
    absolute values are adapted to the synthetic sensor physics (nominal CPU
    temperature 48 degC): the hot window is scored against the lower
    45-60 degC band (so it reads as significantly above baseline, Fig. 6(a)),
    while the cool window is scored against a band containing its own
    operating range (so it reads as near-baseline, Fig. 6(b)).
    """
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    rng = np.random.default_rng(seed)
    machine = theta_machine().scaled(scale) if scale < 1.0 else theta_machine()
    half = n_timesteps // 2

    joblog = simulate_joblog(
        machine.n_nodes,
        n_timesteps,
        seed=seed,
        n_projects=8,
        submit_rate=0.1,
        mean_nodes=max(8, machine.n_nodes // 12),
        mean_duration=n_timesteps // 5,
    )
    all_nodes = np.arange(machine.n_nodes)

    # Hot first half: most nodes elevated; cool second half: back toward idle.
    hot = _select_anomalous(all_nodes, 0.6, rng, minimum=4)
    anomalies: list[Anomaly] = [
        HotNodes(node_indices=tuple(int(n) for n in hot), start=0, stop=half, delta=12.0),
        StalledNodes(
            node_indices=tuple(int(n) for n in _select_anomalous(all_nodes, 0.05, rng)),
            start=half,
            drop=6.0,
        ),
    ]

    util = joblog.utilization_matrix(machine.n_nodes, n_timesteps)
    # Make the second half genuinely quieter.
    util[:, half:] *= 0.45
    generator = TelemetryGenerator(machine, seed=seed + 1, utilization_target=0.8)
    stream = generator.generate(
        n_timesteps,
        sensors=[sensor],
        utilization=util,
        anomalies=anomalies,
    )

    hw_model = HardwareErrorModel(
        n_nodes=machine.n_nodes, seed=seed + 2, flaky_fraction=0.02, flaky_multiplier=30.0
    )
    hwlog = hw_model.generate(n_timesteps, hot_nodes=hot.tolist(), hot_window=(0, half))

    return CaseStudyScenario(
        machine=machine,
        stream=stream,
        joblog=joblog,
        hwlog=hwlog,
        selected_nodes=all_nodes,
        hot_nodes=hot,
        stalled_nodes=np.zeros(0, dtype=int),
        initial_steps=half,
        baseline_range=(45.0, 60.0),
        window_baselines=[(45.0, 60.0), (48.0, 62.0)],
        projects=joblog.projects(),
    )


def build_node_down_scenario(
    *,
    scale: float = 0.5,
    n_timesteps: int = 20_000,
    seed: int = 5,
) -> tuple[MachineDescription, HardwareLog]:
    """Fig. 2's input: a Polaris machine and months of node-down events."""
    if not 0.0 < scale <= 1.0:
        raise ValueError("scale must be in (0, 1]")
    machine = polaris_machine().scaled(scale) if scale < 1.0 else polaris_machine()
    model = HardwareErrorModel(n_nodes=machine.n_nodes, seed=seed)
    # Raise the node-down rate so downtime hours are visible at this scale.
    model.background_rates = dict(model.background_rates)
    from ..hwlog.events import HardwareEventType

    model.background_rates[HardwareEventType.NODE_DOWN] = 1.5
    hwlog = model.generate(n_timesteps)
    return machine, hwlog

"""The online analysis pipeline: stream -> I-mrDMD -> spectrum -> z-scores -> views.

This is the "online analytical system" of the paper's introduction wired
end to end:

1. ingest environment-log snapshots (initial fit + streaming chunks);
2. maintain the I-mrDMD decomposition incrementally;
3. filter the mode spectrum to the configured band / power quantile;
4. reconstruct the denoised signal and score it against baselines
   (z-scores per row, aggregated per node);
5. expose rack-view values, spectrum exports, and multi-log alignment
   reports for the hardware/job logs.

The pipeline object is deliberately stateful (it mirrors a long-running
monitoring service); every analysis product is a method so operators — or
the case-study examples — can pull what they need after any update.
"""

from __future__ import annotations

import itertools
import weakref
from dataclasses import dataclass

import numpy as np

from ..align.report import AlignmentReport, build_alignment_report
from ..align.zscore_map import NodeZScores, map_zscores_to_nodes
from ..core.baseline import BaselineModel, BaselineSpec, ZScoreResult
from ..core.imrdmd import IncrementalMrDMD, TopologyChange, UpdateRecord
from ..core.reconstruction import evaluate_reconstruction, ReconstructionReport
from ..core.spectrum import MrDMDSpectrum
from ..hwlog.events import HardwareLog
from ..obs import OBS
from ..joblog.jobs import JobLog
from ..telemetry.generator import TelemetryStream
from .config import PipelineConfig

__all__ = ["OnlineAnalysisPipeline", "PipelineSnapshot"]

#: Bound on the number of memoised reconstruction windows per pipeline.
#: Rack-view queries cycle through a handful of recent windows (plus the
#: full timeline for baseline fits); a small LRU keeps the win without
#: letting week-scale streams accumulate stale windows.
RECONSTRUCTION_CACHE_SIZE = 8

#: Process-wide source of pipeline stamp tokens (see ``state_stamp``).
_STAMP_TOKENS = itertools.count(1)


@dataclass
class PipelineSnapshot:
    """Analysis products after one update (returned by :meth:`ingest`).

    ``deep_pending`` / ``deep_stale_snapshots`` stamp the deep-level
    staleness under ``config.deep_levels="deferred"``: how many chunks
    still await their levels-2..L recursion and how many trailing
    snapshots the deep levels lag the stream by (both 0 under
    ``"inline"``, where the tree is always current).  They default so
    pickled snapshots from older checkpoints keep loading.
    """

    update: UpdateRecord | None
    n_snapshots: int
    n_modes: int
    reconstruction_error: float | None
    deep_pending: int = 0
    deep_stale_snapshots: int = 0


class OnlineAnalysisPipeline:
    """Streaming analysis of one telemetry matrix.

    Parameters
    ----------
    dt:
        Sampling interval of the incoming snapshots (seconds).
    config:
        :class:`~repro.pipeline.config.PipelineConfig`.
    node_of_row:
        Optional mapping from matrix rows to node indices (e.g.
        ``TelemetryStream.node_indices``); required for per-node products
        (rack values, alignment reports).
    """

    def __init__(
        self,
        dt: float,
        config: PipelineConfig | None = None,
        *,
        node_of_row: np.ndarray | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.model = IncrementalMrDMD(
            dt=dt,
            config=self.config.mrdmd,
            drift_threshold=self.config.drift_threshold,
            # effective_retention is the single source for the
            # keep_data -> policy derivation at the pipeline level.
            retain_data=self.config.effective_retention,
            retain_window=self.config.retain_window,
            level1_path=self.config.level1_path,
            missing_values=self.config.missing_values,
            deep_levels=self.config.deep_levels,
        )
        self.node_of_row = None if node_of_row is None else np.asarray(node_of_row, dtype=int)
        self._baseline: BaselineModel | None = None
        # Provenance of the fitted baseline, for staleness detection: the
        # spec it was fitted with (replayable), whether it was pinned to
        # caller-supplied data (never auto-refit), and the tree revision it
        # saw.  The weakref guards against revision collisions when
        # refresh() swaps in a brand-new tree whose counter restarts.
        self._baseline_spec: BaselineSpec | None = None
        self._baseline_pinned: bool = False
        self._baseline_revision: int | None = None
        self._baseline_tree_ref: weakref.ref | None = None
        # (tree weakref, tree revision, quantile) -> power threshold.
        self._min_power_cache: tuple[weakref.ref, int, float, float] | None = None
        # (revision, window, frequency_range, min_power) -> reconstruction,
        # in LRU order; valid only for the tree in _recon_cache_tree.
        self._recon_cache: dict[tuple, np.ndarray] = {}
        self._recon_cache_tree: weakref.ref | None = None
        # Off by default (one full scan per chunk): supervised fleets turn
        # this on so a poisoned chunk is rejected *before* any model
        # mutation — a rejected ingest leaves the pipeline untouched and
        # therefore retryable / quarantinable without rehydration.
        self.validate_chunks: bool = False
        # Monotonic count of state-bearing mutations (ingests, deep
        # refreshes, topology events, baseline fits).  Combined with the
        # tree revision in state_stamp(), it lets the checkpoint layer
        # prove "nothing state_dict() captures has changed" without
        # serialising anything.
        self._mutations: int = 0
        # Distinguishes stamps across constructed instances: a pipeline
        # rebuilt via from_state_dict restarts its counters and must not
        # collide with a stamp its predecessor issued.  A pickled copy
        # keeps the token deliberately — the round trip is exact, so its
        # stamps remain interchangeable with the original's.
        self._stamp_token: int = next(_STAMP_TOKENS)

    # ------------------------------------------------------------------ #
    # Pickling: memoised products and weakrefs are process-local.  A copy
    # shipped to a shard-executor worker (or a per-ingest pool) rebuilds
    # its caches lazily against its own tree object; the baseline revision
    # itself is a plain int and travels with the (pickled) tree, so
    # staleness decisions stay bit-for-bit identical across backends.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state["_min_power_cache"] = None
        state["_recon_cache"] = {}
        state["_recon_cache_tree"] = None
        state["_baseline_tree_ref"] = None
        # Weakrefs cannot travel, so persist the staleness *verdict*: a
        # baseline that is stale here (including via the refresh()-swap
        # guard, which a revision number alone cannot express) must stay
        # stale in the copy.
        if self.baseline_is_stale():
            state["_baseline_revision"] = None
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        # A non-None revision means the baseline was fresh when pickled,
        # so the copy's current tree is exactly the one it was fitted
        # against — re-anchor the identity guard to it.
        if self._baseline_revision is not None and self.model.fitted:
            self._baseline_tree_ref = weakref.ref(self.model.tree)

    def clear_caches(self) -> None:
        """Drop memoised spectra/reconstruction products (rebuilt lazily)."""
        self._min_power_cache = None
        self._recon_cache = {}
        self._recon_cache_tree = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_stream(
        cls, stream: TelemetryStream, config: PipelineConfig | None = None
    ) -> "OnlineAnalysisPipeline":
        """Convenience constructor wiring ``dt`` and the node mapping from a stream."""
        return cls(dt=stream.dt, config=config, node_of_row=stream.node_indices)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def _reject_poison(self, data: np.ndarray) -> None:
        if not np.isfinite(data).all():
            from ..resilience.faults import PoisonChunkError

            bad = int(data.size - np.isfinite(data).sum())
            raise PoisonChunkError(
                f"chunk contains {bad} non-finite value(s); rejected before "
                "ingest (pipeline state unchanged)"
            )

    def ingest(self, data: np.ndarray) -> PipelineSnapshot:
        """Feed a block of snapshots (initial fit on the first call)."""
        data = np.asarray(data, dtype=float)
        if self.validate_chunks:
            self._reject_poison(data)
        with OBS.span("pipeline.ingest", cols=int(data.shape[-1])):
            if not self.model.fitted:
                with OBS.span("core.fit"):
                    self.model.fit(data)
                update = None
            else:
                with OBS.span("core.partial_fit"):
                    update = self.model.partial_fit(data)
            self._mutations += 1
            return self._snapshot(update)

    def _snapshot(self, update: UpdateRecord | None) -> PipelineSnapshot:
        error = None
        if self.model.retain_data == "all":
            error = self.model.reconstruction_error()
        return PipelineSnapshot(
            update=update,
            n_snapshots=self.model.n_snapshots,
            n_modes=self.model.tree.total_modes,
            reconstruction_error=error,
            deep_pending=self.model.deep_pending,
            deep_stale_snapshots=self.model.deep_stale_snapshots,
        )

    def prepare_ingest(self, data: np.ndarray):
        """Phase one of a batched ingest (see ``FleetMonitor`` batching).

        Returns ``None`` when this chunk is the pipeline's initial fit —
        there is no iSVD update to batch then; the caller falls back to
        plain :meth:`ingest`.  Otherwise returns the model's
        :class:`~repro.core.imrdmd.PreparedChunk`, whose
        ``isvd_update_block`` the caller feeds through the
        :class:`~repro.core.batchops.ShardBatchPlanner` (it reaches the
        model's iSVD via ``pipeline.model.level1_isvd``) before calling
        :meth:`finish_ingest`.
        """
        data = np.asarray(data, dtype=float)
        if self.validate_chunks:
            self._reject_poison(data)
        if not self.model.fitted:
            return None
        return self.model.prepare_partial_fit(data)

    def finish_ingest(self, prepared) -> PipelineSnapshot:
        """Phase two of a batched ingest: everything after the iSVD update.

        Emits the same ``pipeline.ingest`` / ``core.partial_fit`` spans as
        :meth:`ingest`, so per-shard span counts are identical whichever
        dispatch path ran.
        """
        with OBS.span("pipeline.ingest", cols=int(prepared.chunk_size)):
            with OBS.span("core.partial_fit"):
                update = self.model.finish_partial_fit(prepared)
            self._mutations += 1
            return self._snapshot(update)

    def refresh_deep_levels(self, max_entries: int | None = None) -> int:
        """Drain queued deferred deep-level work (off the ingest path).

        Forwards to
        :meth:`~repro.core.imrdmd.IncrementalMrDMD.refresh_deep_levels`;
        the nodes it attaches bump the tree revision, so every memoised
        product (reconstruction windows, power thresholds, staleness-aware
        baselines) invalidates exactly as an inline ingest would have.
        """
        with OBS.span("pipeline.deep_refresh"):
            refreshed = self.model.refresh_deep_levels(max_entries)
        if refreshed:
            self._mutations += 1
        return refreshed

    # ------------------------------------------------------------------ #
    # Elastic topology
    # ------------------------------------------------------------------ #
    def add_sensors(
        self,
        node_of_row: np.ndarray | None = None,
        *,
        history: np.ndarray | None = None,
        n_rows: int | None = None,
    ) -> TopologyChange:
        """Stream new sensor rows into a live pipeline (topology event).

        Extends the I-mrDMD basis via
        :meth:`~repro.core.imrdmd.IncrementalMrDMD.add_rows`, re-derives
        the node/row map, and keeps the fitted baseline usable across the
        event: the *unaffected* rows keep their fitted statistics (the
        grown tree reconstructs them identically — new sensors contribute
        zero mode rows to old windows), while statistics for the new rows
        are fitted fresh from the current reconstruction.  Baselines
        pinned to caller-supplied data cannot be replayed over a grown
        row space and are dropped (the next scoring call fits fresh).

        Parameters
        ----------
        node_of_row:
            Populated-node index per new row; required when the pipeline
            tracks a node/row map, forbidden when it does not.
        history:
            Optional ``(r, T)`` back-filled readings over the full
            ingested timeline (NaN = missing).  Without it the rows join
            *now* at O(r) cost, independent of the stream length; their
            pre-birth timeline reconstructs as zero, so full-timeline
            aggregates dilute young rows — score recent windows
            (``time_range=...``), as the alert engine does.
        n_rows:
            Row count when neither ``node_of_row`` nor ``history`` pins it.
        """
        new_nodes = None
        if node_of_row is not None:
            new_nodes = np.asarray(node_of_row, dtype=int)
            if new_nodes.ndim != 1 or new_nodes.size == 0:
                raise ValueError("node_of_row must be a non-empty 1-D index array")
        if self.node_of_row is not None and new_nodes is None:
            raise ValueError(
                "this pipeline tracks a node/row map: pass node_of_row for the "
                "new rows"
            )
        if self.node_of_row is None and new_nodes is not None:
            raise ValueError(
                "this pipeline has no node/row map; pass history/n_rows only"
            )
        if history is not None:
            history = np.asarray(history, dtype=float)
            if history.ndim == 1:
                history = history[None, :]
        counts = {
            name: count
            for name, count in (
                ("node_of_row", None if new_nodes is None else int(new_nodes.size)),
                ("history", None if history is None else int(history.shape[0])),
                ("n_rows", None if n_rows is None else int(n_rows)),
            )
            if count is not None
        }
        if not counts:
            raise ValueError("pass node_of_row, history or n_rows")
        if len(set(counts.values())) != 1:
            raise ValueError(f"inconsistent new-row counts: {counts}")
        n_rows = next(iter(counts.values()))
        if n_rows < 1:
            raise ValueError("at least one new row is required")

        # Baseline freshness *before* the event (the event itself bumps the
        # tree revision, which must not count as staleness for old rows).
        extendable = (
            self._baseline is not None
            and not self._baseline_pinned
            and not self.baseline_is_stale()
        )
        change = self.model.add_rows(history if history is not None else n_rows)
        if new_nodes is not None:
            self.node_of_row = np.concatenate([self.node_of_row, new_nodes])
        self.clear_caches()

        if self._baseline is None:
            pass
        elif self._baseline_pinned or self.config.baseline_refit == "never":
            # Caller-supplied fit data cannot be replayed over the grown
            # row space, and a "never"-refit baseline would freeze the
            # new rows' placeholder statistics (zero mean, floored std)
            # forever — both drop the baseline; the next scoring call
            # fits a fresh full-width one.
            self._baseline = None
            self._baseline_spec = None
            self._baseline_pinned = False
            self._baseline_revision = None
            self._baseline_tree_ref = None
        else:
            # Under "stale" refit the extension only bridges until the
            # next ingest bumps the revision and triggers the full refit.
            self._extend_baseline(n_rows, fresh=extendable)
        self._mutations += 1
        return change

    def _extend_baseline(self, n_new: int, *, fresh: bool) -> None:
        """Widen the fitted baseline for the rows a topology event added.

        Only the *affected* rows are refitted: new rows get statistics
        from the current reconstruction under the baseline's original
        spec, existing rows keep theirs.  A baseline that was fresh before
        the event is re-anchored to the post-event tree revision (no
        spurious full refit on the next scoring call); one that was
        already stale stays stale.
        """
        old = self._baseline
        spec = self._baseline_spec or BaselineSpec(
            value_range=self.config.baseline_range
        )
        # At event time the new rows reconstruct as exactly zero — no tree
        # node spans them yet (pre-event nodes keep their narrower width,
        # and the event itself adds none) — so their statistics come from
        # a single zero column instead of reconstructing (or even
        # allocating) the timeline: per-row the result is identical (mean
        # 0, std at the fallback floor) and the event stays O(r).  Real
        # statistics arrive with the next refit, once post-event nodes
        # exist.
        grown = BaselineModel.from_data(
            np.zeros((n_new, 1)),
            spec,
            near=self.config.zscore_near,
            extreme=self.config.zscore_extreme,
        )
        self._baseline = BaselineModel(
            np.concatenate([old.mean, grown.mean]),
            np.concatenate([old.std, grown.std]),
            near=old.near,
            extreme=old.extreme,
            std_floor=old.std_floor,
        )
        if fresh and self.model.fitted:
            self._baseline_revision = self.model.tree.revision
            self._baseline_tree_ref = weakref.ref(self.model.tree)

    def is_topology_bearing(self) -> bool:
        """Whether checkpointed state needs an elastic-aware loader."""
        return self.model.fitted and self.model.is_topology_bearing()

    # ------------------------------------------------------------------ #
    # Analysis products
    # ------------------------------------------------------------------ #
    def _min_power_threshold(self) -> float:
        """Power threshold implied by ``config.power_quantile``, cached.

        The quantile only changes when the mode tree does, so the value is
        cached per tree revision — :meth:`spectrum` and
        :meth:`reconstruction` would otherwise rebuild a full
        :class:`MrDMDSpectrum` on every call between updates.
        """
        if self.config.power_quantile <= 0.0:
            return 0.0
        tree = self.model.tree
        revision = tree.revision
        cached = self._min_power_cache
        if (
            cached is not None
            and cached[0]() is tree
            and cached[1] == revision
            and cached[2] == self.config.power_quantile
        ):
            return cached[3]
        full = MrDMDSpectrum(tree)
        threshold = (
            float(np.quantile(full.power, self.config.power_quantile))
            if full.n_modes
            else 0.0
        )
        self._min_power_cache = (
            weakref.ref(tree), revision, self.config.power_quantile, threshold
        )
        return threshold

    def spectrum(self, label: str = "") -> MrDMDSpectrum:
        """The (optionally filtered) mrDMD spectrum of the current tree."""
        spectrum = MrDMDSpectrum(self.model.tree, label=label)
        if self.config.power_quantile > 0.0:
            spectrum = spectrum.filter(min_power=self._min_power_threshold())
        if self.config.frequency_range is not None:
            spectrum = spectrum.filter(self.config.frequency_range)
        return spectrum

    def _normalize_time_range(
        self, time_range: tuple[int, int] | None
    ) -> tuple[int, int] | None:
        """Clamp an absolute window to the ingested timeline (None = full)."""
        if time_range is None:
            return None
        start, stop = time_range
        total = self.model.n_snapshots
        return (min(max(int(start), 0), total), min(max(int(stop), 0), total))

    def _reconstruction_window(
        self, time_range: tuple[int, int] | None
    ) -> np.ndarray:
        """Reconstruction over a (normalised) window, memoised per revision.

        Only modes overlapping the window are expanded (see
        :meth:`MrDMDTree.reconstruct`), and results are cached per
        ``(tree revision, window, filter settings)`` so repeated rack-view
        queries between updates cost a dict lookup.  Callers must not
        mutate the returned array.
        """
        tree = self.model.tree
        if self._recon_cache_tree is None or self._recon_cache_tree() is not tree:
            # refresh() swapped in a new tree (or this is a fresh copy):
            # every cached window belongs to the old one.
            self._recon_cache = {}
            self._recon_cache_tree = weakref.ref(tree)
        key = (
            tree.revision,
            time_range,
            self.config.frequency_range,
            self._min_power_threshold(),
        )
        cached = self._recon_cache.pop(key, None)
        if cached is None:
            cached = tree.reconstruct(
                self.model.n_snapshots,
                time_range=time_range,
                frequency_range=self.config.frequency_range,
                min_power=key[3],
            )
            # Entries from earlier revisions can never hit again.
            stale = [k for k in self._recon_cache if k[0] != tree.revision]
            for k in stale:
                del self._recon_cache[k]
            while len(self._recon_cache) >= RECONSTRUCTION_CACHE_SIZE:
                self._recon_cache.pop(next(iter(self._recon_cache)))
        self._recon_cache[key] = cached  # (re)insert at LRU tail
        return cached

    def reconstruction(
        self, *, time_range: tuple[int, int] | None = None
    ) -> np.ndarray:
        """Denoised reconstruction over the ingested timeline.

        ``time_range`` restricts the output to an absolute ``(start,
        stop)`` snapshot window — column ``j`` of the result equals column
        ``start + j`` of the full reconstruction, but only the modes
        overlapping the window are expanded.
        """
        return self._reconstruction_window(
            self._normalize_time_range(time_range)
        ).copy()

    def reconstruction_report(self, reference: np.ndarray) -> ReconstructionReport:
        """Quality metrics of the current reconstruction against ``reference``."""
        return evaluate_reconstruction(
            self.model.tree,
            np.asarray(reference, dtype=float),
            frequency_range=self.config.frequency_range,
        )

    def fit_baseline(
        self,
        data: np.ndarray | None = None,
        *,
        value_range: tuple[float, float] | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> BaselineModel:
        """Estimate the baseline statistics (from the reconstruction by default).

        A baseline fitted from the reconstruction records the tree revision
        it saw, so later scoring can detect (and, under
        ``config.baseline_refit == "stale"``, repair) staleness as more
        data streams in.  A baseline fitted from caller-supplied ``data``
        is *pinned*: the pipeline cannot replay it, so it is never
        auto-refit.
        """
        pinned = data is not None
        if data is None:
            data = self._reconstruction_window(None)
        spec = BaselineSpec(
            value_range=value_range or self.config.baseline_range,
            time_range=time_range,
        )
        self._baseline = BaselineModel.from_data(
            data,
            spec,
            near=self.config.zscore_near,
            extreme=self.config.zscore_extreme,
        )
        self._baseline_spec = spec
        self._baseline_pinned = pinned
        if self.model.fitted:
            self._baseline_revision = self.model.tree.revision
            self._baseline_tree_ref = weakref.ref(self.model.tree)
        else:
            self._baseline_revision = None
            self._baseline_tree_ref = None
        self._mutations += 1
        return self._baseline

    def baseline_is_stale(self) -> bool:
        """Whether the fitted baseline predates the current mode tree."""
        if self._baseline is None or not self.model.fitted:
            return False
        if self._baseline_revision is None:
            return True
        tree = self.model.tree
        if self._baseline_tree_ref is not None and self._baseline_tree_ref() is not tree:
            return True
        return self._baseline_revision != tree.revision

    def _ensure_baseline(self) -> BaselineModel:
        """Fit the baseline lazily; refit a stale one when configured to."""
        if self._baseline is None:
            self.fit_baseline()
        elif (
            self.config.baseline_refit == "stale"
            and not self._baseline_pinned
            and self.baseline_is_stale()
        ):
            spec = self._baseline_spec or BaselineSpec(
                value_range=self.config.baseline_range
            )
            self.fit_baseline(
                value_range=spec.value_range, time_range=spec.time_range
            )
        return self._baseline

    def zscores(
        self,
        data: np.ndarray | None = None,
        *,
        time_range: tuple[int, int] | None = None,
    ) -> ZScoreResult:
        """Row-level z-scores of (a window of) the reconstruction.

        With the default ``data=None`` only the requested window of the
        reconstruction is expanded (and cached per tree revision), so
        repeated recent-window scoring between updates stops paying
        O(full timeline) per call.  Note that under
        ``config.baseline_refit == "stale"`` the first scoring call after
        a tree update still pays one full-timeline reconstruction to
        refit the baseline (its statistics are defined over the whole
        stream); the reconstruction cache amortises that to once per
        revision — the same per-update cost the pre-windowed code paid on
        *every* call.
        """
        baseline = self._ensure_baseline()
        if data is None:
            window = self._normalize_time_range(time_range)
            if window is not None and window[1] <= window[0]:
                raise ValueError(f"time_range {time_range!r} selects no columns")
            return baseline.score(
                self._reconstruction_window(window),
                reducer=self.config.zscore_reducer,
            )
        return baseline.score(
            data, reducer=self.config.zscore_reducer, time_range=time_range
        )

    def node_zscores(
        self,
        data: np.ndarray | None = None,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> NodeZScores:
        """Per-node aggregated z-scores (requires ``node_of_row``)."""
        if self.node_of_row is None:
            raise RuntimeError("node_of_row is required for per-node z-scores")
        result = self.zscores(data, time_range=time_range)
        return map_zscores_to_nodes(result, self.node_of_row, reducer=reducer)

    def rack_values(
        self,
        *,
        time_range: tuple[int, int] | None = None,
    ) -> dict[int, float]:
        """``{node: zscore}`` dictionary ready for the rack view."""
        return self.node_zscores(time_range=time_range).as_dict()

    # ------------------------------------------------------------------ #
    # Serialisation (checkpoint / restore)
    # ------------------------------------------------------------------ #
    def state_stamp(self) -> tuple:
        """Cheap revision stamp over everything :meth:`state_dict` captures.

        O(1) to compute — no serialisation, no array reads.  Two calls
        returning the same stamp on the *same live pipeline object*
        guarantee the state did not change in between (every mutating
        entry point bumps ``_mutations``); the tree revision and
        snapshot/pending counts ride along as a cross-check.  Stamps are
        only comparable within one pipeline instance: a restored or
        copied pipeline restarts its counter, which at worst costs one
        redundant re-serialisation, never a stale skip.
        """
        if self.model.fitted:
            tree_stamp = (
                self.model.tree.revision,
                self.model.n_snapshots,
                self.model.deep_pending,
            )
        else:
            tree_stamp = (-1, -1, -1)
        return (self._stamp_token, self._mutations) + tree_stamp

    def state_dict(self) -> dict:
        """Full pipeline state as plain containers.

        Captures the configuration, the I-mrDMD model state (when fitted)
        and the fitted baseline, so :meth:`from_state_dict` resumes the
        stream exactly — same spectra, z-scores and subsequent updates as
        an uninterrupted pipeline.
        """
        baseline = None
        if self._baseline is not None:
            spec = self._baseline_spec
            baseline = {
                "mean": self._baseline.mean,
                "std": self._baseline.std,
                "near": self._baseline.near,
                "extreme": self._baseline.extreme,
                "std_floor": self._baseline.std_floor,
                # Provenance for staleness-aware restore.  Tree revision
                # counters do not survive to_dict/from_dict, so freshness
                # is stored as a bool and re-anchored on the rebuilt tree.
                "pinned": self._baseline_pinned,
                "fresh": not self.baseline_is_stale(),
                "spec_value_range": None if spec is None else spec.value_range,
                "spec_time_range": None if spec is None else spec.time_range,
            }
        return {
            "config": self.config.to_dict(),
            "dt": self.model.dt,
            "node_of_row": self.node_of_row,
            "model": self.model.state_dict() if self.model.fitted else None,
            "baseline": baseline,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "OnlineAnalysisPipeline":
        """Rebuild a pipeline from :meth:`state_dict` output."""
        pipeline = cls(
            dt=float(state["dt"]),
            config=PipelineConfig.from_dict(state["config"]),
            node_of_row=state["node_of_row"],
        )
        if state["model"] is not None:
            pipeline.model = IncrementalMrDMD.from_state_dict(state["model"])
        if state["baseline"] is not None:
            b = state["baseline"]
            pipeline._baseline = BaselineModel(
                np.asarray(b["mean"], dtype=float),
                np.asarray(b["std"], dtype=float),
                near=float(b["near"]),
                extreme=float(b["extreme"]),
                std_floor=float(b["std_floor"]),
            )
            pipeline._baseline_pinned = bool(b.get("pinned", False))
            value_range = b.get("spec_value_range")
            time_range = b.get("spec_time_range")
            if value_range is not None or time_range is not None:
                pipeline._baseline_spec = BaselineSpec(
                    value_range=None if value_range is None else tuple(value_range),
                    time_range=None if time_range is None else tuple(time_range),
                )
            if bool(b.get("fresh", True)) and pipeline.model.fitted:
                pipeline._baseline_revision = pipeline.model.tree.revision
                pipeline._baseline_tree_ref = weakref.ref(pipeline.model.tree)
        return pipeline

    def alignment_report(
        self,
        *,
        hwlog: HardwareLog | None = None,
        joblog: JobLog | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> AlignmentReport:
        """Join the current z-scores with the hardware and job logs (Q3)."""
        node_scores = self.node_zscores(time_range=time_range)
        return build_alignment_report(
            node_scores, hwlog=hwlog, joblog=joblog, window=time_range
        )

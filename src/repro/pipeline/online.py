"""The online analysis pipeline: stream -> I-mrDMD -> spectrum -> z-scores -> views.

This is the "online analytical system" of the paper's introduction wired
end to end:

1. ingest environment-log snapshots (initial fit + streaming chunks);
2. maintain the I-mrDMD decomposition incrementally;
3. filter the mode spectrum to the configured band / power quantile;
4. reconstruct the denoised signal and score it against baselines
   (z-scores per row, aggregated per node);
5. expose rack-view values, spectrum exports, and multi-log alignment
   reports for the hardware/job logs.

The pipeline object is deliberately stateful (it mirrors a long-running
monitoring service); every analysis product is a method so operators — or
the case-study examples — can pull what they need after any update.
"""

from __future__ import annotations

import weakref
from dataclasses import dataclass

import numpy as np

from ..align.report import AlignmentReport, build_alignment_report
from ..align.zscore_map import NodeZScores, map_zscores_to_nodes
from ..core.baseline import BaselineModel, BaselineSpec, ZScoreResult
from ..core.imrdmd import IncrementalMrDMD, UpdateRecord
from ..core.reconstruction import evaluate_reconstruction, ReconstructionReport
from ..core.spectrum import MrDMDSpectrum
from ..hwlog.events import HardwareLog
from ..joblog.jobs import JobLog
from ..telemetry.generator import TelemetryStream
from .config import PipelineConfig

__all__ = ["OnlineAnalysisPipeline", "PipelineSnapshot"]


@dataclass
class PipelineSnapshot:
    """Analysis products after one update (returned by :meth:`ingest`)."""

    update: UpdateRecord | None
    n_snapshots: int
    n_modes: int
    reconstruction_error: float | None


class OnlineAnalysisPipeline:
    """Streaming analysis of one telemetry matrix.

    Parameters
    ----------
    dt:
        Sampling interval of the incoming snapshots (seconds).
    config:
        :class:`~repro.pipeline.config.PipelineConfig`.
    node_of_row:
        Optional mapping from matrix rows to node indices (e.g.
        ``TelemetryStream.node_indices``); required for per-node products
        (rack values, alignment reports).
    """

    def __init__(
        self,
        dt: float,
        config: PipelineConfig | None = None,
        *,
        node_of_row: np.ndarray | None = None,
    ) -> None:
        self.config = config or PipelineConfig()
        self.model = IncrementalMrDMD(
            dt=dt,
            config=self.config.mrdmd,
            drift_threshold=self.config.drift_threshold,
            keep_data=self.config.keep_data,
        )
        self.node_of_row = None if node_of_row is None else np.asarray(node_of_row, dtype=int)
        self._baseline: BaselineModel | None = None
        # (tree weakref, tree revision, quantile) -> power threshold; the
        # weakref guards against revision collisions when refresh() swaps
        # in a brand-new tree whose counter restarts.
        self._min_power_cache: tuple[weakref.ref, int, float, float] | None = None

    # ------------------------------------------------------------------ #
    @classmethod
    def from_stream(
        cls, stream: TelemetryStream, config: PipelineConfig | None = None
    ) -> "OnlineAnalysisPipeline":
        """Convenience constructor wiring ``dt`` and the node mapping from a stream."""
        return cls(dt=stream.dt, config=config, node_of_row=stream.node_indices)

    # ------------------------------------------------------------------ #
    # Ingestion
    # ------------------------------------------------------------------ #
    def ingest(self, data: np.ndarray) -> PipelineSnapshot:
        """Feed a block of snapshots (initial fit on the first call)."""
        data = np.asarray(data, dtype=float)
        if not self.model.fitted:
            self.model.fit(data)
            update = None
        else:
            update = self.model.partial_fit(data)
        error = None
        if self.config.keep_data:
            error = self.model.reconstruction_error()
        return PipelineSnapshot(
            update=update,
            n_snapshots=self.model.n_snapshots,
            n_modes=self.model.tree.total_modes,
            reconstruction_error=error,
        )

    # ------------------------------------------------------------------ #
    # Analysis products
    # ------------------------------------------------------------------ #
    def _min_power_threshold(self) -> float:
        """Power threshold implied by ``config.power_quantile``, cached.

        The quantile only changes when the mode tree does, so the value is
        cached per tree revision — :meth:`spectrum` and
        :meth:`reconstruction` would otherwise rebuild a full
        :class:`MrDMDSpectrum` on every call between updates.
        """
        if self.config.power_quantile <= 0.0:
            return 0.0
        tree = self.model.tree
        revision = tree.revision
        cached = self._min_power_cache
        if (
            cached is not None
            and cached[0]() is tree
            and cached[1] == revision
            and cached[2] == self.config.power_quantile
        ):
            return cached[3]
        full = MrDMDSpectrum(tree)
        threshold = (
            float(np.quantile(full.power, self.config.power_quantile))
            if full.n_modes
            else 0.0
        )
        self._min_power_cache = (
            weakref.ref(tree), revision, self.config.power_quantile, threshold
        )
        return threshold

    def spectrum(self, label: str = "") -> MrDMDSpectrum:
        """The (optionally filtered) mrDMD spectrum of the current tree."""
        spectrum = MrDMDSpectrum(self.model.tree, label=label)
        if self.config.power_quantile > 0.0:
            spectrum = spectrum.filter(min_power=self._min_power_threshold())
        if self.config.frequency_range is not None:
            spectrum = spectrum.filter(self.config.frequency_range)
        return spectrum

    def reconstruction(self) -> np.ndarray:
        """Denoised reconstruction over the ingested timeline."""
        return self.model.tree.reconstruct(
            self.model.n_snapshots,
            frequency_range=self.config.frequency_range,
            min_power=self._min_power_threshold(),
        )

    def reconstruction_report(self, reference: np.ndarray) -> ReconstructionReport:
        """Quality metrics of the current reconstruction against ``reference``."""
        return evaluate_reconstruction(
            self.model.tree,
            np.asarray(reference, dtype=float),
            frequency_range=self.config.frequency_range,
        )

    def fit_baseline(
        self,
        data: np.ndarray | None = None,
        *,
        value_range: tuple[float, float] | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> BaselineModel:
        """Estimate the baseline statistics (from the reconstruction by default)."""
        if data is None:
            data = self.reconstruction()
        spec = BaselineSpec(
            value_range=value_range or self.config.baseline_range,
            time_range=time_range,
        )
        self._baseline = BaselineModel.from_data(
            data,
            spec,
            near=self.config.zscore_near,
            extreme=self.config.zscore_extreme,
        )
        return self._baseline

    def zscores(
        self,
        data: np.ndarray | None = None,
        *,
        time_range: tuple[int, int] | None = None,
    ) -> ZScoreResult:
        """Row-level z-scores of (a window of) the reconstruction."""
        if self._baseline is None:
            self.fit_baseline()
        if data is None:
            data = self.reconstruction()
        return self._baseline.score(
            data, reducer=self.config.zscore_reducer, time_range=time_range
        )

    def node_zscores(
        self,
        data: np.ndarray | None = None,
        *,
        time_range: tuple[int, int] | None = None,
        reducer: str = "mean",
    ) -> NodeZScores:
        """Per-node aggregated z-scores (requires ``node_of_row``)."""
        if self.node_of_row is None:
            raise RuntimeError("node_of_row is required for per-node z-scores")
        result = self.zscores(data, time_range=time_range)
        return map_zscores_to_nodes(result, self.node_of_row, reducer=reducer)

    def rack_values(
        self,
        *,
        time_range: tuple[int, int] | None = None,
    ) -> dict[int, float]:
        """``{node: zscore}`` dictionary ready for the rack view."""
        return self.node_zscores(time_range=time_range).as_dict()

    # ------------------------------------------------------------------ #
    # Serialisation (checkpoint / restore)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        """Full pipeline state as plain containers.

        Captures the configuration, the I-mrDMD model state (when fitted)
        and the fitted baseline, so :meth:`from_state_dict` resumes the
        stream exactly — same spectra, z-scores and subsequent updates as
        an uninterrupted pipeline.
        """
        baseline = None
        if self._baseline is not None:
            baseline = {
                "mean": self._baseline.mean,
                "std": self._baseline.std,
                "near": self._baseline.near,
                "extreme": self._baseline.extreme,
                "std_floor": self._baseline.std_floor,
            }
        return {
            "config": self.config.to_dict(),
            "dt": self.model.dt,
            "node_of_row": self.node_of_row,
            "model": self.model.state_dict() if self.model.fitted else None,
            "baseline": baseline,
        }

    @classmethod
    def from_state_dict(cls, state: dict) -> "OnlineAnalysisPipeline":
        """Rebuild a pipeline from :meth:`state_dict` output."""
        pipeline = cls(
            dt=float(state["dt"]),
            config=PipelineConfig.from_dict(state["config"]),
            node_of_row=state["node_of_row"],
        )
        if state["model"] is not None:
            pipeline.model = IncrementalMrDMD.from_state_dict(state["model"])
        if state["baseline"] is not None:
            b = state["baseline"]
            pipeline._baseline = BaselineModel(
                np.asarray(b["mean"], dtype=float),
                np.asarray(b["std"], dtype=float),
                near=float(b["near"]),
                extreme=float(b["extreme"]),
                std_floor=float(b["std_floor"]),
            )
        return pipeline

    def alignment_report(
        self,
        *,
        hwlog: HardwareLog | None = None,
        joblog: JobLog | None = None,
        time_range: tuple[int, int] | None = None,
    ) -> AlignmentReport:
        """Join the current z-scores with the hardware and job logs (Q3)."""
        node_scores = self.node_zscores(time_range=time_range)
        return build_alignment_report(
            node_scores, hwlog=hwlog, joblog=joblog, window=time_range
        )

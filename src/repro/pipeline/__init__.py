"""Online analysis pipeline and case-study scenario builders."""

from .casestudy import (
    CaseStudyScenario,
    build_case_study_1,
    build_case_study_2,
    build_node_down_scenario,
)
from .config import PipelineConfig
from .online import OnlineAnalysisPipeline, PipelineSnapshot

__all__ = [
    "CaseStudyScenario",
    "build_case_study_1",
    "build_case_study_2",
    "build_node_down_scenario",
    "PipelineConfig",
    "OnlineAnalysisPipeline",
    "PipelineSnapshot",
]

"""Content-addressed delta blocks and the asynchronous checkpoint writer.

Checkpointing a fleet rewrites every shard's state on every save, even
though a steady-state ingest round touches a handful of shards (deep
refreshes land asynchronously, quarantined shards do not move at all).
This module supplies the two primitives that make persistence cost
O(changed state) instead of O(total state):

* :class:`BlockStore` — a directory of per-shard state blocks keyed by a
  content digest (:func:`state_digest`).  A delta checkpoint manifest
  lists digests; unchanged shards point at the block the previous
  rotation entry already wrote, so only dirty shards are serialised.
  Blocks are written tmp+rename and are immutable once named, which
  makes concurrent writers (parallel federated machine saves) and torn
  writes safe: the worst case is an orphan block that the next
  :meth:`BlockStore.sweep` reclaims.
* :class:`MemoryBlockStore` — the in-process sibling used by the
  resilience :class:`~repro.resilience.recovery.ShardRecoveryStore`:
  reference-counted, deduplicated snapshots with exact (bit-for-bit)
  round-trip through the same flattened encoding the on-disk format
  uses.
* :class:`AsyncCheckpointWriter` — a bounded-queue background thread
  that takes the hash/compress/write tail of a save off the ingest
  critical path.  ``submit`` returns the stall time actually spent
  waiting for a slot (zero in steady state, non-zero only under
  backpressure), ``flush``/``close`` are barriers that re-raise the
  first deferred write error.

The content digest is computed over the *flattened* state (structure
JSON plus each array's dtype/shape/bytes), never over compressed
``.npz`` bytes: zip containers embed timestamps, so equal states would
hash unequal.  Two saves of an untouched shard therefore produce the
same digest and the second write is skipped entirely.
"""

from __future__ import annotations

import hashlib
import json
import os
import queue
import re
import shutil
import threading
import time
import uuid

import numpy as np

from ..obs import OBS
from ..obs.flight import FLIGHT
from .storage import _flatten_state, _unflatten_state, load_state, save_state

__all__ = [
    "BLOCKS_DIRNAME",
    "AsyncCheckpointWriter",
    "BlockStore",
    "CheckpointWriteError",
    "MemoryBlockStore",
    "copy_state",
    "state_digest",
]

#: Directory name (under a rotation root) that holds the shared blocks.
BLOCKS_DIRNAME = "blocks"

_BLOCK_SUFFIX = ".npz"
_DIGEST_RE = re.compile(r"^[0-9a-f]{64}$")


class CheckpointWriteError(RuntimeError):
    """A deferred (asynchronous) checkpoint write failed.

    Raised from :meth:`AsyncCheckpointWriter.flush` / ``close`` — never
    from the background thread itself, so a failed write surfaces at the
    next barrier instead of killing the ingest loop.
    """


# --------------------------------------------------------------------------- #
# State snapshots
# --------------------------------------------------------------------------- #
def copy_state(obj):
    """Decouple a state tree from live pipeline mutation (arrays copied).

    Checkpoint state dicts are plain containers (dict/list/tuple, arrays,
    scalars — the same vocabulary ``save_state`` flattens), so a targeted
    walk that copies the ndarray leaves and rebuilds the containers is
    equivalent to ``copy.deepcopy`` but without its per-object memo
    bookkeeping — this sits on the synchronous side of an asynchronous
    save, where every millisecond is ingest stall.
    """
    if isinstance(obj, np.ndarray):
        return np.array(obj, copy=True)
    if isinstance(obj, dict):
        return {key: copy_state(value) for key, value in obj.items()}
    if isinstance(obj, list):
        return [copy_state(value) for value in obj]
    if isinstance(obj, tuple):
        return tuple(copy_state(value) for value in obj)
    return obj


# --------------------------------------------------------------------------- #
# Content digest
# --------------------------------------------------------------------------- #
def state_digest(state: dict) -> str:
    """SHA-256 content digest of a (nested) state dict.

    Deterministic for equal states: the structure is serialised with
    sorted keys, and each array contributes its dtype, shape and raw
    bytes in flattening order.  Unlike hashing a ``.npz`` file, this is
    stable across processes and wall-clock time.
    """
    arrays: dict[str, np.ndarray] = {}
    structure = _flatten_state(state, arrays)
    digest = hashlib.sha256()
    digest.update(
        json.dumps(structure, sort_keys=True, separators=(",", ":")).encode()
    )
    for key in sorted(arrays, key=lambda name: int(name.rsplit("_", 1)[1])):
        array = arrays[key]
        digest.update(b"\x00" + key.encode())
        digest.update(b"\x00" + array.dtype.str.encode())
        digest.update(b"\x00" + repr(tuple(array.shape)).encode())
        digest.update(b"\x00" + np.ascontiguousarray(array).tobytes())
    return digest.hexdigest()


# --------------------------------------------------------------------------- #
# On-disk block store
# --------------------------------------------------------------------------- #
class BlockStore:
    """A directory of immutable, content-addressed state blocks.

    Each block is one ``save_state`` container named ``<digest>.npz``.
    Writes go through a uniquely named temp file and an ``os.replace``,
    so concurrent writers of the same block (parallel federated machine
    saves that share a dirty shard) race benignly — last rename wins and
    both names are the same bytes-equal content.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, digest: str) -> str:
        """Absolute path a block with this digest lives at (or would)."""
        return os.path.join(self.root, digest + _BLOCK_SUFFIX)

    def has(self, digest: str) -> bool:
        return os.path.isfile(self.path(digest))

    def put(self, state: dict, digest: str | None = None) -> tuple[str, bool, int]:
        """Store ``state``; returns ``(digest, created, nbytes)``.

        ``created`` is False when the block already existed (the write is
        skipped — content addressing makes this exact, not heuristic).
        Pass ``digest`` when the caller already computed it.
        """
        if digest is None:
            digest = state_digest(state)
        final = self.path(digest)
        if os.path.isfile(final):
            return digest, False, os.path.getsize(final)
        os.makedirs(self.root, exist_ok=True)
        tmp = os.path.join(
            self.root,
            f".tmp-{digest[:16]}-{os.getpid()}-{uuid.uuid4().hex[:8]}{_BLOCK_SUFFIX}",
        )
        try:
            save_state(tmp, state)
            os.replace(tmp, final)
        finally:
            if os.path.exists(tmp):  # failed before the rename
                os.unlink(tmp)
        return digest, True, os.path.getsize(final)

    def load(self, digest: str) -> dict:
        """Load a block back into its state dict (bit-for-bit)."""
        return load_state(self.path(digest))

    def digests(self) -> set[str]:
        """Digests of every complete block currently in the store."""
        if not os.path.isdir(self.root):
            return set()
        found = set()
        for name in os.listdir(self.root):
            if not name.endswith(_BLOCK_SUFFIX):
                continue
            stem = name[: -len(_BLOCK_SUFFIX)]
            if _DIGEST_RE.match(stem):
                found.add(stem)
        return found

    def sweep(self, live: set[str]) -> tuple[int, int]:
        """Remove blocks not in ``live``; returns ``(n_removed, bytes)``.

        Also clears abandoned temp files from interrupted writers.  Call
        only after the manifests referencing ``live`` are durable and
        while no writer targets this store (the checkpoint layer runs it
        after rotation pruning, on the thread that owns the store).
        """
        if not os.path.isdir(self.root):
            return 0, 0
        removed = 0
        freed = 0
        for name in os.listdir(self.root):
            path = os.path.join(self.root, name)
            if name.startswith(".tmp-"):
                try:
                    os.unlink(path)
                except OSError:
                    pass
                continue
            if not name.endswith(_BLOCK_SUFFIX):
                continue
            stem = name[: -len(_BLOCK_SUFFIX)]
            if not _DIGEST_RE.match(stem) or stem in live:
                continue
            try:
                size = os.path.getsize(path)
                os.unlink(path)
            except OSError:
                continue
            removed += 1
            freed += size
        return removed, freed

    def destroy(self) -> None:
        """Remove the whole store directory (used by ``compact``)."""
        if os.path.isdir(self.root):
            shutil.rmtree(self.root, ignore_errors=True)


# --------------------------------------------------------------------------- #
# In-memory block store (resilience snapshots)
# --------------------------------------------------------------------------- #
class MemoryBlockStore:
    """Reference-counted, content-addressed in-memory state blocks.

    Stores the flattened encoding (structure + array copies), so
    :meth:`get` reconstructs a state that is bit-for-bit equal to what
    was put in, decoupled from the live pipeline arrays on both sides.
    Two shards (or two snapshot generations) with identical state share
    one block; ``release`` drops a reference and frees the block when
    the count reaches zero.
    """

    def __init__(self) -> None:
        self._blocks: dict[str, tuple[object, dict[str, np.ndarray]]] = {}
        self._refcounts: dict[str, int] = {}

    def put(self, state: dict) -> tuple[str, bool]:
        """Store ``state`` and take a reference; ``(digest, created)``."""
        arrays: dict[str, np.ndarray] = {}
        structure = _flatten_state(state, arrays)
        digest = state_digest(state)
        created = digest not in self._blocks
        if created:
            self._blocks[digest] = (
                structure,
                {key: np.array(value, copy=True) for key, value in arrays.items()},
            )
            self._refcounts[digest] = 0
        self._refcounts[digest] += 1
        return digest, created

    def get(self, digest: str) -> dict:
        """Reconstruct the stored state (fresh arrays, safe to mutate)."""
        structure, arrays = self._blocks[digest]
        copies = {key: np.array(value, copy=True) for key, value in arrays.items()}
        return _unflatten_state(structure, copies)

    def has(self, digest: str) -> bool:
        return digest in self._blocks

    def refcount(self, digest: str) -> int:
        return self._refcounts.get(digest, 0)

    def retain(self, digest: str) -> None:
        """Take an extra reference on an existing block."""
        if digest not in self._refcounts:
            raise KeyError(digest)
        self._refcounts[digest] += 1

    def release(self, digest: str) -> bool:
        """Drop one reference; returns True when the block was freed."""
        count = self._refcounts.get(digest)
        if count is None:
            return False
        if count <= 1:
            del self._refcounts[digest]
            del self._blocks[digest]
            return True
        self._refcounts[digest] = count - 1
        return False

    def __len__(self) -> int:
        return len(self._blocks)

    @property
    def nbytes(self) -> int:
        """Total bytes held by stored arrays (dedup counted once)."""
        return sum(
            array.nbytes
            for _, arrays in self._blocks.values()
            for array in arrays.values()
        )


# --------------------------------------------------------------------------- #
# Asynchronous writer
# --------------------------------------------------------------------------- #
class AsyncCheckpointWriter:
    """Bounded-queue background thread for deferred checkpoint commits.

    ``submit(job)`` enqueues a zero-argument callable and returns the
    seconds the caller stalled waiting for a queue slot (0.0 unless the
    writer is saturated — that stall *is* the backpressure, bounding how
    far persistence can fall behind ingest).  Jobs run FIFO on one
    daemon thread, so rotation ordering is preserved.  Exceptions are
    deferred and re-raised (wrapped in :class:`CheckpointWriteError`)
    from the next :meth:`flush` or :meth:`close`.
    """

    def __init__(self, max_pending: int = 2, name: str = "checkpoint-writer") -> None:
        if max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {max_pending}")
        self.name = name
        self._queue: queue.Queue = queue.Queue(maxsize=max_pending)
        self._thread: threading.Thread | None = None
        self._lock = threading.Lock()
        self._errors: list[BaseException] = []
        self._closed = False

    @property
    def max_pending(self) -> int:
        return self._queue.maxsize

    @property
    def queue_depth(self) -> int:
        """Commits currently enqueued (not counting one mid-write)."""
        return self._queue.qsize()

    @property
    def closed(self) -> bool:
        return self._closed

    def _ensure_thread(self) -> None:
        with self._lock:
            if self._closed:
                raise CheckpointWriteError(f"writer {self.name!r} is closed")
            if self._thread is None or not self._thread.is_alive():
                self._thread = threading.Thread(
                    target=self._drain, name=self.name, daemon=True
                )
                self._thread.start()

    def _drain(self) -> None:
        while True:
            item = self._queue.get()
            try:
                if item is None:
                    return
                job, label = item
                try:
                    with OBS.span("checkpoint.write", label=label):
                        job()
                except BaseException as exc:  # deferred to the next barrier
                    with self._lock:
                        self._errors.append(exc)
                    if OBS.enabled:
                        OBS.inc("checkpoint.writer.errors")
                    FLIGHT.record_note(
                        "checkpoint_write_failed", label=label, error=repr(exc)
                    )
                    FLIGHT.dump("checkpoint_write_failed")
            finally:
                self._queue.task_done()

    def submit(self, job, *, label: str = "checkpoint") -> float:
        """Enqueue a commit; returns seconds stalled on backpressure."""
        self._ensure_thread()
        stalled = 0.0
        try:
            self._queue.put_nowait((job, label))
        except queue.Full:
            if OBS.enabled:
                OBS.inc("checkpoint.writer.saturated")
            FLIGHT.record_note(
                "checkpoint_writer_saturated",
                label=label,
                max_pending=self._queue.maxsize,
            )
            start = time.perf_counter()
            self._queue.put((job, label))
            stalled = time.perf_counter() - start
        if OBS.enabled:
            OBS.gauge("checkpoint.writer.queue_depth", float(self._queue.qsize()))
        return stalled

    def _raise_pending(self) -> None:
        with self._lock:
            errors, self._errors = self._errors, []
        if errors:
            raise CheckpointWriteError(
                f"{len(errors)} asynchronous checkpoint write(s) failed; "
                f"first: {errors[0]!r}"
            ) from errors[0]

    def flush(self) -> None:
        """Block until every submitted commit finished; raise deferred errors."""
        self._queue.join()
        self._raise_pending()

    def close(self, *, flush: bool = True) -> None:
        """Drain the queue, stop the thread, and (by default) raise errors."""
        with self._lock:
            already = self._closed
            self._closed = True
            thread = self._thread
            self._thread = None
        if not already and thread is not None and thread.is_alive():
            self._queue.put(None)
            thread.join()
        if flush:
            self._raise_pending()

"""On-disk formats for telemetry, job/hardware logs, and mrDMD trees.

A deployed monitoring pipeline has to persist two very different things:

* the *raw-ish* inputs (telemetry matrices, job records, hardware events) —
  stored here as compressed ``.npz`` (numeric) and JSON-lines (records), the
  formats a facility's collectors most easily produce; and
* the *analysis state* — the mrDMD mode tree, which is the paper's
  "terabytes to megabytes" compressed summary and the thing an operator
  would archive per analysis window.

All functions take/return the in-memory objects used throughout the package,
round-trip exactly (asserted by the tests), and avoid any dependency beyond
NumPy and the standard library.
"""

from __future__ import annotations

import json
import os

import numpy as np

from ..core.tree import MrDMDTree
from ..hwlog.events import HardwareEvent, HardwareEventType, HardwareLog
from ..joblog.jobs import JobLog, JobRecord
from ..telemetry.generator import TelemetryStream
from ..telemetry.machine import MachineDescription

__all__ = [
    "save_telemetry",
    "load_telemetry",
    "save_job_log",
    "load_job_log",
    "save_hardware_log",
    "load_hardware_log",
    "save_tree",
    "load_tree",
    "save_state",
    "load_state",
]


# --------------------------------------------------------------------------- #
# Telemetry (.npz)
# --------------------------------------------------------------------------- #
def save_telemetry(path: str, stream: TelemetryStream) -> str:
    """Write a telemetry stream to a compressed ``.npz`` file.

    The machine description is stored as its layout-spec string plus the
    handful of fields the loader needs to rebuild an equivalent (not
    necessarily identical) :class:`MachineDescription`; sensor suites are
    not serialised (they are code, not data).
    """
    np.savez_compressed(
        path,
        values=stream.values,
        dt=np.array([stream.dt]),
        sensor_names=np.asarray(stream.sensor_names, dtype=str),
        node_indices=stream.node_indices,
        start_step=np.array([stream.start_step]),
        machine_name=np.array([stream.machine.name]),
        machine_layout=np.array([stream.machine.layout_spec()]),
        machine_n_nodes=np.array([stream.machine.n_nodes]),
    )
    return path


def load_telemetry(path: str, machine: MachineDescription) -> TelemetryStream:
    """Load a telemetry stream saved by :func:`save_telemetry`.

    ``machine`` must be supplied by the caller (the file stores only the
    layout string for cross-checking); a mismatch in node count raises.
    """
    with np.load(path, allow_pickle=False) as payload:
        n_nodes = int(payload["machine_n_nodes"][0])
        if n_nodes != machine.n_nodes:
            raise ValueError(
                f"file was generated for a {n_nodes}-node machine, "
                f"got a {machine.n_nodes}-node description"
            )
        return TelemetryStream(
            values=payload["values"],
            dt=float(payload["dt"][0]),
            sensor_names=payload["sensor_names"].astype(object),
            node_indices=payload["node_indices"],
            machine=machine,
            utilization=None,
            start_step=int(payload["start_step"][0]),
        )


# --------------------------------------------------------------------------- #
# Job log (JSON lines)
# --------------------------------------------------------------------------- #
def save_job_log(path: str, joblog: JobLog) -> str:
    """Write a job log as JSON lines (one record per line)."""
    with open(path, "w", encoding="utf-8") as handle:
        for record in joblog:
            handle.write(json.dumps({
                "job_id": record.job_id,
                "project": record.project,
                "user": record.user,
                "nodes": list(record.nodes),
                "submit_step": record.submit_step,
                "start_step": record.start_step,
                "end_step": record.end_step,
                "requested_steps": record.requested_steps,
                "exit_status": record.exit_status,
            }) + "\n")
    return path


def load_job_log(path: str) -> JobLog:
    """Load a job log written by :func:`save_job_log`."""
    records = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            records.append(JobRecord(
                job_id=int(raw["job_id"]),
                project=str(raw["project"]),
                user=str(raw["user"]),
                nodes=tuple(int(n) for n in raw["nodes"]),
                submit_step=int(raw["submit_step"]),
                start_step=int(raw["start_step"]),
                end_step=None if raw["end_step"] is None else int(raw["end_step"]),
                requested_steps=int(raw["requested_steps"]),
                exit_status=int(raw["exit_status"]),
            ))
    return JobLog(records)


# --------------------------------------------------------------------------- #
# Hardware log (JSON lines)
# --------------------------------------------------------------------------- #
def save_hardware_log(path: str, hwlog: HardwareLog) -> str:
    """Write a hardware-event log as JSON lines."""
    with open(path, "w", encoding="utf-8") as handle:
        for event in hwlog:
            handle.write(json.dumps({
                "node": event.node,
                "event_type": event.event_type.value,
                "start_step": event.start_step,
                "end_step": event.end_step,
                "severity": event.severity,
                "message": event.message,
            }) + "\n")
    return path


def load_hardware_log(path: str) -> HardwareLog:
    """Load a hardware-event log written by :func:`save_hardware_log`."""
    events = []
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            raw = json.loads(line)
            events.append(HardwareEvent(
                node=int(raw["node"]),
                event_type=HardwareEventType(raw["event_type"]),
                start_step=int(raw["start_step"]),
                end_step=int(raw["end_step"]),
                severity=int(raw["severity"]),
                message=str(raw.get("message", "")),
            ))
    return HardwareLog(events)


# --------------------------------------------------------------------------- #
# Generic nested state (.npz) — the service checkpoint format
# --------------------------------------------------------------------------- #
def _flatten_state(obj, arrays: dict[str, np.ndarray]):
    """JSON-safe mirror of ``obj`` with arrays swapped for ``.npz`` keys."""
    if isinstance(obj, np.ndarray):
        key = f"array_{len(arrays)}"
        arrays[key] = obj
        return {"__array__": key}
    if isinstance(obj, np.generic):
        obj = obj.item()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, tuple):
        return {"__tuple__": [_flatten_state(v, arrays) for v in obj]}
    if isinstance(obj, list):
        return [_flatten_state(v, arrays) for v in obj]
    if isinstance(obj, dict):
        out = {}
        for key, value in obj.items():
            if not isinstance(key, str):
                raise TypeError(f"state dict keys must be strings, got {key!r}")
            if key.startswith("__"):
                raise ValueError(f"state dict keys must not start with '__': {key!r}")
            out[key] = _flatten_state(value, arrays)
        return out
    raise TypeError(f"cannot serialise object of type {type(obj).__name__} in state")


def _unflatten_state(obj, arrays):
    if isinstance(obj, dict):
        if "__array__" in obj:
            return arrays[obj["__array__"]]
        if "__tuple__" in obj:
            return tuple(_unflatten_state(v, arrays) for v in obj["__tuple__"])
        return {key: _unflatten_state(value, arrays) for key, value in obj.items()}
    if isinstance(obj, list):
        return [_unflatten_state(v, arrays) for v in obj]
    return obj


def save_state(path: str, state: dict) -> str:
    """Write an arbitrarily nested state dict to one compressed ``.npz``.

    ``state`` may mix NumPy arrays (any dtype, stored losslessly) with
    JSON-representable scalars, ``None``, lists, tuples and string-keyed
    dicts.  This is the container format for every service checkpoint
    artifact (per-shard pipeline state, iSVD factors, baselines); tuples
    survive the round trip, unlike a plain JSON dump.

    Returns the path actually written: ``np.savez`` appends ``.npz`` when
    the suffix is missing, and the return value reflects that, so
    ``load_state(save_state(path, state))`` always works.
    """
    if not path.endswith(".npz"):
        path = path + ".npz"
    arrays: dict[str, np.ndarray] = {}
    structure = _flatten_state(state, arrays)
    arrays["state_json"] = np.array([json.dumps(structure)])
    np.savez_compressed(path, **arrays)
    return path


def load_state(path: str) -> dict:
    """Inverse of :func:`save_state` (arrays come back bit-for-bit)."""
    with np.load(path, allow_pickle=False) as payload:
        structure = json.loads(str(payload["state_json"][0]))
        arrays = {key: payload[key] for key in payload.files if key != "state_json"}
    return _unflatten_state(structure, arrays)


# --------------------------------------------------------------------------- #
# mrDMD tree (.npz)
# --------------------------------------------------------------------------- #
def save_tree(path: str, tree: MrDMDTree) -> str:
    """Write an mrDMD tree to a compressed ``.npz`` file.

    This is the "megabytes instead of terabytes" artifact: the modes,
    eigenvalues and amplitudes of every node, plus the window metadata,
    from which the denoised signal can be reconstructed at any time.
    """
    payload = tree.to_dict()
    arrays: dict[str, np.ndarray] = {
        "dt": np.array([payload["dt"]]),
        "n_features": np.array([payload["n_features"]]),
        "n_nodes": np.array([len(payload["nodes"])]),
    }
    meta = []
    for i, node in enumerate(payload["nodes"]):
        arrays[f"modes_{i}"] = np.asarray(node["modes"], dtype=complex)
        arrays[f"eigenvalues_{i}"] = np.asarray(node["eigenvalues"], dtype=complex)
        arrays[f"amplitudes_{i}"] = np.asarray(node["amplitudes"], dtype=complex)
        meta.append({
            key: node[key]
            for key in ("level", "bin_index", "start", "n_snapshots", "dt", "step",
                        "rho", "svd_rank", "contribution_start", "contribution_end")
        })
    arrays["meta_json"] = np.array([json.dumps(meta)])
    np.savez_compressed(path, **arrays)
    return path


def load_tree(path: str) -> MrDMDTree:
    """Load an mrDMD tree written by :func:`save_tree`."""
    with np.load(path, allow_pickle=False) as payload:
        meta = json.loads(str(payload["meta_json"][0]))
        nodes = []
        for i, node_meta in enumerate(meta):
            node = dict(node_meta)
            node["modes"] = payload[f"modes_{i}"]
            node["eigenvalues"] = payload[f"eigenvalues_{i}"]
            node["amplitudes"] = payload[f"amplitudes_{i}"]
            nodes.append(node)
        return MrDMDTree.from_dict({
            "dt": float(payload["dt"][0]),
            "n_features": int(payload["n_features"][0]),
            "nodes": nodes,
        })

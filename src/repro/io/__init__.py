"""Persistence of logs, telemetry and decomposition results."""

from .delta import (
    AsyncCheckpointWriter,
    BlockStore,
    CheckpointWriteError,
    MemoryBlockStore,
    state_digest,
)
from .storage import (
    load_hardware_log,
    load_job_log,
    load_state,
    load_telemetry,
    load_tree,
    save_hardware_log,
    save_job_log,
    save_state,
    save_telemetry,
    save_tree,
)

__all__ = [
    "AsyncCheckpointWriter",
    "BlockStore",
    "CheckpointWriteError",
    "MemoryBlockStore",
    "state_digest",
    "load_hardware_log",
    "load_job_log",
    "load_state",
    "load_telemetry",
    "load_tree",
    "save_hardware_log",
    "save_job_log",
    "save_state",
    "save_telemetry",
    "save_tree",
]

"""Colour maps for the rack and spectrum views.

The paper colours node z-scores with the **Turbo** map used divergingly
("blue hues representing negative z-scores, green representing baseline and
red hues showing more positive z-scores", Sec. V).  Turbo is implemented
with Google's published polynomial approximation so no plotting library is
required; values are mapped to ``#rrggbb`` strings for the SVG renderer and
to a small palette of glyphs for the ASCII renderer.
"""

from __future__ import annotations

import numpy as np

__all__ = ["turbo_rgb", "to_hex", "DivergingTurbo"]


# Coefficients of Google's 5th-order polynomial approximation of Turbo
# (Anton Mikhailov, 2019).
_R_COEF = (0.13572138, 4.61539260, -42.66032258, 132.13108234, -152.94239396, 59.28637943)
_G_COEF = (0.09140261, 2.19418839, 4.84296658, -14.18503333, 4.27729857, 2.82956604)
_B_COEF = (0.10667330, 12.64194608, -60.58204836, 110.36276771, -89.90310912, 27.34824973)


def _poly(x: np.ndarray, coef: tuple[float, ...]) -> np.ndarray:
    out = np.zeros_like(x)
    for power, c in enumerate(coef):
        out += c * x**power
    return out


def turbo_rgb(values: np.ndarray | float) -> np.ndarray:
    """Map values in ``[0, 1]`` to RGB triples in ``[0, 1]`` (Turbo).

    Scalars return shape ``(3,)``; arrays return ``(..., 3)``.  Inputs are
    clipped into the valid range.
    """
    x = np.clip(np.asarray(values, dtype=float), 0.0, 1.0)
    rgb = np.stack(
        [_poly(x, _R_COEF), _poly(x, _G_COEF), _poly(x, _B_COEF)], axis=-1
    )
    return np.clip(rgb, 0.0, 1.0)


def to_hex(rgb: np.ndarray) -> str:
    """Convert one RGB triple in ``[0, 1]`` to an ``#rrggbb`` string."""
    rgb = np.clip(np.asarray(rgb, dtype=float), 0.0, 1.0)
    if rgb.shape != (3,):
        raise ValueError(f"expected an RGB triple, got shape {rgb.shape!r}")
    r, g, b = (int(round(c * 255)) for c in rgb)
    return f"#{r:02x}{g:02x}{b:02x}"


class DivergingTurbo:
    """Diverging use of Turbo centred on zero (the Figs. 4/6 scale).

    Values are mapped linearly from ``[-limit, +limit]`` to the ``[0, 1]``
    domain of Turbo, so strongly negative z-scores land in the blue end,
    zero in the green middle, and strongly positive in the red end.  Values
    beyond the limit saturate.
    """

    def __init__(self, limit: float = 5.0) -> None:
        if limit <= 0:
            raise ValueError("limit must be positive")
        self.limit = float(limit)

    def normalize(self, values: np.ndarray | float) -> np.ndarray:
        """Map raw values to the ``[0, 1]`` colormap domain."""
        v = np.asarray(values, dtype=float)
        return np.clip((v + self.limit) / (2.0 * self.limit), 0.0, 1.0)

    def rgb(self, values: np.ndarray | float) -> np.ndarray:
        """RGB triples for raw (un-normalised) values."""
        return turbo_rgb(self.normalize(values))

    def hex(self, value: float) -> str:
        """``#rrggbb`` colour for one raw value."""
        return to_hex(turbo_rgb(float(self.normalize(value))))

    def glyph(self, value: float) -> str:
        """Single-character glyph for ASCII rendering.

        ``.`` near baseline, ``-``/``=`` cool, ``+``/``#`` hot, matching the
        sign convention of the colour scale.
        """
        v = float(value)
        if v > self.limit * 0.4:
            return "#"
        if v > self.limit * 0.2:
            return "+"
        if v < -self.limit * 0.4:
            return "="
        if v < -self.limit * 0.2:
            return "-"
        return "."

"""mrDMD spectrum plots (Figs. 5 and 7): mode amplitude vs frequency.

Consumes the plain-data export of :class:`repro.core.spectrum.MrDMDSpectrum`
and renders a scatter SVG; several spectra can be overlaid with different
colours (Fig. 7 overlays the "hotter" and "cooler" 8-hour windows).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.spectrum import MrDMDSpectrum
from .svg import SVGCanvas

__all__ = ["SpectrumPlot"]


@dataclass
class SpectrumPlot:
    """Scatter plot of mode amplitude (or power) against frequency."""

    width: float = 640.0
    height: float = 320.0
    palette: tuple[str, ...] = ("#d62728", "#1f77b4", "#2ca02c", "#9467bd")
    use_power: bool = False

    def render_svg(
        self,
        spectra: list[MrDMDSpectrum] | MrDMDSpectrum,
        *,
        title: str = "",
        frequency_limit: float | None = None,
    ) -> str:
        """Render one or more spectra; each gets its own colour and legend entry."""
        if isinstance(spectra, MrDMDSpectrum):
            spectra = [spectra]
        if not spectra:
            raise ValueError("at least one spectrum is required")

        margin = 48.0
        plot_w = self.width - 2 * margin
        plot_h = self.height - 2 * margin
        canvas = SVGCanvas(self.width, self.height)
        if title:
            canvas.text(margin, 18, title, size=13.0)

        def values_of(spec: MrDMDSpectrum) -> np.ndarray:
            return spec.power if self.use_power else spec.amplitudes

        all_freq = np.concatenate([s.frequencies for s in spectra]) if any(
            len(s) for s in spectra
        ) else np.zeros(1)
        all_val = np.concatenate([values_of(s) for s in spectra]) if any(
            len(s) for s in spectra
        ) else np.zeros(1)
        f_max = frequency_limit if frequency_limit is not None else float(all_freq.max() or 1.0)
        f_max = max(f_max, 1e-12)
        v_max = float(all_val.max()) if all_val.size else 1.0
        v_max = max(v_max, 1e-12)

        # Axes.
        canvas.line(margin, margin, margin, margin + plot_h, stroke="#333333")
        canvas.line(margin, margin + plot_h, margin + plot_w, margin + plot_h, stroke="#333333")
        canvas.text(margin + plot_w / 2, self.height - 8, "Frequency (Hz)", size=11.0, anchor="middle")
        canvas.text(
            margin, margin - 6,
            "mrDMD mode power" if self.use_power else "I-mrDMD mode amplitudes",
            size=11.0,
        )
        canvas.text(margin, margin + plot_h + 16, "0", size=9.0)
        canvas.text(margin + plot_w, margin + plot_h + 16, f"{f_max:.3g}", size=9.0, anchor="end")
        canvas.text(margin - 4, margin + 8, f"{v_max:.3g}", size=9.0, anchor="end")

        for idx, spec in enumerate(spectra):
            color = self.palette[idx % len(self.palette)]
            vals = values_of(spec)
            for f, v in zip(spec.frequencies, vals):
                if frequency_limit is not None and f > frequency_limit:
                    continue
                x = margin + min(f / f_max, 1.0) * plot_w
                y = margin + plot_h - min(v / v_max, 1.0) * plot_h
                canvas.circle(x, y, 3.0, fill=color, opacity=0.75)
            label = spec.label or f"spectrum {idx + 1}"
            canvas.text(
                margin + plot_w - 4, margin + 14 + 12 * idx, label, size=10.0, fill=color, anchor="end"
            )
        return canvas.render()

    def save_svg(self, path: str, spectra, **kwargs) -> str:
        """Render and write to ``path``."""
        content = self.render_svg(spectra, **kwargs)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        return path

"""Minimal SVG document builder.

The paper renders its views with D3 inside Jupyter; in this reproduction
the same information is written as standalone SVG files (testable, diffable,
viewable in any browser) without pulling in a plotting dependency.  Only the
handful of primitives the rack/time-series/spectrum views need are exposed.
"""

from __future__ import annotations

from xml.sax.saxutils import escape

__all__ = ["SVGCanvas"]


class SVGCanvas:
    """Accumulates SVG elements and serialises a standalone document."""

    def __init__(self, width: float, height: float, *, background: str | None = "#ffffff") -> None:
        if width <= 0 or height <= 0:
            raise ValueError("width and height must be positive")
        self.width = float(width)
        self.height = float(height)
        self._elements: list[str] = []
        if background:
            self.rect(0, 0, width, height, fill=background, stroke="none")

    # ------------------------------------------------------------------ #
    def rect(
        self,
        x: float,
        y: float,
        width: float,
        height: float,
        *,
        fill: str = "#cccccc",
        stroke: str = "#000000",
        stroke_width: float = 0.0,
        title: str | None = None,
    ) -> None:
        """Add a rectangle (``title`` becomes a hover tooltip in browsers)."""
        title_el = f"<title>{escape(title)}</title>" if title else ""
        self._elements.append(
            f'<rect x="{x:.3f}" y="{y:.3f}" width="{width:.3f}" height="{height:.3f}" '
            f'fill="{fill}" stroke="{stroke}" stroke-width="{stroke_width:.3f}">'
            f"{title_el}</rect>"
        )

    def circle(
        self,
        cx: float,
        cy: float,
        radius: float,
        *,
        fill: str = "#000000",
        opacity: float = 1.0,
        title: str | None = None,
    ) -> None:
        """Add a circle marker."""
        title_el = f"<title>{escape(title)}</title>" if title else ""
        self._elements.append(
            f'<circle cx="{cx:.3f}" cy="{cy:.3f}" r="{radius:.3f}" fill="{fill}" '
            f'opacity="{opacity:.3f}">{title_el}</circle>'
        )

    def line(
        self,
        x1: float,
        y1: float,
        x2: float,
        y2: float,
        *,
        stroke: str = "#000000",
        stroke_width: float = 1.0,
    ) -> None:
        """Add a straight line segment."""
        self._elements.append(
            f'<line x1="{x1:.3f}" y1="{y1:.3f}" x2="{x2:.3f}" y2="{y2:.3f}" '
            f'stroke="{stroke}" stroke-width="{stroke_width:.3f}"/>'
        )

    def polyline(
        self,
        points: list[tuple[float, float]],
        *,
        stroke: str = "#1f77b4",
        stroke_width: float = 1.0,
    ) -> None:
        """Add an open polyline through the given points."""
        if len(points) < 2:
            raise ValueError("polyline needs at least two points")
        path = " ".join(f"{x:.3f},{y:.3f}" for x, y in points)
        self._elements.append(
            f'<polyline points="{path}" fill="none" stroke="{stroke}" '
            f'stroke-width="{stroke_width:.3f}"/>'
        )

    def text(
        self,
        x: float,
        y: float,
        content: str,
        *,
        size: float = 12.0,
        fill: str = "#000000",
        anchor: str = "start",
    ) -> None:
        """Add a text label."""
        self._elements.append(
            f'<text x="{x:.3f}" y="{y:.3f}" font-size="{size:.2f}" fill="{fill}" '
            f'text-anchor="{anchor}" font-family="sans-serif">{escape(content)}</text>'
        )

    # ------------------------------------------------------------------ #
    def render(self) -> str:
        """Serialise the document."""
        body = "\n  ".join(self._elements)
        return (
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{self.width:.0f}" '
            f'height="{self.height:.0f}" viewBox="0 0 {self.width:.3f} {self.height:.3f}">\n'
            f"  {body}\n</svg>\n"
        )

    def save(self, path: str) -> str:
        """Write the document to ``path`` and return the path."""
        content = self.render()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        return path

    @property
    def n_elements(self) -> int:
        """Number of drawn elements (excluding the background)."""
        return len(self._elements)

"""Rack-layout view: per-node values painted on the machine's floor plan.

This is the reproduction of the paper's D3/Jupyter rack visualization
(Figs. 2, 4 and 6): every node is drawn at its physical position, coloured
by a per-node value (z-score, temperature, down-hours, ...), with optional
outlines marking nodes that also appear in the hardware log ("the nodes
highlighted in red outline are the ones showing correctable memory issues").

Two renderers share the same geometry: an SVG file for inspection in a
browser, and a compact ASCII rendering for terminals and tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from .colormap import DivergingTurbo
from .layout import RackLayout
from .svg import SVGCanvas

__all__ = ["RackView"]


@dataclass
class RackView:
    """Renderer of per-node values on a :class:`~repro.viz.layout.RackLayout`.

    Attributes
    ----------
    layout:
        Node geometry (from a layout-spec string or a machine description).
    colormap:
        Diverging Turbo mapping; its ``limit`` is the +/- z-score range of
        the colour bar (5 in the paper's figures).
    cell_pixels:
        Pixel size of one node rectangle in the SVG output.
    title:
        Title drawn at the top of the SVG.
    """

    layout: RackLayout
    colormap: DivergingTurbo = field(default_factory=lambda: DivergingTurbo(limit=5.0))
    cell_pixels: float = 10.0
    title: str = ""

    # ------------------------------------------------------------------ #
    def _values_array(self, values: Mapping[int, float] | np.ndarray) -> np.ndarray:
        """Normalise the input into a dense per-node array (NaN = missing)."""
        n = self.layout.n_nodes
        out = np.full(n, np.nan)
        if isinstance(values, Mapping):
            for node, value in values.items():
                if 0 <= int(node) < n:
                    out[int(node)] = float(value)
        else:
            arr = np.asarray(values, dtype=float)
            if arr.ndim != 1:
                raise ValueError("values array must be 1-D")
            limit = min(arr.size, n)
            out[:limit] = arr[:limit]
        return out

    # ------------------------------------------------------------------ #
    def render_svg(
        self,
        values: Mapping[int, float] | np.ndarray,
        *,
        outlined_nodes: Sequence[int] = (),
        secondary_outlined_nodes: Sequence[int] = (),
        missing_color: str = "#e8e8e8",
        node_names: Sequence[str] | None = None,
    ) -> str:
        """Render the rack view as an SVG string.

        Parameters
        ----------
        values:
            Per-node values (dict or dense array); NaN / missing nodes are
            drawn in ``missing_color``.
        outlined_nodes:
            Nodes drawn with a heavy red outline (e.g. correctable memory
            errors, Fig. 4).
        secondary_outlined_nodes:
            Nodes drawn with a black outline (e.g. persistent hardware
            errors, Fig. 6).
        node_names:
            Optional per-node names used as hover tooltips.
        """
        vals = self._values_array(values)
        scale = self.cell_pixels
        width, height = self.layout.bounds
        margin = 2 * scale
        canvas = SVGCanvas(width * scale + 2 * margin, height * scale + 2 * margin + 20)
        if self.title:
            canvas.text(margin, 14, self.title, size=14.0)
        outline_set = {int(n) for n in outlined_nodes}
        secondary_set = {int(n) for n in secondary_outlined_nodes}

        for geom in self.layout.geometries:
            value = vals[geom.index]
            if np.isnan(value):
                fill = missing_color
            else:
                fill = self.colormap.hex(value)
            stroke, stroke_width = "#ffffff", 0.3
            if geom.index in outline_set:
                stroke, stroke_width = "#cc0000", 1.6
            elif geom.index in secondary_set:
                stroke, stroke_width = "#000000", 1.4
            name = (
                node_names[geom.index]
                if node_names is not None and geom.index < len(node_names)
                else f"node {geom.index}"
            )
            title = f"{name}: {value:.2f}" if not np.isnan(value) else f"{name}: n/a"
            canvas.rect(
                margin + geom.x * scale,
                20 + margin + geom.y * scale,
                geom.width * scale,
                geom.height * scale,
                fill=fill,
                stroke=stroke,
                stroke_width=stroke_width,
                title=title,
            )
        self._draw_colorbar(canvas, margin)
        return canvas.render()

    def _draw_colorbar(self, canvas: SVGCanvas, margin: float) -> None:
        """Horizontal colour bar with the +/- limit labels (bottom-left)."""
        bar_width, bar_height = 120.0, 8.0
        x0 = margin
        y0 = canvas.height - bar_height - 4
        steps = 24
        for i in range(steps):
            frac = i / (steps - 1)
            value = -self.colormap.limit + 2 * self.colormap.limit * frac
            canvas.rect(
                x0 + i * bar_width / steps,
                y0,
                bar_width / steps + 0.5,
                bar_height,
                fill=self.colormap.hex(value),
                stroke="none",
            )
        canvas.text(x0, y0 - 2, f"-{self.colormap.limit:g}", size=8.0)
        canvas.text(x0 + bar_width, y0 - 2, f"+{self.colormap.limit:g}", size=8.0, anchor="end")

    def save_svg(
        self,
        path: str,
        values: Mapping[int, float] | np.ndarray,
        **kwargs,
    ) -> str:
        """Render and write the SVG to ``path``."""
        content = self.render_svg(values, **kwargs)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        return path

    # ------------------------------------------------------------------ #
    def render_ascii(
        self,
        values: Mapping[int, float] | np.ndarray,
        *,
        outlined_nodes: Sequence[int] = (),
    ) -> str:
        """Compact glyph rendering for terminals and golden-file tests.

        Each node becomes one character at its (rounded) layout position:
        ``.`` baseline, ``-``/``=`` cool, ``+``/``#`` hot, ``!`` for
        outlined nodes, space for gaps between racks.
        """
        vals = self._values_array(values)
        outline_set = {int(n) for n in outlined_nodes}
        width, height = self.layout.bounds
        n_cols = int(np.ceil(width)) + 1
        n_rows = int(np.ceil(height)) + 1
        grid = np.full((n_rows, n_cols), " ", dtype="<U1")
        for geom in self.layout.geometries:
            col = int(round(geom.x))
            row = int(round(geom.y))
            if not (0 <= row < n_rows and 0 <= col < n_cols):
                continue
            if geom.index in outline_set:
                glyph = "!"
            elif np.isnan(vals[geom.index]):
                glyph = "?"
            else:
                glyph = self.colormap.glyph(vals[geom.index])
            grid[row, col] = glyph
        return "\n".join("".join(row).rstrip() for row in grid)

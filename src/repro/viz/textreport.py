"""Plain-text / Markdown report builder.

The SVG views in this package target dashboards; :class:`TextReport` is the
terminal-and-CI sibling used by :mod:`repro.obs.report` (and available to
the benchmark harnesses): a sequence of sections, each holding free-form
lines and :class:`~repro.util.timer.TimingTable` tables, rendered either as
fixed-width text or as GitHub-flavoured Markdown from the same content.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..util.timer import TimingTable

__all__ = ["TextReport", "ReportSection"]


@dataclass
class ReportSection:
    """One titled block of a report: interleaved lines and tables."""

    title: str
    blocks: list[object] = field(default_factory=list)  # str | TimingTable

    def add_line(self, line: str = "") -> "ReportSection":
        self.blocks.append(str(line))
        return self

    def add_kv(self, key: str, value: object, *, width: int = 24) -> "ReportSection":
        """Append one aligned ``key: value`` line.

        Keys pad to ``width`` so a run of ``add_kv`` calls forms a
        readable two-column block in the fixed-width rendering (Markdown
        renders the same text; alignment simply collapses there).
        """
        self.blocks.append(f"{str(key) + ':':<{width + 1}} {value}")
        return self

    def add_table(self, table: TimingTable) -> "ReportSection":
        self.blocks.append(table)
        return self


def _markdown_table(table: TimingTable, float_format: str) -> str:
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return float_format.format(value)
        return str(value)

    lines = [
        "| " + " | ".join(table.columns) + " |",
        "| " + " | ".join("---" for _ in table.columns) + " |",
    ]
    for row in table.rows:
        lines.append("| " + " | ".join(fmt(v) for v in row) + " |")
    return "\n".join(lines)


@dataclass
class TextReport:
    """A titled, sectioned report rendering to text or Markdown.

    >>> report = TextReport(title="demo")
    >>> table = TimingTable(columns=["k", "v"]); table.add_row("a", 1.0)
    >>> _ = report.section("numbers").add_table(table)
    >>> print(report.render())          # doctest: +SKIP
    """

    title: str
    sections: list[ReportSection] = field(default_factory=list)
    float_format: str = "{:.4g}"

    def section(self, title: str) -> ReportSection:
        """Append (and return) a new section."""
        section = ReportSection(title)
        self.sections.append(section)
        return section

    def render(self) -> str:
        """Fixed-width terminal rendering."""
        lines = [self.title, "=" * len(self.title)]
        for section in self.sections:
            lines += ["", section.title, "-" * len(section.title)]
            for block in section.blocks:
                if isinstance(block, TimingTable):
                    lines.append(block.render(float_format=self.float_format))
                else:
                    lines.append(block)
        return "\n".join(lines)

    def render_markdown(self) -> str:
        """GitHub-flavoured Markdown rendering of the same content."""
        lines = [f"# {self.title}"]
        for section in self.sections:
            lines += ["", f"## {section.title}", ""]
            for block in section.blocks:
                if isinstance(block, TimingTable):
                    lines.append(_markdown_table(block, self.float_format))
                else:
                    lines.append(block)
        return "\n".join(lines)

"""Visualization: rack layout grammar, Turbo colormap, SVG/ASCII renderers."""

from .colormap import DivergingTurbo, to_hex, turbo_rgb
from .layout import NodeGeometry, RackLayout, parse_layout_spec, parse_range
from .rackview import RackView
from .spectrum_plot import SpectrumPlot
from .svg import SVGCanvas
from .textreport import ReportSection, TextReport
from .timeseries import TimeSeriesView

__all__ = [
    "DivergingTurbo",
    "to_hex",
    "turbo_rgb",
    "NodeGeometry",
    "RackLayout",
    "parse_layout_spec",
    "parse_range",
    "RackView",
    "SpectrumPlot",
    "SVGCanvas",
    "ReportSection",
    "TextReport",
    "TimeSeriesView",
]

"""Time-series view: actual vs reconstructed traces (Fig. 3) and node drill-down.

The D3 rack view in the paper opens a per-node time-series panel on click;
here the equivalent is an SVG line chart written to disk, plus a plain-data
export that tests and benchmarks can assert on without parsing SVG.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .svg import SVGCanvas

__all__ = ["TimeSeriesView"]


@dataclass
class TimeSeriesView:
    """Line-chart renderer for one or more equally-sampled series.

    Attributes
    ----------
    width / height:
        Pixel size of the SVG chart.
    palette:
        Cycled stroke colours for successive series.
    """

    width: float = 720.0
    height: float = 240.0
    palette: tuple[str, ...] = (
        "#1f77b4",
        "#d62728",
        "#2ca02c",
        "#9467bd",
        "#ff7f0e",
        "#8c564b",
    )

    def _scale(
        self, series: list[np.ndarray]
    ) -> tuple[float, float, float, float]:
        """Common x/y ranges over all series."""
        n = max(s.size for s in series)
        lo = min(float(np.nanmin(s)) for s in series)
        hi = max(float(np.nanmax(s)) for s in series)
        if hi == lo:
            hi = lo + 1.0
        return 0.0, float(n - 1 if n > 1 else 1), lo, hi

    def render_svg(
        self,
        series: dict[str, np.ndarray],
        *,
        title: str = "",
        y_label: str = "",
    ) -> str:
        """Render labelled series as an SVG line chart."""
        if not series:
            raise ValueError("series must contain at least one entry")
        arrays = [np.asarray(v, dtype=float).ravel() for v in series.values()]
        x_lo, x_hi, y_lo, y_hi = self._scale(arrays)
        margin = 42.0
        plot_w = self.width - 2 * margin
        plot_h = self.height - 2 * margin
        canvas = SVGCanvas(self.width, self.height)
        if title:
            canvas.text(margin, 16, title, size=13.0)
        if y_label:
            canvas.text(4, self.height / 2, y_label, size=10.0)
        # Axes.
        canvas.line(margin, margin, margin, margin + plot_h, stroke="#333333")
        canvas.line(
            margin, margin + plot_h, margin + plot_w, margin + plot_h, stroke="#333333"
        )
        canvas.text(margin, margin + plot_h + 14, f"{x_lo:.0f}", size=9.0)
        canvas.text(
            margin + plot_w, margin + plot_h + 14, f"{x_hi:.0f}", size=9.0, anchor="end"
        )
        canvas.text(margin - 4, margin + plot_h, f"{y_lo:.1f}", size=9.0, anchor="end")
        canvas.text(margin - 4, margin + 8, f"{y_hi:.1f}", size=9.0, anchor="end")

        for idx, (label, values) in enumerate(series.items()):
            arr = np.asarray(values, dtype=float).ravel()
            if arr.size < 2:
                continue
            xs = np.linspace(0, 1, arr.size)
            ys = (arr - y_lo) / (y_hi - y_lo)
            points = [
                (margin + float(x) * plot_w, margin + plot_h - float(y) * plot_h)
                for x, y in zip(xs, ys)
            ]
            color = self.palette[idx % len(self.palette)]
            canvas.polyline(points, stroke=color, stroke_width=1.2)
            canvas.text(
                margin + plot_w - 4,
                margin + 14 + 12 * idx,
                label,
                size=10.0,
                fill=color,
                anchor="end",
            )
        return canvas.render()

    def save_svg(self, path: str, series: dict[str, np.ndarray], **kwargs) -> str:
        """Render and write to ``path``."""
        content = self.render_svg(series, **kwargs)
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(content)
        return path

    @staticmethod
    def export_data(series: dict[str, np.ndarray]) -> dict[str, list[float]]:
        """Plain-list export of the plotted series (for JSON dumps / tests)."""
        return {label: np.asarray(v, dtype=float).ravel().tolist() for label, v in series.items()}

"""Parser and geometry engine for the rack-layout specification grammar.

Sec. III-B defines a single string that describes an arbitrary
supercomputer's physical layout::

    "system name  rack-row-align rack-col-align
     Rows[rack-range]:[rack-number-range-per-rack]
     cabinet-align... Cabinets/Cages:[range]
     slot-align...    Slots:[range]
     blade-align...   Blades:[range]
     Nodes:[range]"

e.g. ``"xc40 1 2 row0-1:0-10 2 c:0-7 1 s:0-7 1 b:0 n:0"`` is an XC40 with
two rows of eleven racks, eight cabinets per rack, eight slots per cabinet,
one blade per slot, and one node per blade.  Alignment codes are ``-1``
(right-to-left), ``1`` (left-to-right), and ``2`` (bottom-to-top); the
default is top-to-bottom.

:class:`RackLayout` parses that grammar (accepting one *or* two alignment
numbers before each inner group, since the paper's prose lists two but its
example uses one) and assigns every node a rectangle in an abstract
coordinate system.  The SVG and ASCII renderers in
:mod:`repro.viz.rackview` only consume those rectangles, so any machine
expressible in the grammar can be displayed — the "generalizable rack
visualization" claim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

import numpy as np

from ..telemetry.machine import MachineDescription

__all__ = ["NodeGeometry", "RackLayout", "parse_range", "parse_layout_spec"]


def parse_range(text: str) -> tuple[int, int]:
    """Parse ``"a-b"`` or ``"a"`` into an inclusive ``(low, high)`` pair."""
    text = text.strip()
    match = re.fullmatch(r"(\d+)(?:-(\d+))?", text)
    if not match:
        raise ValueError(f"invalid range {text!r}")
    low = int(match.group(1))
    high = int(match.group(2)) if match.group(2) is not None else low
    if high < low:
        raise ValueError(f"range {text!r} is decreasing")
    return low, high


@dataclass(frozen=True)
class _LevelSpec:
    """Count and alignment of one hierarchy level."""

    count: int
    row_alignment: int = 1
    col_alignment: int = 1


@dataclass(frozen=True)
class ParsedLayout:
    """Raw result of parsing a layout specification string."""

    system: str
    n_rows: int
    racks_per_row: int
    rack_row_alignment: int
    rack_col_alignment: int
    cabinets: _LevelSpec
    slots: _LevelSpec
    blades: _LevelSpec
    nodes: _LevelSpec


def parse_layout_spec(spec: str) -> ParsedLayout:
    """Parse the Sec. III-B grammar into a :class:`ParsedLayout`."""
    tokens = spec.split()
    if len(tokens) < 4:
        raise ValueError(f"layout spec too short: {spec!r}")
    system = tokens[0]
    try:
        rack_row_align = int(tokens[1])
        rack_col_align = int(tokens[2])
    except ValueError as exc:
        raise ValueError(f"expected rack alignment numbers after system name in {spec!r}") from exc

    row_token = tokens[3]
    match = re.fullmatch(r"row([\d-]+):([\d-]+)", row_token, flags=re.IGNORECASE)
    if not match:
        raise ValueError(f"expected 'row<range>:<range>' token, got {row_token!r}")
    row_lo, row_hi = parse_range(match.group(1))
    rack_lo, rack_hi = parse_range(match.group(2))
    n_rows = row_hi - row_lo + 1
    racks_per_row = rack_hi - rack_lo + 1

    # Remaining tokens: alignment numbers interleaved with "<letter>:<range>".
    remaining = tokens[4:]
    groups: dict[str, _LevelSpec] = {}
    pending_aligns: list[int] = []
    for token in remaining:
        if ":" in token:
            prefix, rng = token.split(":", 1)
            key = prefix.strip().lower()[:1]
            lo, hi = parse_range(rng)
            count = hi - lo + 1
            row_align = pending_aligns[0] if len(pending_aligns) >= 1 else 1
            col_align = pending_aligns[1] if len(pending_aligns) >= 2 else 1
            groups[key] = _LevelSpec(count=count, row_alignment=row_align, col_alignment=col_align)
            pending_aligns = []
        else:
            try:
                pending_aligns.append(int(token))
            except ValueError as exc:
                raise ValueError(f"unexpected token {token!r} in layout spec") from exc

    def level(key: str, default_count: int = 1) -> _LevelSpec:
        return groups.get(key, _LevelSpec(count=default_count))

    return ParsedLayout(
        system=system,
        n_rows=n_rows,
        racks_per_row=racks_per_row,
        rack_row_alignment=rack_row_align,
        rack_col_alignment=rack_col_align,
        cabinets=level("c"),
        slots=level("s"),
        blades=level("b"),
        nodes=level("n"),
    )


@dataclass(frozen=True)
class NodeGeometry:
    """Axis-aligned rectangle of one node in abstract layout coordinates."""

    index: int
    x: float
    y: float
    width: float
    height: float
    row: int
    rack: int
    cabinet: int
    slot: int
    blade: int
    node: int

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)


class RackLayout:
    """Node geometry for a machine described by the layout grammar.

    Construction either parses a spec string (:meth:`from_spec`) or reads a
    :class:`~repro.telemetry.machine.MachineDescription`
    (:meth:`from_machine`); both produce the same geometry when the
    description's own :meth:`layout_spec` string is used, which the tests
    assert.
    """

    # Geometric constants (abstract units).
    NODE_SIZE = 1.0
    RACK_PAD = 0.6
    ROW_PAD = 1.4

    def __init__(self, parsed: ParsedLayout, node_limit: int | None = None) -> None:
        self.parsed = parsed
        self.node_limit = node_limit
        self._geometries = self._build_geometries()

    # ------------------------------------------------------------------ #
    @classmethod
    def from_spec(cls, spec: str, node_limit: int | None = None) -> "RackLayout":
        """Parse a layout specification string."""
        return cls(parse_layout_spec(spec), node_limit=node_limit)

    @classmethod
    def from_machine(cls, machine: MachineDescription) -> "RackLayout":
        """Build the layout of a machine description (honours its node limit)."""
        return cls.from_spec(machine.layout_spec(), node_limit=machine.node_limit)

    # ------------------------------------------------------------------ #
    @property
    def n_nodes(self) -> int:
        """Number of node rectangles generated."""
        return len(self._geometries)

    @property
    def geometries(self) -> list[NodeGeometry]:
        """All node rectangles, in node-index order."""
        return list(self._geometries)

    def geometry_of(self, node_index: int) -> NodeGeometry:
        """Rectangle of one node."""
        return self._geometries[node_index]

    @property
    def bounds(self) -> tuple[float, float]:
        """Total (width, height) of the layout in abstract units."""
        if not self._geometries:
            return (0.0, 0.0)
        max_x = max(g.x + g.width for g in self._geometries)
        max_y = max(g.y + g.height for g in self._geometries)
        return (max_x + self.RACK_PAD, max_y + self.RACK_PAD)

    # ------------------------------------------------------------------ #
    def _build_geometries(self) -> list[NodeGeometry]:
        p = self.parsed
        # Within-rack grid: cabinets stacked vertically, slots horizontally,
        # blades vertically within a slot, nodes horizontally within a blade.
        nodes_x = p.nodes.count
        blades_y = p.blades.count
        slots_x = p.slots.count
        cabinets_y = p.cabinets.count

        rack_width = slots_x * nodes_x * self.NODE_SIZE
        rack_height = cabinets_y * blades_y * self.NODE_SIZE

        limit = self.node_limit
        geometries: list[NodeGeometry] = []
        index = 0
        for row in range(p.n_rows):
            for rack in range(p.racks_per_row):
                # Floor placement with rack alignment codes.
                rack_col = rack if p.rack_row_alignment != -1 else p.racks_per_row - 1 - rack
                rack_row = row if p.rack_col_alignment != 2 else p.n_rows - 1 - row
                rack_x0 = rack_col * (rack_width + self.RACK_PAD)
                rack_y0 = rack_row * (rack_height + self.ROW_PAD)
                for cabinet in range(cabinets_y):
                    cab_pos = (
                        cabinets_y - 1 - cabinet
                        if p.cabinets.row_alignment == 2
                        else cabinet
                    )
                    for slot in range(slots_x):
                        slot_pos = (
                            slots_x - 1 - slot
                            if p.slots.row_alignment == -1
                            else slot
                        )
                        for blade in range(blades_y):
                            blade_pos = (
                                blades_y - 1 - blade
                                if p.blades.row_alignment == 2
                                else blade
                            )
                            for node in range(nodes_x):
                                if limit is not None and index >= limit:
                                    return geometries
                                node_pos = (
                                    nodes_x - 1 - node
                                    if p.nodes.row_alignment == -1
                                    else node
                                )
                                x = rack_x0 + (slot_pos * nodes_x + node_pos) * self.NODE_SIZE
                                y = rack_y0 + (cab_pos * blades_y + blade_pos) * self.NODE_SIZE
                                geometries.append(
                                    NodeGeometry(
                                        index=index,
                                        x=x,
                                        y=y,
                                        width=self.NODE_SIZE,
                                        height=self.NODE_SIZE,
                                        row=row,
                                        rack=rack,
                                        cabinet=cabinet,
                                        slot=slot,
                                        blade=blade,
                                        node=node,
                                    )
                                )
                                index += 1
        return geometries

    def rack_extents(self) -> dict[tuple[int, int], tuple[float, float, float, float]]:
        """Bounding box ``(x, y, w, h)`` of each (row, rack) pair present."""
        extents: dict[tuple[int, int], tuple[float, float, float, float]] = {}
        groups: dict[tuple[int, int], list[NodeGeometry]] = {}
        for geom in self._geometries:
            groups.setdefault((geom.row, geom.rack), []).append(geom)
        for key, geoms in groups.items():
            x0 = min(g.x for g in geoms)
            y0 = min(g.y for g in geoms)
            x1 = max(g.x + g.width for g in geoms)
            y1 = max(g.y + g.height for g in geoms)
            extents[key] = (x0, y0, x1 - x0, y1 - y0)
        return extents

    def node_positions(self) -> np.ndarray:
        """``(n_nodes, 2)`` array of node-centre coordinates."""
        return np.array([g.center for g in self._geometries], dtype=float)

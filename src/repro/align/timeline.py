"""Temporal alignment of multifidelity logs onto a common snapshot clock.

The three log types live on different clocks: environment readings arrive
every 10-30 s, job records carry start/end times, and hardware events are
sparse points or intervals.  Alignment means expressing everything on the
environment log's snapshot grid so per-node, per-window comparisons are
trivially joins.  This module provides that re-gridding.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..hwlog.events import HardwareEventType, HardwareLog
from ..joblog.jobs import JobLog

__all__ = ["Timeline", "bin_events", "job_activity_matrix", "event_presence_matrix"]


@dataclass(frozen=True)
class Timeline:
    """A snapshot grid: ``n_timesteps`` samples spaced ``dt`` seconds apart."""

    n_timesteps: int
    dt: float
    start_step: int = 0

    def __post_init__(self) -> None:
        if self.n_timesteps < 1:
            raise ValueError("n_timesteps must be >= 1")
        if self.dt <= 0:
            raise ValueError("dt must be positive")

    @property
    def duration_seconds(self) -> float:
        """Total covered wall-clock span."""
        return self.n_timesteps * self.dt

    @property
    def duration_hours(self) -> float:
        """Total covered span in hours."""
        return self.duration_seconds / 3600.0

    def windows(self, n_windows: int) -> list[tuple[int, int]]:
        """Split the grid into ``n_windows`` nearly equal ``[start, stop)`` spans.

        Case study 2 splits 16 hours into two 8-hour windows; this is that
        split on the snapshot grid.
        """
        if n_windows < 1:
            raise ValueError("n_windows must be >= 1")
        edges = np.linspace(0, self.n_timesteps, n_windows + 1, dtype=int)
        return [(int(lo), int(hi)) for lo, hi in zip(edges[:-1], edges[1:])]

    def step_of_seconds(self, seconds: float) -> int:
        """Snapshot index containing the given time offset."""
        step = int(seconds // self.dt)
        return int(np.clip(step, 0, self.n_timesteps - 1))


def job_activity_matrix(joblog: JobLog, n_nodes: int, timeline: Timeline) -> np.ndarray:
    """Per-node, per-snapshot job occupancy on the environment clock."""
    return joblog.utilization_matrix(n_nodes, timeline.n_timesteps)


def event_presence_matrix(
    hwlog: HardwareLog,
    n_nodes: int,
    timeline: Timeline,
    *,
    event_type: HardwareEventType | None = None,
) -> np.ndarray:
    """Boolean ``(n_nodes, T)`` matrix marking when events were active."""
    presence = np.zeros((n_nodes, timeline.n_timesteps), dtype=bool)
    for event in hwlog:
        if event_type is not None and event.event_type is not event_type:
            continue
        if not 0 <= event.node < n_nodes:
            continue
        lo = max(event.start_step, 0)
        hi = min(event.end_step, timeline.n_timesteps)
        if hi > lo:
            presence[event.node, lo:hi] = True
        elif 0 <= event.start_step < timeline.n_timesteps:
            presence[event.node, event.start_step] = True
    return presence


def bin_events(
    hwlog: HardwareLog,
    n_nodes: int,
    timeline: Timeline,
    n_bins: int,
    *,
    event_type: HardwareEventType | None = None,
) -> np.ndarray:
    """Per-node event counts in ``n_bins`` equal time bins, shape ``(n_nodes, n_bins)``."""
    if n_bins < 1:
        raise ValueError("n_bins must be >= 1")
    counts = np.zeros((n_nodes, n_bins), dtype=int)
    edges = np.linspace(0, timeline.n_timesteps, n_bins + 1)
    for event in hwlog:
        if event_type is not None and event.event_type is not event_type:
            continue
        if not 0 <= event.node < n_nodes:
            continue
        b = int(np.searchsorted(edges, event.start_step, side="right") - 1)
        b = int(np.clip(b, 0, n_bins - 1))
        counts[event.node, b] += 1
    return counts

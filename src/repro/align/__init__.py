"""Alignment of environment, hardware, and job logs on a shared clock/topology."""

from .correlate import CorrelationReport, correlate_with_hardware, correlate_with_jobs
from .report import AlignmentReport, build_alignment_report
from .timeline import Timeline, bin_events, event_presence_matrix, job_activity_matrix
from .zscore_map import NodeZScores, map_zscores_to_nodes

__all__ = [
    "CorrelationReport",
    "correlate_with_hardware",
    "correlate_with_jobs",
    "AlignmentReport",
    "build_alignment_report",
    "Timeline",
    "bin_events",
    "event_presence_matrix",
    "job_activity_matrix",
    "NodeZScores",
    "map_zscores_to_nodes",
]

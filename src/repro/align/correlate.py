"""Correlation of environment-log patterns with hardware and job failures (Q3).

Q3 asks whether "the system behavior extracted from the environment logs
correlate[s] with faults seen in hardware and job failures".  Given per-node
z-scores (from the I-mrDMD + baseline analysis), the hardware log, and the
job log, this module quantifies that relationship:

* contingency of z-score categories vs. presence of hardware events
  (with a point-biserial correlation and an odds ratio);
* per-category event rates (events per node in each z-score band);
* job failure rates on nodes grouped by z-score band.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..core.baseline import ZScoreCategory
from ..hwlog.events import HardwareEventType, HardwareLog
from ..joblog.jobs import JobLog
from .zscore_map import NodeZScores

__all__ = ["CorrelationReport", "correlate_with_hardware", "correlate_with_jobs"]


@dataclass(frozen=True)
class CorrelationReport:
    """Association between node z-scores and a binary per-node outcome.

    Attributes
    ----------
    point_biserial:
        Point-biserial correlation between the z-score magnitude and the
        outcome indicator (NaN when degenerate).
    p_value:
        Two-sided p-value of that correlation.
    odds_ratio:
        Odds of the outcome for out-of-baseline nodes vs. baseline nodes
        (Haldane-corrected to stay finite).
    rate_by_category:
        Outcome rate within each z-score category.
    n_nodes:
        Number of nodes in the analysis.
    n_positive:
        Number of nodes with the outcome.
    """

    point_biserial: float
    p_value: float
    odds_ratio: float
    rate_by_category: dict[ZScoreCategory, float]
    n_nodes: int
    n_positive: int


def _report(node_scores: NodeZScores, outcome: np.ndarray) -> CorrelationReport:
    outcome = np.asarray(outcome, dtype=bool)
    z = np.abs(node_scores.zscores)
    if outcome.shape != z.shape:
        raise ValueError("outcome must have one entry per scored node")
    if z.size >= 2 and outcome.any() and not outcome.all() and np.ptp(z) > 0:
        corr, p_value = stats.pointbiserialr(outcome.astype(int), z)
    else:
        corr, p_value = float("nan"), float("nan")

    outside = np.abs(node_scores.zscores) > 1.5
    a = float(np.sum(outside & outcome)) + 0.5
    b = float(np.sum(outside & ~outcome)) + 0.5
    c = float(np.sum(~outside & outcome)) + 0.5
    d = float(np.sum(~outside & ~outcome)) + 0.5
    odds_ratio = (a / b) / (c / d)

    rates: dict[ZScoreCategory, float] = {}
    for category in ZScoreCategory:
        mask = node_scores.categories == category
        rates[category] = float(outcome[mask].mean()) if np.any(mask) else float("nan")

    return CorrelationReport(
        point_biserial=float(corr),
        p_value=float(p_value),
        odds_ratio=float(odds_ratio),
        rate_by_category=rates,
        n_nodes=int(z.size),
        n_positive=int(outcome.sum()),
    )


def correlate_with_hardware(
    node_scores: NodeZScores,
    hwlog: HardwareLog,
    *,
    event_type: HardwareEventType | None = None,
    window: tuple[int, int] | None = None,
) -> CorrelationReport:
    """Associate node z-scores with hardware-event occurrence.

    Parameters
    ----------
    node_scores:
        Aggregated per-node z-scores.
    hwlog:
        The hardware log to test against.
    event_type:
        Restrict to one event category (e.g. correctable memory errors,
        the Fig. 4 overlay); ``None`` considers any event.
    window:
        Snapshot range events must overlap to count.
    """
    events = hwlog.events
    if window is not None:
        lo, hi = window
        events = [e for e in events if e.start_step < hi and e.end_step > lo]
    affected = {
        e.node
        for e in events
        if event_type is None or e.event_type is event_type
    }
    outcome = np.array([int(n) in affected for n in node_scores.node_indices])
    return _report(node_scores, outcome)


def correlate_with_jobs(
    node_scores: NodeZScores,
    joblog: JobLog,
    *,
    window: tuple[int, int] | None = None,
) -> CorrelationReport:
    """Associate node z-scores with job failures on those nodes."""
    failed_nodes: set[int] = set()
    for record in joblog.failed_jobs():
        if window is not None:
            lo, hi = window
            end = record.end_step if record.end_step is not None else hi
            if record.start_step >= hi or end <= lo:
                continue
        failed_nodes.update(record.nodes)
    outcome = np.array([int(n) in failed_nodes for n in node_scores.node_indices])
    return _report(node_scores, outcome)

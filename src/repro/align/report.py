"""Multi-log alignment report.

Bundles, for one analysis window, everything an operator looking at the
rack view would want next to it: per-node z-scores, the hardware events and
job activity on the flagged nodes, and the Q3 correlation statistics.  The
case-study examples render this report as text next to the SVG rack views.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..core.baseline import ZScoreCategory
from ..hwlog.events import HardwareEventType, HardwareLog
from ..joblog.jobs import JobLog
from .correlate import CorrelationReport, correlate_with_hardware, correlate_with_jobs
from .zscore_map import NodeZScores

__all__ = ["AlignmentReport", "build_alignment_report"]


@dataclass
class AlignmentReport:
    """Joined view of environment, hardware, and job logs for one window."""

    node_scores: NodeZScores
    hardware: CorrelationReport | None
    jobs: CorrelationReport | None
    hot_nodes: np.ndarray
    cold_nodes: np.ndarray
    memory_error_nodes: np.ndarray
    flagged_projects: list[str] = field(default_factory=list)

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = ["Alignment report"]
        counts = {
            cat.value: int(np.sum(self.node_scores.categories == cat))
            for cat in ZScoreCategory
        }
        lines.append(f"  nodes scored: {self.node_scores.node_indices.size}")
        lines.append(f"  z-score categories: {counts}")
        lines.append(f"  hot nodes (z>2): {self.hot_nodes.size}")
        lines.append(f"  cold nodes (z<-2): {self.cold_nodes.size}")
        lines.append(f"  nodes with memory errors: {self.memory_error_nodes.size}")
        if self.hardware is not None:
            lines.append(
                "  hardware correlation: "
                f"r_pb={self.hardware.point_biserial:.3f}, "
                f"odds_ratio={self.hardware.odds_ratio:.2f}"
            )
        if self.jobs is not None:
            lines.append(
                "  job-failure correlation: "
                f"r_pb={self.jobs.point_biserial:.3f}, "
                f"odds_ratio={self.jobs.odds_ratio:.2f}"
            )
        if self.flagged_projects:
            lines.append(f"  projects on flagged nodes: {', '.join(self.flagged_projects)}")
        return "\n".join(lines)


def build_alignment_report(
    node_scores: NodeZScores,
    *,
    hwlog: HardwareLog | None = None,
    joblog: JobLog | None = None,
    window: tuple[int, int] | None = None,
) -> AlignmentReport:
    """Assemble an :class:`AlignmentReport` from the available logs."""
    hardware = (
        correlate_with_hardware(node_scores, hwlog, window=window)
        if hwlog is not None
        else None
    )
    jobs = (
        correlate_with_jobs(node_scores, joblog, window=window)
        if joblog is not None
        else None
    )
    memory_error_nodes = (
        hwlog.nodes_with(HardwareEventType.CORRECTABLE_MEMORY_ERROR)
        if hwlog is not None
        else np.zeros(0, dtype=int)
    )
    flagged_projects: list[str] = []
    if joblog is not None:
        flagged = set(int(n) for n in node_scores.hot_nodes()) | set(
            int(n) for n in node_scores.cold_nodes()
        )
        projects = {
            record.project
            for record in joblog
            if flagged.intersection(record.nodes)
        }
        flagged_projects = sorted(projects)
    return AlignmentReport(
        node_scores=node_scores,
        hardware=hardware,
        jobs=jobs,
        hot_nodes=node_scores.hot_nodes(),
        cold_nodes=node_scores.cold_nodes(),
        memory_error_nodes=np.intersect1d(
            memory_error_nodes, node_scores.node_indices
        ),
        flagged_projects=flagged_projects,
    )

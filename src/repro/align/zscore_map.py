"""Mapping row-level z-scores onto nodes for the rack view.

The mrDMD/z-score analysis operates on (sensor, node) rows; the rack view
(Figs. 4/6) colours *nodes*.  This module collapses row-level z-scores onto
nodes (rows of the same node are aggregated), producing the per-node value
dictionary the visualization and alignment consume.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.baseline import ZScoreCategory, ZScoreResult, classify_zscores

__all__ = ["NodeZScores", "map_zscores_to_nodes"]


@dataclass
class NodeZScores:
    """Per-node z-score summary.

    Attributes
    ----------
    node_indices:
        Sorted populated-node indices present in the analysis.
    zscores:
        One aggregated z-score per node (same order as ``node_indices``).
    categories:
        :class:`~repro.core.baseline.ZScoreCategory` per node.
    """

    node_indices: np.ndarray
    zscores: np.ndarray
    categories: np.ndarray

    def as_dict(self) -> dict[int, float]:
        """``{node_index: zscore}`` mapping for the rack view."""
        return {int(n): float(z) for n, z in zip(self.node_indices, self.zscores)}

    def nodes_in_category(self, category: ZScoreCategory) -> np.ndarray:
        """Node indices whose aggregated z-score falls in ``category``."""
        return self.node_indices[self.categories == category]

    def hot_nodes(self) -> np.ndarray:
        """Nodes with z > extreme threshold (overheating risk)."""
        return self.nodes_in_category(ZScoreCategory.VERY_HIGH)

    def cold_nodes(self) -> np.ndarray:
        """Nodes with z < -extreme threshold (idle / stalled)."""
        return self.nodes_in_category(ZScoreCategory.VERY_LOW)


def map_zscores_to_nodes(
    result: ZScoreResult,
    node_of_row: np.ndarray,
    *,
    reducer: str = "mean",
    near: float | None = None,
    extreme: float | None = None,
) -> NodeZScores:
    """Aggregate row z-scores per node.

    Parameters
    ----------
    result:
        Row-level z-scores from :meth:`repro.core.baseline.BaselineModel.score`.
    node_of_row:
        Length-``P`` array mapping each scored row to its node index
        (e.g. ``TelemetryStream.node_indices``).
    reducer:
        ``"mean"`` (default), ``"max"`` (worst-case reading wins) or
        ``"absmax"`` (largest magnitude, keeping its sign).
    near / extreme:
        Classification thresholds; default to those in ``result``.
    """
    node_of_row = np.asarray(node_of_row, dtype=int)
    if node_of_row.shape[0] != result.zscores.shape[0]:
        raise ValueError(
            f"node_of_row has {node_of_row.shape[0]} entries but result has "
            f"{result.zscores.shape[0]} rows"
        )
    near = result.near if near is None else near
    extreme = result.extreme if extreme is None else extreme

    unique_nodes = np.unique(node_of_row)
    aggregated = np.zeros(unique_nodes.size, dtype=float)
    for i, node in enumerate(unique_nodes):
        rows = result.zscores[node_of_row == node]
        if reducer == "mean":
            aggregated[i] = rows.mean()
        elif reducer == "max":
            aggregated[i] = rows.max()
        elif reducer == "absmax":
            aggregated[i] = rows[np.argmax(np.abs(rows))]
        else:
            raise ValueError(f"unknown reducer {reducer!r}")
    categories = classify_zscores(aggregated, near=near, extreme=extreme)
    return NodeZScores(
        node_indices=unique_nodes,
        zscores=aggregated,
        categories=categories,
    )

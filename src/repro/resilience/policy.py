"""Retry, backoff and quarantine policy for supervised ingest rounds.

Everything here is deterministic: the backoff jitter is a pure function of
``(seed, shard_id, attempt)``, so two runs of the same chaos plan sleep the
same amounts and the tests can assert exact retry traces.  Wall-clock and
global RNG state are never consulted.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

__all__ = ["ResiliencePolicy"]


@dataclass(frozen=True)
class ResiliencePolicy:
    """How the :class:`~repro.service.monitor.FleetMonitor` supervises tasks.

    Parameters
    ----------
    max_attempts:
        Total tries per shard per chunk (first attempt included).  A chunk
        still failing after ``max_attempts`` quarantines its shard: the
        fleet keeps answering with visible degradation instead of crashing
        the round.
    task_deadline:
        Per-task deadline in seconds, or ``None`` for no deadline.  On the
        process backend a missed deadline marks the worker hung: it is
        force-terminated, respawned, and its resident shards rehydrated.
    backoff_base / backoff_cap:
        Retry ``attempt`` sleeps ``min(cap, base * 2**(attempt-1))``
        seconds before resubmitting, stretched by the jitter below.
    jitter:
        Fractional jitter: the delay is multiplied by a deterministic
        ``1 + jitter * u`` with ``u ∈ [0, 1)`` drawn from
        ``(seed, shard_id, attempt)`` — decorrelates shard retries without
        sacrificing reproducibility.
    seed:
        Seeds the jitter stream (pair it with the fault plan's seed).
    snapshot_every:
        The recovery store refreshes a shard's ``state_dict`` snapshot
        after this many recorded chunks, bounding both replay length on
        recovery and the memory held by the chunk tail.
    """

    max_attempts: int = 3
    task_deadline: float | None = None
    backoff_base: float = 0.02
    backoff_cap: float = 0.5
    jitter: float = 0.5
    seed: int = 0
    snapshot_every: int = 8

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts!r}")
        if self.task_deadline is not None and self.task_deadline <= 0:
            raise ValueError(
                f"task_deadline must be positive or None, got {self.task_deadline!r}"
            )
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff_base/backoff_cap must be >= 0")
        if not 0 <= self.jitter <= 1:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter!r}")
        if self.snapshot_every < 1:
            raise ValueError(
                f"snapshot_every must be >= 1, got {self.snapshot_every!r}"
            )

    def backoff_delay(self, shard_id: str, attempt: int) -> float:
        """Seconds to sleep before retry number ``attempt`` (>= 1)."""
        if attempt < 1:
            raise ValueError(f"attempt must be >= 1, got {attempt!r}")
        base = min(self.backoff_cap, self.backoff_base * (2.0 ** (attempt - 1)))
        if base == 0.0 or self.jitter == 0.0:
            return base
        # random.Random(str) seeds from a stable hash of the string, so the
        # draw is a pure function of (seed, shard, attempt) across runs.
        rng = random.Random(f"{self.seed}/{shard_id}/{attempt}")
        return base * (1.0 + self.jitter * rng.random())

"""Parent-side crash-recovery state: snapshots plus a per-shard chunk tail.

The process backend keeps shard pipelines *resident in the workers* — a
crashed or hung worker therefore takes its shards' in-memory state with it.
The :class:`ShardRecoveryStore` is the supervisor's insurance: after every
successful chunk it records the chunk, and every ``snapshot_every`` chunks
it refreshes a full ``state_dict`` snapshot (clearing the tail).  Recovery
is then exact, not approximate::

    pipeline = OnlineAnalysisPipeline.from_state_dict(snapshot)
    for chunk in tail:            # every chunk since the snapshot
        pipeline.ingest(chunk)

Because ``from_state_dict`` restores bit-for-bit (asserted by the
checkpoint tests) and ingest is deterministic, the rehydrated pipeline is
indistinguishable from one that never crashed — the chaos tests compare
final state dicts against a fault-free run and require equality.

This is the shard-level sibling of the federation
:class:`~repro.federation.chunklog.ChunkLog` (PR 5): same replay idea, but
held per shard in the supervising parent rather than shared per machine.
"""

from __future__ import annotations

import copy
from typing import TYPE_CHECKING, Any

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.online import OnlineAnalysisPipeline

__all__ = ["ShardRecoveryStore"]


class ShardRecoveryStore:
    """Snapshots + chunk tails from which lost shards are rehydrated."""

    def __init__(self, snapshot_every: int = 8) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every!r}")
        self.snapshot_every = int(snapshot_every)
        self._snapshots: dict[str, dict] = {}
        self._chunks: dict[str, list[np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def has_snapshot(self, shard_id: str) -> bool:
        return shard_id in self._snapshots

    def needs_snapshot(self, shard_id: str) -> bool:
        """Whether the supervisor should pull a fresh ``state_dict`` now:
        either the shard has never been snapshotted or its tail reached
        ``snapshot_every`` chunks."""
        if shard_id not in self._snapshots:
            return True
        return len(self._chunks.get(shard_id, ())) >= self.snapshot_every

    def record_snapshot(self, shard_id: str, state: dict) -> None:
        """Install a fresh snapshot and drop the now-covered chunk tail.

        The state dict is deep-copied: on in-process backends it can share
        arrays with the live pipeline, which would silently mutate the
        snapshot out from under a later rebuild.
        """
        self._snapshots[shard_id] = copy.deepcopy(state)
        self._chunks[shard_id] = []

    def record_chunk(self, shard_id: str, values: np.ndarray) -> None:
        """Append one successfully ingested chunk to the shard's tail."""
        self._chunks.setdefault(shard_id, []).append(
            np.array(values, copy=True)
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self._snapshots)

    def tail_length(self, shard_id: str) -> int:
        return len(self._chunks.get(shard_id, ()))

    def forget(self, shard_id: str) -> None:
        """Drop a shard's recovery state (it left the fleet)."""
        self._snapshots.pop(shard_id, None)
        self._chunks.pop(shard_id, None)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def rebuild(self, shard_id: str) -> tuple["OnlineAnalysisPipeline", int]:
        """Rehydrate ``shard_id``: restore the snapshot, replay the tail.

        Returns ``(pipeline, n_replayed)``.  Raises ``KeyError`` when the
        shard has no snapshot — the supervisor records one before the
        first supervised round, so this only fires on misuse.
        """
        if shard_id not in self._snapshots:
            raise KeyError(
                f"no recovery snapshot for shard {shard_id!r}; "
                "was it ever supervised?"
            )
        from ..pipeline.online import OnlineAnalysisPipeline

        pipeline = OnlineAnalysisPipeline.from_state_dict(
            copy.deepcopy(self._snapshots[shard_id])
        )
        tail = self._chunks.get(shard_id, ())
        for chunk in tail:
            pipeline.ingest(chunk)
        return pipeline, len(tail)

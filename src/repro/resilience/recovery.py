"""Parent-side crash-recovery state: snapshots plus a per-shard chunk tail.

The process backend keeps shard pipelines *resident in the workers* — a
crashed or hung worker therefore takes its shards' in-memory state with it.
The :class:`ShardRecoveryStore` is the supervisor's insurance: after every
successful chunk it records the chunk, and every ``snapshot_every`` chunks
it refreshes a full ``state_dict`` snapshot (clearing the tail).  Recovery
is then exact, not approximate::

    pipeline = OnlineAnalysisPipeline.from_state_dict(snapshot)
    for chunk in tail:            # every chunk since the snapshot
        pipeline.ingest(chunk)

Because ``from_state_dict`` restores bit-for-bit (asserted by the
checkpoint tests) and ingest is deterministic, the rehydrated pipeline is
indistinguishable from one that never crashed — the chaos tests compare
final state dicts against a fault-free run and require equality.

Snapshots live in a content-addressed, reference-counted
:class:`~repro.io.delta.MemoryBlockStore` — the in-memory sibling of the
delta checkpoint's on-disk block store.  Two shards (or two snapshot
generations) with identical state share one block, and
:meth:`ShardRecoveryStore.record_snapshot_if_changed` skips the
``state_dict()`` pull entirely when the shard's revision stamp has not
moved since the recorded snapshot (the ``snapshots_skipped`` counter in
the resilience digest tracks this fast path).

This is the shard-level sibling of the federation
:class:`~repro.federation.chunklog.ChunkLog` (PR 5): same replay idea, but
held per shard in the supervising parent rather than shared per machine.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from ..io.delta import MemoryBlockStore
from ..obs import OBS

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..pipeline.online import OnlineAnalysisPipeline

__all__ = ["ShardRecoveryStore"]


class ShardRecoveryStore:
    """Snapshots + chunk tails from which lost shards are rehydrated."""

    def __init__(
        self, snapshot_every: int = 8, *, block_store: MemoryBlockStore | None = None
    ) -> None:
        if snapshot_every < 1:
            raise ValueError(f"snapshot_every must be >= 1, got {snapshot_every!r}")
        self.snapshot_every = int(snapshot_every)
        self._store = block_store if block_store is not None else MemoryBlockStore()
        self._snapshots: dict[str, str] = {}  # shard -> block digest
        self._stamps: dict[str, tuple] = {}  # shard -> stamp at snapshot
        self._chunks: dict[str, list[np.ndarray]] = {}

    # ------------------------------------------------------------------ #
    # Recording
    # ------------------------------------------------------------------ #
    def has_snapshot(self, shard_id: str) -> bool:
        return shard_id in self._snapshots

    def needs_snapshot(self, shard_id: str) -> bool:
        """Whether the supervisor should pull a fresh ``state_dict`` now:
        either the shard has never been snapshotted or its tail reached
        ``snapshot_every`` chunks."""
        if shard_id not in self._snapshots:
            return True
        return len(self._chunks.get(shard_id, ())) >= self.snapshot_every

    def record_snapshot(
        self, shard_id: str, state: dict, *, stamp: tuple | None = None
    ) -> None:
        """Install a fresh snapshot and drop the now-covered chunk tail.

        The state is re-encoded into the content-addressed store (array
        copies): on in-process backends the incoming dict can share
        arrays with the live pipeline, which would otherwise silently
        mutate the snapshot out from under a later rebuild.
        """
        digest, _ = self._store.put(state)
        previous = self._snapshots.get(shard_id)
        if previous is not None:
            self._store.release(previous)
        self._snapshots[shard_id] = digest
        if stamp is not None:
            self._stamps[shard_id] = stamp
        else:
            self._stamps.pop(shard_id, None)
        self._chunks[shard_id] = []
        if OBS.enabled:
            OBS.inc("service.resilience.snapshots")

    def snapshot_is_current(self, shard_id: str, stamp: tuple) -> bool:
        """Whether the recorded snapshot already covers this stamp."""
        return (
            shard_id in self._snapshots
            and self._stamps.get(shard_id) == stamp
        )

    def record_snapshot_if_changed(
        self,
        shard_id: str,
        stamp: tuple,
        provider: Callable[[], dict],
    ) -> bool:
        """Snapshot from ``provider()`` unless ``stamp`` proves it stale.

        The dirty-tracking fast path: when the shard's state stamp equals
        the one recorded with its current snapshot, the state pull and
        re-serialisation are skipped entirely (an unchanged stamp also
        implies nothing was ingested, so the covered tail stays valid and
        is *not* cleared).  Returns True when a snapshot was taken.
        """
        if self.snapshot_is_current(shard_id, stamp):
            if OBS.enabled:
                OBS.inc("service.resilience.snapshots_skipped")
            return False
        self.record_snapshot(shard_id, provider(), stamp=stamp)
        return True

    def record_chunk(self, shard_id: str, values: np.ndarray) -> None:
        """Append one successfully ingested chunk to the shard's tail."""
        self._chunks.setdefault(shard_id, []).append(
            np.array(values, copy=True)
        )

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def shard_ids(self) -> tuple[str, ...]:
        return tuple(self._snapshots)

    @property
    def block_store(self) -> MemoryBlockStore:
        """The shared content-addressed snapshot store."""
        return self._store

    def snapshot_digest(self, shard_id: str) -> str | None:
        """Content digest of the shard's recorded snapshot block."""
        return self._snapshots.get(shard_id)

    def tail_length(self, shard_id: str) -> int:
        return len(self._chunks.get(shard_id, ()))

    def forget(self, shard_id: str) -> None:
        """Drop a shard's recovery state (it left the fleet)."""
        digest = self._snapshots.pop(shard_id, None)
        if digest is not None:
            self._store.release(digest)
        self._stamps.pop(shard_id, None)
        self._chunks.pop(shard_id, None)

    # ------------------------------------------------------------------ #
    # Recovery
    # ------------------------------------------------------------------ #
    def rebuild(self, shard_id: str) -> tuple["OnlineAnalysisPipeline", int]:
        """Rehydrate ``shard_id``: restore the snapshot, replay the tail.

        Returns ``(pipeline, n_replayed)``.  Raises ``KeyError`` when the
        shard has no snapshot — the supervisor records one before the
        first supervised round, so this only fires on misuse.
        """
        if shard_id not in self._snapshots:
            raise KeyError(
                f"no recovery snapshot for shard {shard_id!r}; "
                "was it ever supervised?"
            )
        from ..pipeline.online import OnlineAnalysisPipeline

        pipeline = OnlineAnalysisPipeline.from_state_dict(
            self._store.get(self._snapshots[shard_id])
        )
        tail = self._chunks.get(shard_id, ())
        for chunk in tail:
            pipeline.ingest(chunk)
        return pipeline, len(tail)

"""Fault tolerance for the fleet: fault injection, retry policy, recovery.

The paper's premise is *continuous* monitoring — the service must survive
exactly the failures it is built to detect in others' fleets.  This package
holds the three pieces the supervised execution path is built from:

* :mod:`repro.resilience.faults` — a deterministic, seeded
  :class:`FaultPlan` describing worker crashes, hangs, slow tasks, raised
  exceptions and NaN-poisoned chunks at exact ``(shard, chunk, attempt)``
  coordinates.  Injectable into the executor layer (crash/hang/slow run
  *inside* the worker) and the pipeline layer (exceptions, non-finite
  chunk rejection) so chaos runs are reproducible bit-for-bit.
* :mod:`repro.resilience.policy` — :class:`ResiliencePolicy`: per-task
  deadlines, capped exponential backoff with deterministic jitter, and
  the quarantine threshold.
* :mod:`repro.resilience.recovery` — :class:`ShardRecoveryStore`:
  parent-side ``state_dict`` snapshots plus a bounded per-shard chunk
  tail (the shard-level sibling of the federation
  :class:`~repro.federation.chunklog.ChunkLog`), from which a crashed or
  hung worker's resident pipelines are rehydrated and replayed to
  exactly the state an uninterrupted run would have reached.

The supervising caller is :class:`repro.service.monitor.FleetMonitor`
(``resilience=``/``fault_plan=`` arguments); the executor-side primitives
(task deadlines, worker respawn) live in :mod:`repro.util.parallel`.
"""

from .faults import (
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFaultError,
    PoisonChunkError,
    SimulatedCrashError,
    SimulatedHangError,
)
from .policy import ResiliencePolicy
from .recovery import ShardRecoveryStore

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFaultError",
    "PoisonChunkError",
    "SimulatedCrashError",
    "SimulatedHangError",
    "ResiliencePolicy",
    "ShardRecoveryStore",
]

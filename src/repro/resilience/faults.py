"""Deterministic fault injection for chaos testing the fleet.

A :class:`FaultPlan` is a *seeded, explicit* description of what goes wrong
where: every fault names its shard, its chunk index and (for transient
faults) the attempt it fires on.  Nothing here consults a clock or a global
RNG — replaying the same plan against the same stream produces the same
failures, the same retries and the same recovered state, which is what lets
the chaos tests assert bit-for-bit convergence with a fault-free run.

Faults come in two layers:

* **executor-layer** faults (``CRASH``, ``HANG``, ``SLOW``) execute inside
  the worker serving the shard.  In a spawned worker process a crash is a
  real ``os._exit`` and a hang is a real sleep the supervisor must detect
  via its task deadline; in-process backends (serial, thread) cannot crash
  the interpreter they share with the caller, so the same plan degrades to
  typed :class:`SimulatedCrashError` / :class:`SimulatedHangError`
  exceptions that the supervisor treats as the crash/hang class.  The
  backend distinction is made *at execution time* (are we in a spawned
  child?), so one plan drives every backend.
* **pipeline-layer** faults: ``EXCEPTION`` raises
  :class:`InjectedFaultError` before the pipeline mutates (a clean retry
  converges exactly), and ``NAN_CHUNK`` poisons the chunk *data* with NaNs
  — the poison travels with every retry, so the shard fails its full
  attempt budget and lands in quarantine, exercising the degraded path.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import numpy as np

__all__ = [
    "FaultKind",
    "FaultSpec",
    "FaultPlan",
    "InjectedFaultError",
    "PoisonChunkError",
    "SimulatedCrashError",
    "SimulatedHangError",
    "CRASH_EXIT_CODE",
]

#: Exit status used by injected worker crashes (recognisable in CI logs).
CRASH_EXIT_CODE = 17


class FaultKind(str, Enum):
    """What kind of failure a :class:`FaultSpec` injects."""

    CRASH = "crash"          # worker dies (os._exit in a spawned child)
    HANG = "hang"            # worker stops responding (sleeps past the deadline)
    SLOW = "slow"            # task is late but completes (tests the happy path)
    EXCEPTION = "exception"  # task raises a transient error before any mutation
    NAN_CHUNK = "nan_chunk"  # chunk data is poisoned with NaNs (fails every attempt)


class InjectedFaultError(RuntimeError):
    """A fault raised on purpose by a :class:`FaultPlan` (transient class)."""


class SimulatedCrashError(InjectedFaultError):
    """In-process stand-in for a worker crash (serial/thread backends)."""


class SimulatedHangError(InjectedFaultError):
    """In-process stand-in for a hung worker (serial/thread backends)."""


class PoisonChunkError(ValueError):
    """A chunk contained non-finite values and was rejected before ingest."""


def _in_spawned_child() -> bool:
    """Whether we are executing inside a spawned worker process (where a
    real crash/hang is safe to inject) rather than the caller's own
    interpreter (serial backend, or a thread of the parent)."""
    return mp.parent_process() is not None


@dataclass(frozen=True)
class FaultSpec:
    """One fault at an exact ``(shard, chunk, attempt)`` coordinate.

    ``attempt`` defaults to 1 — the fault fires on the first try only, so
    the retry converges (the transient-failure shape).  ``attempt=None``
    fires on *every* attempt (a persistent failure that must end in
    quarantine).  ``NAN_CHUNK`` ignores ``attempt``: the poison lives in
    the data, which every retry resubmits unchanged.

    ``duration`` is the sleep for ``SLOW`` (should sit *under* the
    supervisor's deadline) and for ``HANG`` in a process worker (should
    sit *over* it; the supervisor terminates the worker long before the
    sleep finishes).
    """

    kind: FaultKind
    shard_id: str
    chunk_index: int
    attempt: int | None = 1
    duration: float = 30.0

    def matches(self, shard_id: str, chunk_index: int, attempt: int) -> bool:
        return (
            self.shard_id == shard_id
            and self.chunk_index == int(chunk_index)
            and (self.attempt is None or self.attempt == int(attempt))
        )

    def execute(self) -> None:
        """Run the fault's effect at the point of injection (worker side).

        Called by the supervised ingest command *before* it touches the
        resident pipeline, so a retried task starts from unmutated state.
        """
        if self.kind is FaultKind.SLOW:
            time.sleep(self.duration)
            return
        if self.kind is FaultKind.EXCEPTION:
            raise InjectedFaultError(
                f"injected exception for shard {self.shard_id!r} "
                f"at chunk {self.chunk_index}"
            )
        if self.kind is FaultKind.CRASH:
            if _in_spawned_child():
                os._exit(CRASH_EXIT_CODE)
            raise SimulatedCrashError(
                f"injected worker crash for shard {self.shard_id!r} "
                f"at chunk {self.chunk_index}"
            )
        if self.kind is FaultKind.HANG:
            if _in_spawned_child():
                time.sleep(self.duration)
                # If the supervisor's deadline never fired we wake up and
                # fail loudly rather than silently completing late.
                raise SimulatedHangError(
                    f"injected hang for shard {self.shard_id!r} outlived "
                    f"its {self.duration:.1f}s sleep without being reaped"
                )
            raise SimulatedHangError(
                f"injected worker hang for shard {self.shard_id!r} "
                f"at chunk {self.chunk_index}"
            )
        # NAN_CHUNK is data-borne (see FaultPlan.poison) and never executes.


class FaultPlan:
    """A seeded, ordered collection of :class:`FaultSpec`\\ s.

    The plan is consulted at two points: :meth:`task_fault` by the
    supervisor when it builds a task (crash/hang/slow/exception ride along
    and execute in the worker), and :meth:`poisons`/:meth:`poison` when the
    per-shard chunk is sliced (NaN faults corrupt the data itself).  The
    ``seed`` names the plan (it keys the retry policy's deterministic
    jitter when the two are paired) — fault coordinates themselves are
    always explicit, never drawn.
    """

    def __init__(self, faults: Iterable[FaultSpec] = (), *, seed: int = 0) -> None:
        self.faults = tuple(faults)
        self.seed = int(seed)
        for fault in self.faults:
            if not isinstance(fault, FaultSpec):
                raise TypeError(f"FaultPlan takes FaultSpec entries, got {fault!r}")

    def __len__(self) -> int:
        return len(self.faults)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<FaultPlan seed={self.seed} faults={len(self.faults)}>"

    def task_fault(
        self, shard_id: str, chunk_index: int, attempt: int
    ) -> FaultSpec | None:
        """The executable fault for this task, or ``None`` (first match wins)."""
        for fault in self.faults:
            if fault.kind is FaultKind.NAN_CHUNK:
                continue
            if fault.matches(shard_id, chunk_index, attempt):
                return fault
        return None

    def poisons(self, shard_id: str, chunk_index: int) -> bool:
        """Whether this shard's chunk data is NaN-poisoned this round."""
        return any(
            fault.kind is FaultKind.NAN_CHUNK
            and fault.shard_id == shard_id
            and fault.chunk_index == int(chunk_index)
            for fault in self.faults
        )

    @staticmethod
    def poison(chunk: np.ndarray) -> np.ndarray:
        """A NaN-filled copy of ``chunk`` (same shape/dtype family)."""
        poisoned = np.array(chunk, dtype=float, copy=True)
        poisoned[:] = np.nan
        return poisoned

    def shards_with_persistent_faults(self) -> tuple[str, ...]:
        """Shards this plan condemns to quarantine (NaN or every-attempt)."""
        doomed = {
            fault.shard_id
            for fault in self.faults
            if fault.kind is FaultKind.NAN_CHUNK or fault.attempt is None
        }
        return tuple(sorted(doomed))

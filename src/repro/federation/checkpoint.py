"""Checkpoint / restore of a whole federation, with rotating retention.

A federated checkpoint is a directory::

    <dir>/
      manifest.json          # version, federated step, machine names, router state
      machines/
        east/                # one full service checkpoint per machine
          manifest.json      #   (repro.service.checkpoint format, reused as-is)
          shard_0.npz
          ...
        west/
          ...

With ``keep_last=N`` the directory is a rotation root of step-stamped
entries, exactly like ``save_checkpoint(..., keep_last=N)`` one layer down
(same atomic write-then-rename protocol, same
:func:`~repro.service.checkpoint.list_checkpoints` history helper — the
rotation machinery is shared, not duplicated).

Restore rebuilds the registry machine by machine through
:func:`~repro.service.checkpoint.load_checkpoint` (so every per-machine
guarantee — bit-for-bit stream resumption, restored engine cooldown state —
carries over) and re-attaches the router's persisted dedup and fleet-rule
memory.  Rules, sinks and routers are code, not data: pass them in.
"""

from __future__ import annotations

import copy
import json
import os
import time
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..io.delta import BLOCKS_DIRNAME, AsyncCheckpointWriter
from ..obs import OBS
from ..service.alerts import AlertRule, AlertSink
from ..service.checkpoint import (
    MANIFEST_NAME,
    STEP_DIR_PREFIX,
    CheckpointError,
    _capture_delta,
    _capture_full,
    _commit_entry,
    _sweep_blocks,
    _write_checkpoint,
    compact_checkpoint,
    load_checkpoint,
    resolve_checkpoint_dir,
    rotate_into,
)
from ..service.monitor import FleetMonitor
from ..util.parallel import ShardExecutor
from .chunklog import ChunkLog
from .monitor import FederatedMonitor
from .registry import MachineRegistry
from .routing import AlertRouter

__all__ = [
    "FederatedCheckpointInfo",
    "save_federated_checkpoint",
    "load_federated_checkpoint",
    "compact_federated_checkpoint",
    "read_federated_manifest",
]

FEDERATION_CHECKPOINT_VERSION = 1
MACHINES_DIRNAME = "machines"


@dataclass(frozen=True)
class FederatedCheckpointInfo:
    """What :func:`save_federated_checkpoint` wrote.

    For ``mode="async"`` the info is provisional (``directory`` is where
    the entry will land); ``federated.flush_checkpoints()`` is the
    barrier that makes it durable and surfaces deferred write errors.
    """

    directory: str
    step: int
    machines: tuple[str, ...]
    format: str = "full"
    mode: str = "sync"
    stall_seconds: float = 0.0

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def total_bytes(self) -> int:
        """On-disk size of the whole federated checkpoint."""
        total = 0
        for root, _dirs, files in os.walk(self.directory):
            total += sum(os.path.getsize(os.path.join(root, name)) for name in files)
        return total


def _machine_write_full(monitor: FleetMonitor, target: str) -> None:
    """Worker-side: write one machine's full checkpoint straight to disk."""
    _write_checkpoint(target, monitor)


def _machine_write_delta(monitor: FleetMonitor, target: str, blocks_dir: str) -> None:
    """Worker-side: capture + commit one machine's delta entry in place."""
    base, blocks, _reused = _capture_delta(monitor, blocks_dir, snapshot=False)
    _commit_entry(target, base, blocks, blocks_dir)


def _machine_capture_full(monitor: FleetMonitor):
    """Worker-side: capture one machine's full state for a deferred commit."""
    return _capture_full(monitor, snapshot=True)


def _machine_capture_delta(monitor: FleetMonitor, blocks_dir: str):
    """Worker-side: capture one machine's dirty shards for a deferred commit.

    Digests are computed inline (``defer_digest=False``): the commit runs
    in the coordinator's writer thread, so a deferred digest cell could
    never propagate back into the worker-resident monitor's stamp memory
    on process backends — which would disable block reuse entirely.
    """
    base, blocks, _reused = _capture_delta(
        monitor, blocks_dir, snapshot=True, defer_digest=False
    )
    return base, blocks


def _save_live_executor(federated: FederatedMonitor) -> ShardExecutor | None:
    """The federation's fan-out pool, when one is already running.

    Saving never *starts* a pool (a federation that has not ingested yet
    holds its machines in-process; a serial walk is exact there), but an
    already-running pool is refreshed against the registry so membership
    changes since start are honoured.
    """
    if federated.executor is None or federated.executor.closed:
        return None
    return federated._ensure_executor()


def save_federated_checkpoint(
    directory: str,
    federated: FederatedMonitor,
    *,
    keep_last: int | None = None,
    format: str = "full",
    mode: str = "sync",
    writer: AsyncCheckpointWriter | None = None,
) -> FederatedCheckpointInfo:
    """Write the federation's full state under ``directory``.

    Machine checkpoints are written *in parallel* over the federation's
    fan-out executor when one is running: each worker persists its
    resident machine straight to disk (no state ships home), falling
    back to an in-process walk otherwise — every backend produces
    identical bytes, as the parity tests assert.  The federated manifest
    is written only after every machine save completed, and the whole
    entry appears via the same atomic rename as before, so rotation
    semantics and crash consistency are unchanged.

    ``format="delta"`` / ``mode="async"`` (both require ``keep_last``)
    behave exactly like :func:`repro.service.checkpoint.save_checkpoint`:
    per-machine shard blocks dedup into the root's shared ``blocks/``
    store, and async saves capture synchronously (dirty shards only)
    then commit on the federation's background writer —
    ``federated.flush_checkpoints()`` is the durability/error barrier.
    """
    if format not in ("full", "delta"):
        raise ValueError(f"format must be 'full' or 'delta', got {format!r}")
    if mode not in ("sync", "async"):
        raise ValueError(f"mode must be 'sync' or 'async', got {mode!r}")
    if keep_last is None and (format == "delta" or mode == "async"):
        raise ValueError(
            "format='delta' and mode='async' need a rotation root: pass "
            "keep_last=N"
        )
    step = federated.step
    names = list(federated.machine_names)
    blocks_dir = (
        os.path.join(directory, BLOCKS_DIRNAME) if format == "delta" else None
    )
    start = time.perf_counter()
    with OBS.span("checkpoint.federated_save", format=format, mode=mode):
        if mode == "sync":
            def write(target: str) -> None:
                machines_root = os.path.join(target, MACHINES_DIRNAME)
                os.makedirs(machines_root, exist_ok=True)
                _save_machines(federated, names, machines_root, blocks_dir)
                _write_federated_manifest(
                    target, step, names, federated.router.state_dict()
                )

            if keep_last is not None:
                final = rotate_into(directory, step, keep_last, write)
                if blocks_dir is not None:
                    _sweep_blocks(directory, blocks_dir)
            else:
                os.makedirs(directory, exist_ok=True)
                write(directory)
                final = directory
            stall = time.perf_counter() - start
            _record_federated_save(format, mode, stall)
            return FederatedCheckpointInfo(
                directory=final,
                step=step,
                machines=tuple(names),
                format=format,
                mode=mode,
                stall_seconds=stall,
            )

        captures = _capture_machines(federated, names, blocks_dir)
        router_state = copy.deepcopy(federated.router.state_dict())

        def commit() -> None:
            def write(target: str) -> None:
                machines_root = os.path.join(target, MACHINES_DIRNAME)
                os.makedirs(machines_root, exist_ok=True)
                for name, (base, blocks) in captures.items():
                    _commit_entry(
                        os.path.join(machines_root, name), base, blocks, blocks_dir
                    )
                _write_federated_manifest(target, step, names, router_state)

            rotate_into(directory, step, keep_last, write)
            if blocks_dir is not None:
                _sweep_blocks(directory, blocks_dir)

        if writer is None:
            writer = federated._ensure_checkpoint_writer()
        writer.submit(commit, label=f"federation {format} step {step}")
        stall = time.perf_counter() - start
        _record_federated_save(format, mode, stall)
        return FederatedCheckpointInfo(
            directory=os.path.join(directory, f"{STEP_DIR_PREFIX}{step:012d}"),
            step=step,
            machines=tuple(names),
            format=format,
            mode=mode,
            stall_seconds=stall,
        )


def _record_federated_save(format: str, mode: str, stall: float) -> None:
    if OBS.enabled:
        OBS.inc("checkpoint.federated_saves", format=format, mode=mode)
        OBS.observe("checkpoint.stall_seconds", stall)


def _write_federated_manifest(
    target: str, step: int, names: list[str], router_state: dict
) -> None:
    manifest = {
        "version": FEDERATION_CHECKPOINT_VERSION,
        "kind": "federation",
        "step": step,
        "machines": list(names),
        "router": router_state,
    }
    with open(os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8") as fh:
        json.dump(manifest, fh, indent=2)


def _save_machines(
    federated: FederatedMonitor,
    names: list[str],
    machines_root: str,
    blocks_dir: str | None,
) -> None:
    """Write every machine checkpoint, in parallel when a pool is live."""
    executor = _save_live_executor(federated)
    if executor is not None:
        if blocks_dir is None:
            executor.map(
                _machine_write_full,
                {name: (os.path.join(machines_root, name),) for name in names},
            )
        else:
            executor.map(
                _machine_write_delta,
                {
                    name: (os.path.join(machines_root, name), blocks_dir)
                    for name in names
                },
            )
        return
    monitors = federated.registry.monitors()
    for name in names:
        target = os.path.join(machines_root, name)
        if blocks_dir is None:
            _machine_write_full(monitors[name], target)
        else:
            _machine_write_delta(monitors[name], target, blocks_dir)


def _capture_machines(
    federated: FederatedMonitor, names: list[str], blocks_dir: str | None
) -> dict:
    """Capture every machine's (manifest, blocks) for a deferred commit."""
    executor = _save_live_executor(federated)
    if executor is not None:
        if blocks_dir is None:
            return executor.map(_machine_capture_full, {name: () for name in names})
        return executor.map(
            _machine_capture_delta, {name: (blocks_dir,) for name in names}
        )
    monitors = federated.registry.monitors()
    if blocks_dir is None:
        return {name: _machine_capture_full(monitors[name]) for name in names}
    return {
        name: _machine_capture_delta(monitors[name], blocks_dir) for name in names
    }


def compact_federated_checkpoint(directory: str) -> str:
    """Rewrite a federated delta entry's machines as self-contained full
    checkpoints (in place, atomically per machine), then sweep dead blocks.

    ``directory`` may be a concrete entry or a rotation root (newest
    entry).  Machines already in full format are left untouched.  Returns
    the entry path; after compaction the entry loads on pre-delta code.
    """
    entry = resolve_checkpoint_dir(directory)
    machines_root = os.path.join(entry, MACHINES_DIRNAME)
    if os.path.isdir(machines_root):
        for name in sorted(os.listdir(machines_root)):
            machine_dir = os.path.join(machines_root, name)
            if os.path.isfile(os.path.join(machine_dir, MANIFEST_NAME)):
                compact_checkpoint(machine_dir)
    return entry


def read_federated_manifest(directory: str) -> dict:
    """Load and check a *federated* checkpoint's manifest.

    ``directory`` may be a concrete checkpoint or a rotation root (the
    newest entry is used).  Pointing at a single-machine service
    checkpoint is reported as such instead of failing on a missing key.
    A missing or unparsable manifest raises
    :class:`~repro.service.checkpoint.CheckpointError` naming the file.
    """
    directory = resolve_checkpoint_dir(directory)
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError as exc:
        raise CheckpointError(f"no federated checkpoint manifest at {path!r}") from exc
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"federated checkpoint manifest {path!r} is not valid JSON "
            f"({type(exc).__name__}: {exc}); the checkpoint is corrupt — "
            f"restore from an older rotation entry"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(
            f"federated checkpoint manifest {path!r} must hold a JSON "
            f"object, got {type(manifest).__name__}"
        )
    if manifest.get("kind") != "federation":
        raise ValueError(
            f"{directory!r} holds a single-machine service checkpoint, not a "
            f"federated one — load it with repro.service.load_checkpoint"
        )
    version = manifest.get("version")
    if version != FEDERATION_CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported federated checkpoint version {version!r} "
            f"(expected {FEDERATION_CHECKPOINT_VERSION})"
        )
    manifest["__directory__"] = directory
    return manifest


def load_federated_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    machine_sinks: Mapping[str, Iterable[AlertSink]] | None = None,
    router: AlertRouter | None = None,
    executor: str | ShardExecutor | None = None,
    machine_executor: str | None = None,
    max_workers: int | None = None,
    chunk_log: ChunkLog | None = None,
) -> FederatedMonitor:
    """Rebuild a :class:`FederatedMonitor` from a (possibly rotated) checkpoint.

    ``rules`` recreate each machine's alert engine (persisted per-machine
    cooldown state is re-attached by the per-machine loader).  The router
    is rebuilt from ``sinks``/``machine_sinks`` — or pass a pre-configured
    ``router`` instance (custom fleet rules, cooldown) and its persisted
    dedup/fleet-rule memory is loaded into it; combining both forms is an
    error.  ``executor`` configures the federation fan-out,
    ``machine_executor`` the restored per-machine shard fan-out; both
    start lazily, and restored products resume **bit-for-bit** (asserted
    by the tests).
    """
    if router is not None and (list(sinks) or machine_sinks):
        raise ValueError(
            "pass either a pre-built router or sinks/machine_sinks, not both "
            "(attach sinks to the router you pass in)"
        )
    manifest = read_federated_manifest(directory)
    directory = manifest.pop("__directory__")

    registry = MachineRegistry()
    for name in manifest.get("machines") or ():
        machine_dir = os.path.join(directory, MACHINES_DIRNAME, name)
        try:
            monitor = load_checkpoint(
                machine_dir, rules=rules, executor=machine_executor
            )
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"federated checkpoint under {directory!r} lists machine "
                f"{name!r} but its per-machine checkpoint at "
                f"{machine_dir!r} is missing — restore from an older "
                f"rotation entry"
            ) from exc
        registry.register(name, monitor)

    if router is None:
        router = AlertRouter(sinks=sinks, machine_sinks=machine_sinks)
    router.load_state_dict(manifest["router"])

    federated = FederatedMonitor(
        registry,
        router=router,
        executor=executor,
        max_workers=max_workers,
        chunk_log=chunk_log,
    )
    federated._step = int(manifest["step"])
    return federated

"""Checkpoint / restore of a whole federation, with rotating retention.

A federated checkpoint is a directory::

    <dir>/
      manifest.json          # version, federated step, machine names, router state
      machines/
        east/                # one full service checkpoint per machine
          manifest.json      #   (repro.service.checkpoint format, reused as-is)
          shard_0.npz
          ...
        west/
          ...

With ``keep_last=N`` the directory is a rotation root of step-stamped
entries, exactly like ``save_checkpoint(..., keep_last=N)`` one layer down
(same atomic write-then-rename protocol, same
:func:`~repro.service.checkpoint.list_checkpoints` history helper — the
rotation machinery is shared, not duplicated).

Restore rebuilds the registry machine by machine through
:func:`~repro.service.checkpoint.load_checkpoint` (so every per-machine
guarantee — bit-for-bit stream resumption, restored engine cooldown state —
carries over) and re-attaches the router's persisted dedup and fleet-rule
memory.  Rules, sinks and routers are code, not data: pass them in.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..service.alerts import AlertRule, AlertSink
from ..service.checkpoint import (
    MANIFEST_NAME,
    CheckpointError,
    load_checkpoint,
    resolve_checkpoint_dir,
    rotate_into,
    save_checkpoint,
)
from ..util.parallel import ShardExecutor
from .chunklog import ChunkLog
from .monitor import FederatedMonitor
from .registry import MachineRegistry
from .routing import AlertRouter

__all__ = [
    "FederatedCheckpointInfo",
    "save_federated_checkpoint",
    "load_federated_checkpoint",
    "read_federated_manifest",
]

FEDERATION_CHECKPOINT_VERSION = 1
MACHINES_DIRNAME = "machines"


@dataclass(frozen=True)
class FederatedCheckpointInfo:
    """What :func:`save_federated_checkpoint` wrote."""

    directory: str
    step: int
    machines: tuple[str, ...]

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def total_bytes(self) -> int:
        """On-disk size of the whole federated checkpoint."""
        total = 0
        for root, _dirs, files in os.walk(self.directory):
            total += sum(os.path.getsize(os.path.join(root, name)) for name in files)
        return total


def save_federated_checkpoint(
    directory: str, federated: FederatedMonitor, *, keep_last: int | None = None
) -> FederatedCheckpointInfo:
    """Write the federation's full state under ``directory``.

    Machine state is taken from :attr:`FederatedMonitor.machines`, which
    syncs process-resident monitors back first — a federation on any
    fan-out backend checkpoints to identical bytes.  With ``keep_last=N``
    the checkpoint lands in an atomic step-stamped entry under the
    rotation root and only the newest ``N`` entries survive.
    """
    machines = federated.machines
    step = federated.step

    def write(target: str) -> None:
        os.makedirs(os.path.join(target, MACHINES_DIRNAME), exist_ok=True)
        for name, monitor in machines.items():
            save_checkpoint(os.path.join(target, MACHINES_DIRNAME, name), monitor)
        manifest = {
            "version": FEDERATION_CHECKPOINT_VERSION,
            "kind": "federation",
            "step": step,
            "machines": list(machines),
            "router": federated.router.state_dict(),
        }
        with open(os.path.join(target, MANIFEST_NAME), "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2)

    if keep_last is not None:
        final = rotate_into(directory, step, keep_last, write)
    else:
        os.makedirs(directory, exist_ok=True)
        write(directory)
        final = directory
    return FederatedCheckpointInfo(
        directory=final, step=step, machines=tuple(machines)
    )


def read_federated_manifest(directory: str) -> dict:
    """Load and check a *federated* checkpoint's manifest.

    ``directory`` may be a concrete checkpoint or a rotation root (the
    newest entry is used).  Pointing at a single-machine service
    checkpoint is reported as such instead of failing on a missing key.
    A missing or unparsable manifest raises
    :class:`~repro.service.checkpoint.CheckpointError` naming the file.
    """
    directory = resolve_checkpoint_dir(directory)
    path = os.path.join(directory, MANIFEST_NAME)
    try:
        with open(path, "r", encoding="utf-8") as fh:
            manifest = json.load(fh)
    except FileNotFoundError as exc:
        raise CheckpointError(f"no federated checkpoint manifest at {path!r}") from exc
    except (OSError, ValueError) as exc:
        raise CheckpointError(
            f"federated checkpoint manifest {path!r} is not valid JSON "
            f"({type(exc).__name__}: {exc}); the checkpoint is corrupt — "
            f"restore from an older rotation entry"
        ) from exc
    if not isinstance(manifest, dict):
        raise CheckpointError(
            f"federated checkpoint manifest {path!r} must hold a JSON "
            f"object, got {type(manifest).__name__}"
        )
    if manifest.get("kind") != "federation":
        raise ValueError(
            f"{directory!r} holds a single-machine service checkpoint, not a "
            f"federated one — load it with repro.service.load_checkpoint"
        )
    version = manifest.get("version")
    if version != FEDERATION_CHECKPOINT_VERSION:
        raise ValueError(
            f"unsupported federated checkpoint version {version!r} "
            f"(expected {FEDERATION_CHECKPOINT_VERSION})"
        )
    manifest["__directory__"] = directory
    return manifest


def load_federated_checkpoint(
    directory: str,
    *,
    rules: Sequence[AlertRule] | None = None,
    sinks: Iterable[AlertSink] = (),
    machine_sinks: Mapping[str, Iterable[AlertSink]] | None = None,
    router: AlertRouter | None = None,
    executor: str | ShardExecutor | None = None,
    machine_executor: str | None = None,
    max_workers: int | None = None,
    chunk_log: ChunkLog | None = None,
) -> FederatedMonitor:
    """Rebuild a :class:`FederatedMonitor` from a (possibly rotated) checkpoint.

    ``rules`` recreate each machine's alert engine (persisted per-machine
    cooldown state is re-attached by the per-machine loader).  The router
    is rebuilt from ``sinks``/``machine_sinks`` — or pass a pre-configured
    ``router`` instance (custom fleet rules, cooldown) and its persisted
    dedup/fleet-rule memory is loaded into it; combining both forms is an
    error.  ``executor`` configures the federation fan-out,
    ``machine_executor`` the restored per-machine shard fan-out; both
    start lazily, and restored products resume **bit-for-bit** (asserted
    by the tests).
    """
    if router is not None and (list(sinks) or machine_sinks):
        raise ValueError(
            "pass either a pre-built router or sinks/machine_sinks, not both "
            "(attach sinks to the router you pass in)"
        )
    manifest = read_federated_manifest(directory)
    directory = manifest.pop("__directory__")

    registry = MachineRegistry()
    for name in manifest.get("machines") or ():
        machine_dir = os.path.join(directory, MACHINES_DIRNAME, name)
        try:
            monitor = load_checkpoint(
                machine_dir, rules=rules, executor=machine_executor
            )
        except FileNotFoundError as exc:
            raise CheckpointError(
                f"federated checkpoint under {directory!r} lists machine "
                f"{name!r} but its per-machine checkpoint at "
                f"{machine_dir!r} is missing — restore from an older "
                f"rotation entry"
            ) from exc
        registry.register(name, monitor)

    if router is None:
        router = AlertRouter(sinks=sinks, machine_sinks=machine_sinks)
    router.load_state_dict(manifest["router"])

    federated = FederatedMonitor(
        registry,
        router=router,
        executor=executor,
        max_workers=max_workers,
        chunk_log=chunk_log,
    )
    federated._step = int(manifest["step"])
    return federated

"""Shared chunk log: the federation's short-term ingest memory.

With staggered rounds and machine-local restores, "what did machine X
already see?" stops being derivable from the round counter: a machine
restored from an older checkpoint sits several chunks behind the stream,
and a machine registered mid-run starts at its own step 0.  The
:class:`ChunkLog` closes that gap — the federated monitor records every
chunk it fans out (keyed by machine and absolute step range), and
:meth:`~repro.federation.monitor.FederatedMonitor.catch_up` replays the
retained tail into a lagging machine before it rejoins alert evaluation.

The log is deliberately a bounded in-memory ring per machine (it is the
*recent* tail that matters for catch-up — older state comes from the
machine's own checkpoint, which is exactly the combination the stale-restore
flow uses: restore the newest retained checkpoint, then replay the logged
chunks after it).  Entries store the chunk arrays as handed in; memory is
bounded by ``capacity_per_machine`` chunks per machine.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["ChunkLog", "ChunkLogEntry"]


@dataclass(frozen=True)
class ChunkLogEntry:
    """One recorded ingest: ``values`` covered ``[start, stop)`` snapshots."""

    machine: str
    start: int
    stop: int
    values: np.ndarray

    @property
    def n_snapshots(self) -> int:
        return self.stop - self.start


class ChunkLog:
    """Bounded per-machine history of recently ingested chunks.

    Parameters
    ----------
    capacity_per_machine:
        How many trailing chunks to retain per machine.  Sized to cover
        the distance between checkpoint rotations plus the longest
        expected outage; an entry evicted before a machine caught up
        makes :meth:`entries_since` raise (a gap must fail loudly, never
        silently skip data).
    """

    def __init__(self, capacity_per_machine: int = 64) -> None:
        if capacity_per_machine < 1:
            raise ValueError("capacity_per_machine must be >= 1")
        self.capacity_per_machine = int(capacity_per_machine)
        self._entries: dict[str, list[ChunkLogEntry]] = {}

    # ------------------------------------------------------------------ #
    @property
    def machines(self) -> tuple[str, ...]:
        """Machines with at least one retained entry."""
        return tuple(self._entries)

    def n_entries(self, machine: str) -> int:
        return len(self._entries.get(machine, ()))

    def latest_step(self, machine: str) -> int:
        """One past the last logged snapshot for ``machine`` (0 if none)."""
        entries = self._entries.get(machine)
        return entries[-1].stop if entries else 0

    # ------------------------------------------------------------------ #
    def record(self, machine: str, start: int, values: np.ndarray) -> ChunkLogEntry:
        """Append one machine's ingested chunk (must extend its timeline)."""
        values = np.asarray(values)
        if values.ndim != 2:
            raise ValueError(f"values must be 2-D, got shape {values.shape!r}")
        start = int(start)
        entries = self._entries.setdefault(machine, [])
        if entries and start != entries[-1].stop:
            raise ValueError(
                f"chunk for {machine!r} starts at {start} but the log ends at "
                f"{entries[-1].stop} — record chunks in stream order"
            )
        entry = ChunkLogEntry(
            machine=machine, start=start, stop=start + values.shape[1], values=values
        )
        entries.append(entry)
        del entries[: -self.capacity_per_machine]
        return entry

    def forget(self, machine: str) -> None:
        """Drop a machine's history (after deregistration)."""
        self._entries.pop(machine, None)

    def entries_since(self, machine: str, step: int) -> list[ChunkLogEntry]:
        """Retained entries covering snapshots at or after ``step``, in order.

        Raises when the retained history no longer reaches back to
        ``step`` (the machine fell further behind than the log covers) —
        catch-up must not silently skip a gap.
        """
        entries = self._entries.get(machine, [])
        tail = [entry for entry in entries if entry.stop > step]
        if tail and tail[0].start > step:
            raise ValueError(
                f"chunk log for {machine!r} starts at step {tail[0].start} but "
                f"catch-up needs step {step}: the log's "
                f"{self.capacity_per_machine}-chunk retention no longer covers "
                f"the gap — restore from a newer checkpoint or raise the "
                f"capacity"
            )
        return tail

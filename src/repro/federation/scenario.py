"""Named multi-machine workloads for the federated monitor.

A federated scenario composes per-machine
:class:`~repro.service.scenarios.Scenario` workloads (telemetry, hardware
log, sharding, pipeline config — all reused as-is) into one lockstep
federation run: every machine streams the same chunk protocol while the
:class:`~repro.federation.monitor.FederatedMonitor` fans the ingests out,
routes machine-stamped alerts through a shared
:class:`~repro.federation.routing.AlertRouter`, checkpoints the whole
federation into a rotating history after every chunk, and (for the
catalog's ``federated-fleet`` entry) tears the federation down mid-run and
restores it from the newest retained checkpoint — the acceptance check is
that the restart is observationally invisible.

Catalog (``FEDERATED_SCENARIOS``):

* ``federated-fleet`` — three machines: a quiet site, one with a rack
  cooling failure and one with a noisy-neighbor job (with correlated
  hardware events), plus rotating checkpoints and a mid-run restart.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Sequence

from ..hwlog.events import HardwareLog
from ..service.alerts import Alert, AlertEngine, AlertSink, default_rules
from ..service.checkpoint import RotatedCheckpoint, list_checkpoints
from ..service.monitor import FleetMonitor
from ..service.scenarios import (
    Scenario,
    noisy_neighbor_job,
    quiet_fleet,
    rack_cooling_failure,
)
from ..telemetry.streaming import StreamingReplay
from .checkpoint import load_federated_checkpoint, save_federated_checkpoint
from .monitor import FederatedMonitor
from .registry import MachineRegistry
from .routing import AlertRouter, FleetWideRule

__all__ = [
    "FederatedScenario",
    "FederatedScenarioResult",
    "FederatedScenarioRunner",
    "FEDERATED_SCENARIOS",
    "get_federated_scenario",
    "federated_fleet",
]


@dataclass(frozen=True)
class FederatedScenario:
    """A named, fully reproducible multi-machine workload.

    Attributes
    ----------
    name / description:
        Catalog identity.
    machines:
        Ordered ``(machine_name, per-machine Scenario)`` pairs.  All
        machines must share the same stream protocol (``total_steps``,
        ``initial_size``, ``chunk_size``) — the federation ingests in
        lockstep.
    restart_after_chunk:
        When set, the runner tears the federation down after this many
        streaming chunks and restores it from the newest retained
        checkpoint.
    keep_last:
        Rotating-checkpoint retention depth (the runner checkpoints after
        every chunk when given a checkpoint directory).
    min_drift_machines / fleet_drift_threshold:
        :class:`FleetWideRule` configuration for the shared router.
    router_cooldown:
        Federation-level dedup cooldown in snapshots.
    """

    name: str
    description: str
    machines: tuple[tuple[str, Scenario], ...]
    restart_after_chunk: int | None = None
    keep_last: int = 2
    min_drift_machines: int = 2
    fleet_drift_threshold: float | None = None
    router_cooldown: int = 120

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("a federated scenario needs at least one machine")
        protocols = {
            (sc.total_steps, sc.initial_size, sc.chunk_size)
            for _name, sc in self.machines
        }
        if len(protocols) != 1:
            raise ValueError(
                "machines must share one stream protocol (total_steps, "
                f"initial_size, chunk_size); got {sorted(protocols)}"
            )
        names = [name for name, _sc in self.machines]
        if len(set(names)) != len(names):
            raise ValueError(f"machine names must be unique, got {names}")

    @property
    def machine_names(self) -> tuple[str, ...]:
        return tuple(name for name, _sc in self.machines)

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def n_chunks(self) -> int:
        """Streaming chunks after the initial fit (shared by all machines)."""
        return self.machines[0][1].n_chunks


@dataclass
class FederatedScenarioResult:
    """Everything a federated scenario run produced."""

    scenario: FederatedScenario
    federated: FederatedMonitor
    alerts: list[Alert]
    rack_values: dict[str, dict[int, float]]
    zscore_map: dict[str, float]
    hwlogs: dict[str, HardwareLog]
    n_chunks: int
    restarted: bool
    checkpoints: list[RotatedCheckpoint]

    def alerts_for_machine(self, machine: str) -> list[Alert]:
        return [a for a in self.alerts if a.machine == machine]

    def alerts_for_rule(self, rule: str) -> list[Alert]:
        return [a for a in self.alerts if a.rule == rule]

    def alerted_machines(self) -> set[str]:
        return {a.machine for a in self.alerts if a.machine is not None}


class FederatedScenarioRunner:
    """Drives a federated scenario end to end.

    Parameters
    ----------
    scenario:
        The workload description.
    sinks:
        Global router sinks (re-attached after a restart).
    checkpoint_dir:
        Rotation root for the per-chunk federated checkpoints; required
        when ``scenario.restart_after_chunk`` is set, optional otherwise
        (no directory means no checkpointing).
    executor / max_workers:
        Machine fan-out backend for the federated monitor.
    machine_executor:
        Shard fan-out backend inside each machine's monitor.  Leave serial
        (the default) when ``executor="process"`` — daemon federation
        workers cannot spawn their own child processes.
    """

    def __init__(
        self,
        scenario: FederatedScenario,
        *,
        sinks: Sequence[AlertSink] = (),
        checkpoint_dir: str | None = None,
        executor: str | None = None,
        machine_executor: str | None = None,
        max_workers: int | None = None,
    ) -> None:
        if scenario.restart_after_chunk is not None:
            if checkpoint_dir is None:
                raise ValueError(
                    f"scenario {scenario.name!r} restarts mid-run: pass checkpoint_dir"
                )
            if not 1 <= scenario.restart_after_chunk <= scenario.n_chunks:
                raise ValueError(
                    f"restart_after_chunk must be in [1, {scenario.n_chunks}]"
                )
        self.scenario = scenario
        self.sinks = list(sinks)
        self.checkpoint_dir = checkpoint_dir
        self.executor = executor
        self.machine_executor = machine_executor
        self.max_workers = max_workers

    # ------------------------------------------------------------------ #
    def _build_router(self) -> AlertRouter:
        scenario = self.scenario
        return AlertRouter(
            sinks=self.sinks,
            fleet_rules=[
                FleetWideRule(
                    min_machines=scenario.min_drift_machines,
                    threshold=scenario.fleet_drift_threshold,
                )
            ],
            cooldown=scenario.router_cooldown,
        )

    def _build_machine(self, scenario: Scenario, stream) -> FleetMonitor:
        engine = AlertEngine(
            rules=default_rules(), cooldown=scenario.alert_cooldown
        )
        return FleetMonitor.from_stream(
            stream,
            policy=scenario.policy,
            config=scenario.config,
            alert_engine=engine,
            executor=self.machine_executor,
        )

    def run(self) -> FederatedScenarioResult:
        """Execute the scenario: lockstep stream -> routed alerts -> products.

        When a checkpoint directory is configured the federation
        checkpoints into the rotation root after *every* chunk (retention
        bounded by ``scenario.keep_last``); the restart, when scheduled,
        restores from the newest retained entry.  The returned federation
        is closed with all machine state landed in-process, so post-run
        queries keep working.
        """
        scenario = self.scenario
        streams = {name: sc.build_stream() for name, sc in scenario.machines}
        hwlogs = {name: sc.build_hwlog() for name, sc in scenario.machines}
        replays = {
            name: StreamingReplay(
                stream=streams[name],
                initial_size=sc.initial_size,
                chunk_size=sc.chunk_size,
            )
            for name, sc in scenario.machines
        }

        registry = MachineRegistry(
            {
                name: self._build_machine(sc, streams[name])
                for name, sc in scenario.machines
            }
        )
        federated = FederatedMonitor(
            registry,
            router=self._build_router(),
            executor=self.executor,
            max_workers=self.max_workers,
        )
        alerts: list[Alert] = []
        restarted = False
        # try/finally: a mid-run failure must not leak the fan-out pool or
        # the machine executors (the restart path rebinds `federated`).
        try:
            federated.ingest({name: replay.initial() for name, replay in replays.items()})
            chunk_iters = {name: replay.chunks() for name, replay in replays.items()}
            for index in range(1, scenario.n_chunks + 1):
                chunks = {name: next(chunk_iters[name]) for name in replays}
                _, fired = federated.ingest_and_alert(chunks, hwlogs=hwlogs)
                alerts.extend(fired)
                if self.checkpoint_dir is not None:
                    save_federated_checkpoint(
                        self.checkpoint_dir, federated, keep_last=scenario.keep_last
                    )
                if scenario.restart_after_chunk == index:
                    # Tear the whole federation down and resume from the
                    # newest retained rotation entry; the restored run must
                    # continue exactly where this one stopped.
                    federated.close()
                    federated.registry.close()
                    federated = load_federated_checkpoint(
                        self.checkpoint_dir,
                        rules=default_rules(),
                        router=self._build_router(),
                        executor=self.executor,
                        machine_executor=self.machine_executor,
                        max_workers=self.max_workers,
                    )
                    restarted = True

            rack_values = federated.rack_values()
            zscore_map = federated.zscore_map()
        finally:
            federated.close()
            federated.registry.close()
        return FederatedScenarioResult(
            scenario=scenario,
            federated=federated,
            alerts=alerts,
            rack_values=rack_values,
            zscore_map=zscore_map,
            hwlogs=hwlogs,
            n_chunks=scenario.n_chunks,
            restarted=restarted,
            checkpoints=(
                list_checkpoints(self.checkpoint_dir) if self.checkpoint_dir else []
            ),
        )


# --------------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------------- #
def federated_fleet() -> FederatedScenario:
    """Three machines, one federation: quiet / cooling failure / noisy job.

    Each machine reuses a single-machine catalog workload under its own
    seed, so their telemetry is independent; the cooling failure and the
    hot job give the router machine-attributable alerts from two different
    sites while the quiet machine stays silent.  Rotating checkpoints are
    written every chunk and the federation restarts after chunk 2.
    """
    return FederatedScenario(
        name="federated-fleet",
        description=(
            "Three-machine federation (quiet / rack cooling failure / "
            "noisy-neighbor job) with rotating checkpoints and a mid-run "
            "restart; resumed products must match an uninterrupted run exactly."
        ),
        machines=(
            ("east", replace(quiet_fleet(), seed=21)),
            ("west", rack_cooling_failure()),
            ("north", replace(noisy_neighbor_job(), seed=41)),
        ),
        restart_after_chunk=2,
        keep_last=2,
        min_drift_machines=2,
    )


FEDERATED_SCENARIOS: dict[str, Callable[[], FederatedScenario]] = {
    "federated-fleet": federated_fleet,
}


def get_federated_scenario(name: str) -> FederatedScenario:
    """Look a federated scenario up by catalog name (``_``/``-`` agnostic)."""
    key = name.replace("_", "-")
    try:
        factory = FEDERATED_SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown federated scenario {name!r}; available: "
            f"{sorted(FEDERATED_SCENARIOS)}"
        ) from None
    return factory()

"""Named multi-machine workloads for the federated monitor.

A federated scenario composes per-machine
:class:`~repro.service.scenarios.Scenario` workloads (telemetry, hardware
log, sharding, pipeline config — all reused as-is) into one lockstep
federation run: every machine streams the same chunk protocol while the
:class:`~repro.federation.monitor.FederatedMonitor` fans the ingests out,
routes machine-stamped alerts through a shared
:class:`~repro.federation.routing.AlertRouter`, checkpoints the whole
federation into a rotating history after every chunk, and (for the
catalog's ``federated-fleet`` entry) tears the federation down mid-run and
restores it from the newest retained checkpoint — the acceptance check is
that the restart is observationally invisible.

Catalog (``FEDERATED_SCENARIOS``):

* ``federated-fleet`` — three machines: a quiet site, one with a rack
  cooling failure and one with a noisy-neighbor job (with correlated
  hardware events), plus rotating checkpoints and a mid-run restart.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

import numpy as np

from ..hwlog.events import HardwareLog
from ..service.alerts import Alert, AlertEngine, AlertSink, default_rules
from ..service.checkpoint import RotatedCheckpoint, list_checkpoints, load_checkpoint
from ..service.monitor import FleetMonitor, TopologyUpdate
from ..service.scenarios import (
    Scenario,
    _initial_live_rows,
    _row_prefix_stream,
    mid_run_add_sensors,
    noisy_neighbor_job,
    quiet_fleet,
    rack_cooling_failure,
)
from ..telemetry.streaming import StreamingReplay
from .checkpoint import MACHINES_DIRNAME, load_federated_checkpoint, save_federated_checkpoint
from .chunklog import ChunkLog
from .monitor import FederatedMonitor
from .registry import MachineRegistry
from .routing import AlertRouter, FleetWideRule, FleetWideZScoreRule

__all__ = [
    "FederatedScenario",
    "FederatedScenarioResult",
    "FederatedScenarioRunner",
    "FEDERATED_SCENARIOS",
    "get_federated_scenario",
    "federated_fleet",
    "elastic_fleet",
]


@dataclass(frozen=True)
class FederatedScenario:
    """A named, fully reproducible multi-machine workload.

    Attributes
    ----------
    name / description:
        Catalog identity.
    machines:
        Ordered ``(machine_name, per-machine Scenario)`` pairs.  All
        machines must share the same stream protocol (``total_steps``,
        ``initial_size``, ``chunk_size``) — the federation ingests in
        lockstep.
    restart_after_chunk:
        When set, the runner tears the federation down after this many
        streaming chunks and restores it from the newest retained
        checkpoint.
    keep_last:
        Rotating-checkpoint retention depth (the runner checkpoints after
        every chunk when given a checkpoint directory).
    min_drift_machines / fleet_drift_threshold:
        :class:`FleetWideRule` configuration for the shared router.
    min_zscore_machines:
        When set, a :class:`FleetWideZScoreRule` with this machine
        threshold joins the router's fleet rules.
    router_cooldown:
        Federation-level dedup cooldown in snapshots.
    joiners / join_after_chunk:
        Machines that register with the running federation after this
        many streaming chunks (``(name, workload)`` pairs, same stream
        protocol).  A joiner starts its own stream from zero — the
        federation's rounds become *partial* from its perspective until
        it catches up in wall-clock terms.
    stale_restore_machine / stale_restore_after_chunk:
        When set, after this many chunks the named machine is torn down
        and rebuilt from the *previous* retained rotation entry (one
        chunk stale), then caught up from the federation's shared chunk
        log before rejoining alert evaluation — the machine-local
        restore flow.  Requires a checkpoint directory and
        ``keep_last >= 2``.
    """

    name: str
    description: str
    machines: tuple[tuple[str, Scenario], ...]
    restart_after_chunk: int | None = None
    keep_last: int = 2
    min_drift_machines: int = 2
    fleet_drift_threshold: float | None = None
    min_zscore_machines: int | None = None
    router_cooldown: int = 120
    joiners: tuple[tuple[str, Scenario], ...] = ()
    join_after_chunk: int | None = None
    stale_restore_machine: str | None = None
    stale_restore_after_chunk: int | None = None

    def __post_init__(self) -> None:
        if not self.machines:
            raise ValueError("a federated scenario needs at least one machine")
        protocols = {
            (sc.total_steps, sc.initial_size, sc.chunk_size)
            for _name, sc in (*self.machines, *self.joiners)
        }
        if len(protocols) != 1:
            raise ValueError(
                "machines must share one stream protocol (total_steps, "
                f"initial_size, chunk_size); got {sorted(protocols)}"
            )
        names = [name for name, _sc in (*self.machines, *self.joiners)]
        if len(set(names)) != len(names):
            raise ValueError(f"machine names must be unique, got {names}")
        if self.joiners and self.join_after_chunk is None:
            raise ValueError("joiners require join_after_chunk")
        if self.join_after_chunk is not None and not self.joiners:
            raise ValueError("join_after_chunk requires joiners")
        if (self.stale_restore_machine is None) != (
            self.stale_restore_after_chunk is None
        ):
            raise ValueError(
                "stale_restore_machine and stale_restore_after_chunk go together"
            )
        if (
            self.stale_restore_machine is not None
            and self.stale_restore_machine not in dict(self.machines)
        ):
            raise ValueError(
                f"stale_restore_machine {self.stale_restore_machine!r} is not an "
                f"initial machine"
            )
        if self.stale_restore_machine is not None and self.keep_last < 2:
            raise ValueError("a stale restore needs keep_last >= 2")
        if (
            self.stale_restore_machine is not None
            and dict(self.machines)[self.stale_restore_machine].grows_mid_run
        ):
            raise ValueError(
                "stale_restore_machine must not grow mid-run: the chunk log "
                "records data, not topology events, so a replay cannot cross "
                "the machine's own growth boundary"
            )

    @property
    def machine_names(self) -> tuple[str, ...]:
        return tuple(name for name, _sc in self.machines)

    @property
    def n_machines(self) -> int:
        return len(self.machines)

    @property
    def n_chunks(self) -> int:
        """Streaming chunks after the initial fit (shared by all machines)."""
        return self.machines[0][1].n_chunks


@dataclass
class FederatedScenarioResult:
    """Everything a federated scenario run produced."""

    scenario: FederatedScenario
    federated: FederatedMonitor
    alerts: list[Alert]
    rack_values: dict[str, dict[int, float]]
    zscore_map: dict[str, float]
    hwlogs: dict[str, HardwareLog]
    n_chunks: int
    restarted: bool
    checkpoints: list[RotatedCheckpoint]
    #: machine -> TopologyUpdate for mid-run sensor growth events.
    topology_updates: dict[str, TopologyUpdate] = field(default_factory=dict)
    #: Machines that registered mid-run, in registration order.
    joined: tuple[str, ...] = ()
    #: Whether the stale-restore flow ran, and how many chunks the
    #: restored machine replayed from the shared chunk log.
    stale_restored: bool = False
    chunks_replayed: int = 0

    def alerts_for_machine(self, machine: str) -> list[Alert]:
        return [a for a in self.alerts if a.machine == machine]

    def alerts_for_rule(self, rule: str) -> list[Alert]:
        return [a for a in self.alerts if a.rule == rule]

    def alerted_machines(self) -> set[str]:
        return {a.machine for a in self.alerts if a.machine is not None}


class FederatedScenarioRunner:
    """Drives a federated scenario end to end.

    Parameters
    ----------
    scenario:
        The workload description.
    sinks:
        Global router sinks (re-attached after a restart).
    checkpoint_dir:
        Rotation root for the per-chunk federated checkpoints; required
        when ``scenario.restart_after_chunk`` is set, optional otherwise
        (no directory means no checkpointing).
    executor / max_workers:
        Machine fan-out backend for the federated monitor.
    machine_executor:
        Shard fan-out backend inside each machine's monitor.  Leave serial
        (the default) when ``executor="process"`` — daemon federation
        workers cannot spawn their own child processes.
    deep_levels:
        When set (``"inline"``/``"deferred"``), overrides every machine
        workload's deep-level mode — the CLI's ``--deep-levels`` switch.
    checkpoint_mode / checkpoint_format:
        Forwarded to :func:`save_federated_checkpoint` for the per-chunk
        rotation saves: ``"async"`` hands the commit to the federation's
        background writer (flushed before any entry is read back), and
        ``"delta"`` writes only shards whose revision stamp moved since
        the previous rotation entry.
    """

    def __init__(
        self,
        scenario: FederatedScenario,
        *,
        sinks: Sequence[AlertSink] = (),
        checkpoint_dir: str | None = None,
        executor: str | None = None,
        machine_executor: str | None = None,
        max_workers: int | None = None,
        deep_levels: str | None = None,
        checkpoint_mode: str = "sync",
        checkpoint_format: str = "full",
    ) -> None:
        if scenario.restart_after_chunk is not None:
            if checkpoint_dir is None:
                raise ValueError(
                    f"scenario {scenario.name!r} restarts mid-run: pass checkpoint_dir"
                )
            if not 1 <= scenario.restart_after_chunk <= scenario.n_chunks:
                raise ValueError(
                    f"restart_after_chunk must be in [1, {scenario.n_chunks}]"
                )
        if scenario.stale_restore_after_chunk is not None:
            if checkpoint_dir is None:
                raise ValueError(
                    f"scenario {scenario.name!r} restores a stale machine "
                    f"mid-run: pass checkpoint_dir"
                )
            if not 2 <= scenario.stale_restore_after_chunk <= scenario.n_chunks:
                raise ValueError(
                    f"stale_restore_after_chunk must be in [2, {scenario.n_chunks}] "
                    f"(an older rotation entry must exist)"
                )
        if scenario.join_after_chunk is not None and not (
            1 <= scenario.join_after_chunk < scenario.n_chunks
        ):
            # == n_chunks would register joiners after the last round:
            # they would silently never stream.
            raise ValueError(
                f"join_after_chunk must be in [1, {scenario.n_chunks - 1}]"
            )
        for name, workload in (*scenario.machines, *scenario.joiners):
            if not workload.grows_mid_run:
                continue
            # A joiner starts streaming join_after_chunk + 1 rounds late,
            # so its growth event must fit in the rounds it actually gets.
            budget = scenario.n_chunks
            if name in dict(scenario.joiners):
                budget -= scenario.join_after_chunk + 1
            if not 1 <= workload.grow_after_chunk <= budget:
                raise ValueError(
                    f"machine {name!r}: grow_after_chunk="
                    f"{workload.grow_after_chunk} never fires (this machine "
                    f"streams at most {budget} chunk(s))"
                )
        if checkpoint_mode not in ("sync", "async"):
            raise ValueError(f"unknown checkpoint mode {checkpoint_mode!r}")
        if checkpoint_format not in ("full", "delta"):
            raise ValueError(f"unknown checkpoint format {checkpoint_format!r}")
        self.scenario = scenario
        self.sinks = list(sinks)
        self.checkpoint_dir = checkpoint_dir
        self.executor = executor
        self.machine_executor = machine_executor
        self.max_workers = max_workers
        self.deep_levels = deep_levels
        self.checkpoint_mode = checkpoint_mode
        self.checkpoint_format = checkpoint_format

    # ------------------------------------------------------------------ #
    def _build_router(self) -> AlertRouter:
        scenario = self.scenario
        fleet_rules: list = [
            FleetWideRule(
                min_machines=scenario.min_drift_machines,
                threshold=scenario.fleet_drift_threshold,
            )
        ]
        if scenario.min_zscore_machines is not None:
            fleet_rules.append(
                FleetWideZScoreRule(min_machines=scenario.min_zscore_machines)
            )
        return AlertRouter(
            sinks=self.sinks,
            fleet_rules=fleet_rules,
            cooldown=scenario.router_cooldown,
        )

    def _build_machine(self, scenario: Scenario, stream) -> FleetMonitor:
        engine = AlertEngine(
            rules=default_rules(), cooldown=scenario.alert_cooldown
        )
        if scenario.grows_mid_run:
            stream = _row_prefix_stream(stream, _initial_live_rows(scenario, stream))
        config = scenario.config
        if self.deep_levels is not None and config.deep_levels != self.deep_levels:
            config = replace(config, deep_levels=self.deep_levels)
        return FleetMonitor.from_stream(
            stream,
            policy=scenario.policy,
            config=config,
            alert_engine=engine,
            executor=self.machine_executor,
        )

    def run(self) -> FederatedScenarioResult:
        """Execute the scenario: staggered stream -> routed alerts -> products.

        When a checkpoint directory is configured the federation
        checkpoints into the rotation root after *every* chunk (retention
        bounded by ``scenario.keep_last``); the full restart, when
        scheduled, restores from the newest retained entry, and the
        stale-machine restore rebuilds one machine from the *previous*
        entry and catches it up from the shared chunk log.  Joiners
        register mid-run and stream from their own step zero (partial
        rounds).  The returned federation is closed with all machine
        state landed in-process, so post-run queries keep working.
        """
        scenario = self.scenario
        workloads = {**dict(scenario.machines), **dict(scenario.joiners)}
        streams = {name: sc.build_stream() for name, sc in workloads.items()}
        hwlogs = {name: sc.build_hwlog() for name, sc in workloads.items()}
        replays = {
            name: StreamingReplay(
                stream=streams[name],
                initial_size=sc.initial_size,
                chunk_size=sc.chunk_size,
            )
            for name, sc in workloads.items()
        }
        live_rows = {
            name: _initial_live_rows(sc, streams[name])
            for name, sc in workloads.items()
        }

        registry = MachineRegistry(
            {
                name: self._build_machine(sc, streams[name])
                for name, sc in scenario.machines
            }
        )
        federated = FederatedMonitor(
            registry,
            router=self._build_router(),
            executor=self.executor,
            max_workers=self.max_workers,
            chunk_log=ChunkLog(),
        )
        alerts: list[Alert] = []
        topology_updates: dict[str, TopologyUpdate] = {}
        joined: list[str] = []
        restarted = False
        stale_restored = False
        chunks_replayed = 0
        needs_initial: set[str] = set()
        chunk_iters = {}
        chunks_done = {name: 0 for name in workloads}
        # try/finally: a mid-run failure must not leak the fan-out pool or
        # the machine executors (the restart path rebinds `federated`).
        try:
            federated.ingest(
                {
                    name: replays[name].initial()[: live_rows[name]]
                    for name, _sc in scenario.machines
                }
            )
            chunk_iters = {
                name: replays[name].chunks() for name, _sc in scenario.machines
            }
            for index in range(1, scenario.n_chunks + 1):
                chunks = {}
                for name in federated.machine_names:
                    if name in needs_initial:
                        chunks[name] = replays[name].initial()[: live_rows[name]]
                        needs_initial.discard(name)
                        chunk_iters[name] = replays[name].chunks()
                        continue
                    chunk = next(chunk_iters[name], None)
                    if chunk is not None:
                        chunks[name] = chunk[: live_rows[name]]
                        chunks_done[name] += 1
                _, fired = federated.ingest_and_alert(
                    chunks, hwlogs={name: hwlogs[name] for name in chunks}
                )
                alerts.extend(fired)
                if self.checkpoint_dir is not None:
                    save_federated_checkpoint(
                        self.checkpoint_dir,
                        federated,
                        keep_last=scenario.keep_last,
                        format=self.checkpoint_format,
                        mode=self.checkpoint_mode,
                    )
                if scenario.restart_after_chunk == index:
                    # Tear the whole federation down and resume from the
                    # newest retained rotation entry; the restored run must
                    # continue exactly where this one stopped.  Async
                    # commits must land before the entry is read back.
                    federated.flush_checkpoints()
                    chunk_log = federated.chunk_log
                    federated.close()
                    federated.registry.close()
                    federated = load_federated_checkpoint(
                        self.checkpoint_dir,
                        rules=default_rules(),
                        router=self._build_router(),
                        executor=self.executor,
                        machine_executor=self.machine_executor,
                        max_workers=self.max_workers,
                        chunk_log=chunk_log,
                    )
                    restarted = True
                if scenario.stale_restore_after_chunk == index:
                    # Machine-local failure: rebuild one machine from the
                    # previous (stale) rotation entry, then replay the
                    # shared chunk log so it rejoins at the stream edge.
                    federated.flush_checkpoints()
                    entries = list_checkpoints(self.checkpoint_dir)
                    stale_entry = entries[1] if len(entries) > 1 else entries[0]
                    name = scenario.stale_restore_machine
                    stale_monitor = load_checkpoint(
                        os.path.join(stale_entry.path, MACHINES_DIRNAME, name),
                        rules=default_rules(),
                        executor=self.machine_executor,
                    )
                    chunks_replayed = federated.reattach_machine(name, stale_monitor)
                    stale_restored = True
                if scenario.join_after_chunk == index:
                    for name, sc in scenario.joiners:
                        federated.register_machine(
                            name, self._build_machine(sc, streams[name])
                        )
                        needs_initial.add(name)
                        joined.append(name)
                for name, sc in workloads.items():
                    if (
                        sc.grows_mid_run
                        and name in federated.machine_names
                        and chunks_done[name] == sc.grow_after_chunk
                        and name not in topology_updates
                    ):
                        stream = streams[name]
                        topology_updates[name] = federated.add_sensors(
                            name,
                            np.asarray(stream.sensor_names)[live_rows[name] :],
                            np.asarray(stream.node_indices)[live_rows[name] :],
                            policy=sc.policy,
                            machine=sc.machine,
                        )
                        live_rows[name] = stream.n_rows

            # Deferred deep levels: catch every machine's backlog up before
            # the final federated products (see ScenarioRunner.run).
            federated.refresh_deep_levels()
            rack_values = federated.rack_values()
            zscore_map = federated.zscore_map()
        finally:
            federated.close()
            federated.registry.close()
        return FederatedScenarioResult(
            scenario=scenario,
            federated=federated,
            alerts=alerts,
            rack_values=rack_values,
            zscore_map=zscore_map,
            hwlogs=hwlogs,
            n_chunks=scenario.n_chunks,
            restarted=restarted,
            checkpoints=(
                list_checkpoints(self.checkpoint_dir) if self.checkpoint_dir else []
            ),
            topology_updates=topology_updates,
            joined=tuple(joined),
            stale_restored=stale_restored,
            chunks_replayed=chunks_replayed,
        )


# --------------------------------------------------------------------------- #
# Catalog
# --------------------------------------------------------------------------- #
def federated_fleet() -> FederatedScenario:
    """Three machines, one federation: quiet / cooling failure / noisy job.

    Each machine reuses a single-machine catalog workload under its own
    seed, so their telemetry is independent; the cooling failure and the
    hot job give the router machine-attributable alerts from two different
    sites while the quiet machine stays silent.  Rotating checkpoints are
    written every chunk and the federation restarts after chunk 2.
    """
    return FederatedScenario(
        name="federated-fleet",
        description=(
            "Three-machine federation (quiet / rack cooling failure / "
            "noisy-neighbor job) with rotating checkpoints and a mid-run "
            "restart; resumed products must match an uninterrupted run exactly."
        ),
        machines=(
            ("east", replace(quiet_fleet(), seed=21)),
            ("west", rack_cooling_failure()),
            ("north", replace(noisy_neighbor_job(), seed=41)),
        ),
        restart_after_chunk=2,
        keep_last=2,
        min_drift_machines=2,
    )


def elastic_fleet() -> FederatedScenario:
    """Every layer of the topology grows mid-stream, in one run.

    Three elastic events against a running two-machine federation:

    1. **new sensors into existing shards** — machine ``west`` (rack
       sharded) starts on ``cpu_temp`` only; after its second chunk the
       ``node_power`` rows stream in and every rack shard absorbs its own
       new rows in place;
    2. **a new shard** — machine ``east`` (metric sharded) onboards the
       same channel, which no existing shard can take, so a
       ``metric-node_power`` shard is minted into its live executor pool;
    3. **a new machine** — ``south`` registers after chunk 2 and streams
       from its own step zero (rounds become partial: sites are
       staggered, not lockstep);

    plus the machine-local failure flow: after chunk 3 the quiet machine
    ``north`` is torn down, rebuilt from the *previous* rotation entry
    (one chunk stale) and caught up from the federation's shared chunk
    log before rejoining alert evaluation.  Per-chunk rotating
    checkpoints cover the whole run, and the z-score burst fleet rule
    watches the merged alert stream.
    """
    east = replace(
        mid_run_add_sensors(),
        seed=21,
        # Growth event for east happens later than west's so the two
        # event kinds are distinguishable in the alert/product trail.
        grow_after_chunk=3,
    )
    west = replace(
        quiet_fleet(),
        seed=31,
        sensors=("cpu_temp", "node_power"),
        initial_sensors=("cpu_temp",),
        grow_after_chunk=2,
    )
    north = replace(quiet_fleet(), seed=36)
    south = replace(noisy_neighbor_job(), seed=41)
    return FederatedScenario(
        name="elastic-fleet",
        description=(
            "Federation that grows everywhere mid-stream: west extends its "
            "rack shards with node_power rows, east mints a new metric "
            "shard, south registers as a new machine (staggered rounds), "
            "and quiet north is later restored one chunk stale and caught "
            "up from the shared chunk log."
        ),
        machines=(("east", east), ("west", west), ("north", north)),
        joiners=(("south", south),),
        join_after_chunk=2,
        stale_restore_machine="north",
        stale_restore_after_chunk=3,
        keep_last=2,
        min_drift_machines=2,
        min_zscore_machines=2,
    )


FEDERATED_SCENARIOS: dict[str, Callable[[], FederatedScenario]] = {
    "federated-fleet": federated_fleet,
    "elastic-fleet": elastic_fleet,
}


def get_federated_scenario(name: str) -> FederatedScenario:
    """Look a federated scenario up by catalog name (``_``/``-`` agnostic)."""
    key = name.replace("_", "-")
    try:
        factory = FEDERATED_SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown federated scenario {name!r}; available: "
            f"{sorted(FEDERATED_SCENARIOS)}"
        ) from None
    return factory()

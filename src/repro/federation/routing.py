"""Cross-machine alert routing: machine stamping, federated dedup, fleet rules.

Per-machine :class:`~repro.service.alerts.AlertEngine` instances already
deduplicate within their machine; the :class:`AlertRouter` sits above all
of them and

* **stamps** every alert with its origin machine (``Alert.machine``) so a
  merged alert stream stays attributable;
* applies a second, *federation-level* cooldown keyed
  ``(rule, machine, shard, node)`` — the cross-machine dedup that keeps a
  restored federation (or a machine whose engine state was lost) from
  re-flooding global sinks;
* fans the stamped stream out to **global sinks** plus optional
  **per-machine sinks**;
* evaluates **fleet-wide rules** that no single machine can express —
  :class:`FleetWideRule` fires when at least ``min_machines`` machines
  reported level-1 drift within a trailing window, the federated analogue
  of the paper's "recompute levels 2..L" trigger (a fleet-wide drift burst
  usually means a shared cause: facility cooling, a firmware rollout, a
  workload wave).

Router and fleet-rule state are serialisable, so a federation restored
from a checkpoint keeps suppressing what it already delivered and
remembers which machines drifted recently.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Mapping, Sequence

from ..core.imrdmd import UpdateRecord
from ..service.alerts import Alert, AlertSeverity, AlertSink

__all__ = [
    "FederatedAlertContext",
    "FleetWideRule",
    "FleetWideZScoreRule",
    "AlertRouter",
]


@dataclass
class FederatedAlertContext:
    """What fleet-wide rules may inspect after one federated ingest round.

    Attributes
    ----------
    step:
        Federated timeline position — the maximum machine step after the
        round.
    updates:
        ``machine -> shard -> UpdateRecord`` from the round's ingests
        (``None`` for shards still in their initial fit).  With partial
        (staggered) rounds this covers only the machines that ingested
        this round.
    window:
        Trailing snapshot count rules should consider "recent".
    machines:
        The federation's *registered* membership at evaluation time.
        Rules prune per-machine memory against this — not against the
        round's ``updates`` keys, which under partial rounds merely say
        who ingested, not who still exists.  ``None`` (legacy contexts)
        falls back to the ``updates`` keys.
    machine_alerts:
        ``machine -> alerts`` the per-machine engines emitted this round
        (pre-routing).  Populated by :meth:`AlertRouter.route` before the
        fleet rules run; :class:`FleetWideZScoreRule` feeds on it.
    """

    step: int
    updates: dict[str, dict[str, UpdateRecord | None]] = field(default_factory=dict)
    window: int = 200
    machines: tuple[str, ...] | None = None
    machine_alerts: dict[str, tuple[Alert, ...]] = field(default_factory=dict)

    def membership(self) -> tuple[str, ...]:
        """Registered machines (falls back to the round's ingest keys)."""
        if self.machines is not None:
            return self.machines
        return tuple(self.updates)


class FleetWideRule:
    """Fires when >= ``min_machines`` machines drifted within a window.

    A machine "drifted" in a round when any of its shard updates was
    flagged stale (its model's own drift threshold) or, when ``threshold``
    is given, when any shard's drift norm crossed it.  The rule remembers
    each machine's most recent drift step, so machines drifting a few
    chunks apart still count into the same burst — exactly the condition a
    per-machine rule cannot see.

    The context's :meth:`~FederatedAlertContext.membership` defines the
    federation's current membership: deregistered machines lose their
    drift memory — a decommissioned machine must not keep counting toward
    ``min_machines`` — while machines that merely *skipped* a partial
    round keep theirs (they are still members; their last drift simply
    ages out of the window).
    """

    name = "fleet-wide-drift"

    def __init__(
        self,
        min_machines: int = 2,
        *,
        window: int | None = None,
        threshold: float | None = None,
        severity: AlertSeverity = AlertSeverity.CRITICAL,
    ) -> None:
        if min_machines < 1:
            raise ValueError("min_machines must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for the context's)")
        if threshold is not None and threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.min_machines = int(min_machines)
        self.window = window
        self.threshold = threshold
        self.severity = severity
        self._last_drift_step: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def _machine_drifted(self, updates: Mapping[str, UpdateRecord | None]) -> bool:
        for record in updates.values():
            if record is None:
                continue
            if record.stale:
                return True
            if self.threshold is not None and record.drift > self.threshold:
                return True
        return False

    def evaluate(self, context: FederatedAlertContext) -> list[Alert]:
        members = set(context.membership())
        self._last_drift_step = {
            machine: step
            for machine, step in self._last_drift_step.items()
            if machine in members
        }
        for machine, updates in context.updates.items():
            if self._machine_drifted(updates):
                self._last_drift_step[machine] = context.step
        window = self.window if self.window is not None else context.window
        lo = context.step - window
        drifted = sorted(
            machine
            for machine, step in self._last_drift_step.items()
            if step > lo
        )
        if len(drifted) < self.min_machines:
            return []
        return [
            Alert(
                rule=self.name,
                severity=self.severity,
                step=context.step,
                value=float(len(drifted)),
                message=(
                    f"{len(drifted)} machines ({', '.join(drifted)}) reported "
                    f"level-1 drift within the last {window} snapshots — "
                    f"fleet-wide cause likely (facility, rollout, workload wave)"
                ),
            )
        ]

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "last_drift_step": [
                {"machine": machine, "step": step}
                for machine, step in sorted(self._last_drift_step.items())
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._last_drift_step = {
            str(entry["machine"]): int(entry["step"])
            for entry in state["last_drift_step"]
        }


class FleetWideZScoreRule:
    """Fires when >= ``min_machines`` machines raised z-score alerts in a window.

    The z-score sibling of :class:`FleetWideRule`: a single hot node is a
    per-machine story, but thermal z-score alerts bursting across several
    machines at once point at a shared cause (facility cooling margin, a
    scheduler wave packing hot jobs, a firmware rollout).  A machine
    "burst" in a round when its engine emitted at least ``min_alerts``
    ``zscore``-rule alerts of at least ``min_severity``; the rule
    remembers each machine's most recent burst step, so machines bursting
    a few chunks apart still count together.  Dedup semantics match the
    drift rule exactly: the emitted alert carries no machine/shard/node
    scope, so the router's federation-level cooldown keys it per rule,
    and membership pruning follows :meth:`FederatedAlertContext.membership`.
    """

    name = "fleet-wide-zscore"

    def __init__(
        self,
        min_machines: int = 2,
        *,
        min_alerts: int = 1,
        window: int | None = None,
        min_severity: AlertSeverity = AlertSeverity.WARNING,
        severity: AlertSeverity = AlertSeverity.CRITICAL,
    ) -> None:
        if min_machines < 1:
            raise ValueError("min_machines must be >= 1")
        if min_alerts < 1:
            raise ValueError("min_alerts must be >= 1")
        if window is not None and window < 1:
            raise ValueError("window must be >= 1 (or None for the context's)")
        self.min_machines = int(min_machines)
        self.min_alerts = int(min_alerts)
        self.window = window
        self.min_severity = min_severity
        self.severity = severity
        self._last_burst_step: dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def _machine_burst(self, alerts: Sequence[Alert]) -> bool:
        count = sum(
            1
            for alert in alerts
            if alert.rule == "zscore" and alert.severity >= self.min_severity
        )
        return count >= self.min_alerts

    def evaluate(self, context: FederatedAlertContext) -> list[Alert]:
        members = set(context.membership())
        self._last_burst_step = {
            machine: step
            for machine, step in self._last_burst_step.items()
            if machine in members
        }
        for machine, alerts in context.machine_alerts.items():
            if self._machine_burst(alerts):
                self._last_burst_step[machine] = context.step
        window = self.window if self.window is not None else context.window
        lo = context.step - window
        burst = sorted(
            machine
            for machine, step in self._last_burst_step.items()
            if step > lo
        )
        if len(burst) < self.min_machines:
            return []
        return [
            Alert(
                rule=self.name,
                severity=self.severity,
                step=context.step,
                value=float(len(burst)),
                message=(
                    f"{len(burst)} machines ({', '.join(burst)}) raised z-score "
                    f"alerts within the last {window} snapshots — fleet-wide "
                    f"thermal cause likely (facility, scheduler wave, rollout)"
                ),
            )
        ]

    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "last_burst_step": [
                {"machine": machine, "step": step}
                for machine, step in sorted(self._last_burst_step.items())
            ],
        }

    def load_state_dict(self, state: dict) -> None:
        self._last_burst_step = {
            str(entry["machine"]): int(entry["step"])
            for entry in state["last_burst_step"]
        }


class AlertRouter:
    """Merges per-machine alert streams into one attributable, deduped flow.

    Parameters
    ----------
    sinks:
        Global sinks receiving *every* routed alert.
    machine_sinks:
        Optional ``machine -> [sinks]`` for per-machine delivery (an
        operator console per site, say); fleet-wide alerts (no origin
        machine) only reach the global sinks.
    fleet_rules:
        Rules evaluated once per federated round against the merged
        context (default: one :class:`FleetWideRule`).  Pass ``()`` to
        disable.
    cooldown:
        Federation-level cooldown in snapshots, keyed per
        ``(rule, machine, shard, node)``.  Matching the per-machine engine
        cooldown (the default) makes the router transparent for alerts the
        engines already deduplicate while still bounding fleet-wide rules
        and guarding against engines whose dedup state was lost.
    """

    def __init__(
        self,
        *,
        sinks: Iterable[AlertSink] = (),
        machine_sinks: Mapping[str, Iterable[AlertSink]] | None = None,
        fleet_rules: Sequence[FleetWideRule] | None = None,
        cooldown: int = 120,
    ) -> None:
        if cooldown < 0:
            raise ValueError("cooldown must be non-negative")
        self.sinks = list(sinks)
        self.machine_sinks = {
            str(machine): list(machine_sinks[machine]) for machine in machine_sinks
        } if machine_sinks else {}
        self.fleet_rules = (
            list(fleet_rules) if fleet_rules is not None else [FleetWideRule()]
        )
        self.cooldown = int(cooldown)
        self._last_fired: dict[tuple[str, str, str, str], int] = {}
        self._n_routed = 0
        self._n_suppressed = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(alert: Alert) -> tuple[str, str, str, str]:
        return (alert.rule, str(alert.machine), str(alert.shard_id), str(alert.node))

    def _admit(self, alert: Alert, step: int) -> bool:
        key = self._key(alert)
        last = self._last_fired.get(key)
        if last is not None and step - last < self.cooldown:
            self._n_suppressed += 1
            return False
        self._last_fired[key] = step
        return True

    def _deliver(self, alert: Alert) -> None:
        for sink in self.sinks:
            sink.emit(alert)
        if alert.machine is not None:
            for sink in self.machine_sinks.get(alert.machine, ()):
                sink.emit(alert)

    def route(
        self,
        machine_alerts: Mapping[str, Sequence[Alert]],
        context: FederatedAlertContext,
    ) -> list[Alert]:
        """Stamp, dedup and deliver one round's alerts; returns what passed.

        Per-machine alerts are processed in the mapping's (registration)
        order, then the fleet rules run against the merged context — so a
        fleet-wide alert always *follows* the per-machine evidence that
        triggered it in sinks and in the returned list.
        """
        routed: list[Alert] = []
        # Fleet rules see the round's raw per-machine streams (pre-dedup):
        # suppression protects sinks from repeats, but a suppressed repeat
        # is still evidence of an ongoing condition.
        context.machine_alerts = {
            machine: tuple(alerts) for machine, alerts in machine_alerts.items()
        }
        for machine, alerts in machine_alerts.items():
            for alert in alerts:
                stamped = replace(alert, machine=machine)
                if not self._admit(stamped, context.step):
                    continue
                routed.append(stamped)
                self._deliver(stamped)
        for rule in self.fleet_rules:
            for alert in rule.evaluate(context):
                if not self._admit(alert, context.step):
                    continue
                routed.append(alert)
                self._deliver(alert)
        self._n_routed += len(routed)
        return routed

    @property
    def stats(self) -> dict[str, int]:
        return {"routed": self._n_routed, "suppressed": self._n_suppressed}

    # ------------------------------------------------------------------ #
    # Serialisation (dedup + fleet-rule memory; sinks and rules are code)
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict:
        return {
            "cooldown": self.cooldown,
            "last_fired": [
                {
                    "rule": key[0],
                    "machine": key[1],
                    "shard": key[2],
                    "node": key[3],
                    "step": step,
                }
                for key, step in sorted(self._last_fired.items())
            ],
            "fleet_rules": {rule.name: rule.state_dict() for rule in self.fleet_rules},
            "n_routed": self._n_routed,
            "n_suppressed": self._n_suppressed,
        }

    def load_state_dict(self, state: dict) -> None:
        self.cooldown = int(state["cooldown"])
        self._last_fired = {
            (entry["rule"], entry["machine"], entry["shard"], entry["node"]): int(
                entry["step"]
            )
            for entry in state["last_fired"]
        }
        saved_rules = state.get("fleet_rules", {})
        for rule in self.fleet_rules:
            if rule.name in saved_rules:
                rule.load_state_dict(saved_rules[rule.name])
        self._n_routed = int(state.get("n_routed", 0))
        self._n_suppressed = int(state.get("n_suppressed", 0))

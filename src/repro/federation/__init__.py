"""Multi-machine fleet federation: registry, routed alerts, rotating checkpoints.

``repro.service`` monitors one machine; this package turns N of those
monitors into a single queryable, alert-routing system:

* :mod:`repro.federation.registry` — :class:`MachineRegistry`, the named
  membership list (one :class:`~repro.service.FleetMonitor` per machine,
  each with its own sharding policy, config and executor backend);
* :mod:`repro.federation.monitor` — :class:`FederatedMonitor`, fanning
  ingests across machines over the persistent
  :class:`~repro.util.parallel.ShardExecutor` machinery and merging
  per-machine products into federated ones;
* :mod:`repro.federation.routing` — :class:`AlertRouter` (machine
  stamping, cross-machine cooldown/dedup, global + per-machine sinks) and
  :class:`FleetWideRule` (>= k machines drifting within a window);
* :mod:`repro.federation.checkpoint` — whole-federation checkpoints
  (manifest + one service checkpoint per machine) with step-stamped
  rotation and bit-for-bit restore;
* :mod:`repro.federation.scenario` — the ``federated-fleet`` catalog
  workload and its runner.
"""

from .checkpoint import (
    FederatedCheckpointInfo,
    compact_federated_checkpoint,
    load_federated_checkpoint,
    read_federated_manifest,
    save_federated_checkpoint,
)
from .chunklog import ChunkLog, ChunkLogEntry
from .monitor import FederatedMonitor, FederatedSnapshot, FederatedSpectrum
from .registry import MachineRegistry
from .routing import (
    AlertRouter,
    FederatedAlertContext,
    FleetWideRule,
    FleetWideZScoreRule,
)
from .scenario import (
    FEDERATED_SCENARIOS,
    FederatedScenario,
    FederatedScenarioResult,
    FederatedScenarioRunner,
    federated_fleet,
    get_federated_scenario,
)

__all__ = [
    "AlertRouter",
    "FederatedAlertContext",
    "FleetWideRule",
    "FleetWideZScoreRule",
    "ChunkLog",
    "ChunkLogEntry",
    "MachineRegistry",
    "FederatedMonitor",
    "FederatedSnapshot",
    "FederatedSpectrum",
    "FederatedCheckpointInfo",
    "save_federated_checkpoint",
    "compact_federated_checkpoint",
    "load_federated_checkpoint",
    "read_federated_manifest",
    "FEDERATED_SCENARIOS",
    "FederatedScenario",
    "FederatedScenarioResult",
    "FederatedScenarioRunner",
    "federated_fleet",
    "get_federated_scenario",
]

"""Named-machine registry: the directory layer above per-machine monitors.

A federation watches *N machines*, each with its own
:class:`~repro.service.monitor.FleetMonitor` — its own sharding policy,
pipeline config and executor backend.  The registry is the authoritative
membership list: machines register under a stable name (used to stamp
alerts, key federated products and lay out checkpoint directories) and can
deregister at any time.  Membership changes bump a version counter the
:class:`~repro.federation.monitor.FederatedMonitor` watches, so its
fan-out pool is rebuilt transparently the next time it is used.
"""

from __future__ import annotations

import re
from typing import Iterator, Mapping

from ..service.monitor import FleetMonitor

__all__ = ["MachineRegistry"]

#: Machine names become alert stamps, product keys (``machine/shard``) and
#: checkpoint subdirectories, so they must be path- and key-safe.
_MACHINE_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


class MachineRegistry:
    """Ordered mapping of machine name -> :class:`FleetMonitor`.

    Registration order is preserved (it defines the deterministic fan-out
    and product ordering of the federated monitor).  Each monitor keeps
    full ownership of its own shard partition, pipeline config and
    executor backend — the registry never inspects them.
    """

    def __init__(self, monitors: Mapping[str, FleetMonitor] | None = None) -> None:
        self._monitors: dict[str, FleetMonitor] = {}
        self._version = 0
        if monitors:
            for name, monitor in monitors.items():
                self.register(name, monitor)

    # ------------------------------------------------------------------ #
    @property
    def version(self) -> int:
        """Monotonic membership counter (bumped by register/deregister)."""
        return self._version

    @property
    def names(self) -> tuple[str, ...]:
        """Registered machine names, in registration order."""
        return tuple(self._monitors)

    @property
    def n_machines(self) -> int:
        return len(self._monitors)

    # ------------------------------------------------------------------ #
    def register(self, name: str, monitor: FleetMonitor) -> FleetMonitor:
        """Add a machine under ``name``; returns the monitor for chaining.

        Names must be unique and path-safe (letters, digits, ``.``, ``_``,
        ``-``; no leading punctuation) — they become alert stamps and
        checkpoint subdirectory names.
        """
        if not isinstance(name, str) or not _MACHINE_NAME_RE.match(name):
            raise ValueError(
                f"invalid machine name {name!r}: use letters, digits, '.', '_' "
                f"or '-' (no leading punctuation)"
            )
        if name in self._monitors:
            raise ValueError(f"machine {name!r} is already registered")
        if not isinstance(monitor, FleetMonitor):
            raise TypeError(
                f"machine {name!r} must be backed by a FleetMonitor, "
                f"got {type(monitor).__name__}"
            )
        self._monitors[name] = monitor
        self._version += 1
        return monitor

    def deregister(self, name: str) -> FleetMonitor:
        """Remove and return a machine's monitor (it is *not* closed —
        the caller may keep using or re-register it)."""
        try:
            monitor = self._monitors.pop(name)
        except KeyError:
            raise KeyError(f"unknown machine {name!r}") from None
        self._version += 1
        return monitor

    # ------------------------------------------------------------------ #
    def monitors(self) -> dict[str, FleetMonitor]:
        """Name -> monitor snapshot (a copy; mutating it changes nothing)."""
        return dict(self._monitors)

    def get(self, name: str) -> FleetMonitor:
        try:
            return self._monitors[name]
        except KeyError:
            raise KeyError(f"unknown machine {name!r}") from None

    def install(self, name: str, monitor: FleetMonitor) -> None:
        """Replace a registered machine's monitor in place (same name).

        Used by the federated monitor to land synced state back after a
        process-backend pull; does *not* bump the membership version.
        """
        if name not in self._monitors:
            raise KeyError(f"unknown machine {name!r}")
        self._monitors[name] = monitor

    def __getitem__(self, name: str) -> FleetMonitor:
        return self.get(name)

    def __contains__(self, name: object) -> bool:
        return name in self._monitors

    def __iter__(self) -> Iterator[str]:
        return iter(self._monitors)

    def __len__(self) -> int:
        return len(self._monitors)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<MachineRegistry n={len(self)} machines={list(self._monitors)}>"

    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close every registered monitor's executor (idempotent)."""
        for monitor in self._monitors.values():
            monitor.close()
